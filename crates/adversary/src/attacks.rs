//! Concrete traffic-analysis attacks and their evaluation.
//!
//! Each attack follows the same shape: a *decision rule* consuming only
//! adversary-visible observables, plus an `evaluate` routine that runs
//! many trials against an [`ObservableModel`] and reports the empirical
//! accuracy of the best version of that attack. Accuracy ≈ ½ means the
//! attack learns nothing.

use crate::model::{ObservableModel, RoundTruth};
use rand::Rng;

/// The §4.2 *offline/intersection* attack: compare `m2` between rounds
/// where the target is online and rounds where the target is offline; if
/// conversations stop when she leaves, she was talking.
pub struct IntersectionAttack {
    /// Rounds observed in each condition per trial.
    pub window: usize,
}

impl IntersectionAttack {
    /// The decision rule: guess "target was talking" iff the mean `m2`
    /// while online exceeds the mean while offline by more than half an
    /// exchange.
    #[must_use]
    pub fn guess(online_m2: &[u64], offline_m2: &[u64]) -> bool {
        let mean = |xs: &[u64]| -> f64 {
            if xs.is_empty() {
                return 0.0;
            }
            xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
        };
        mean(online_m2) - mean(offline_m2) > 0.5
    }

    /// Empirical accuracy over `trials` Monte-Carlo experiments: in each,
    /// the target is talking with probability ½, the adversary watches
    /// `window` online rounds and `window` offline rounds, then guesses.
    ///
    /// `background_pairs` are other users' conversations (the adversary's
    /// uncertainty about them is *not* modelled — the paper conservatively
    /// assumes the adversary knows all other users' behaviour, §9, so we
    /// keep them constant).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`: with no observed rounds [`Self::guess`]
    /// compares two empty means and degenerates to a constant `false`,
    /// which would report a fake 50% accuracy instead of an error.
    pub fn evaluate<R: Rng>(
        &self,
        rng: &mut R,
        model: &ObservableModel,
        background_pairs: u64,
        trials: usize,
    ) -> f64 {
        assert!(
            self.window > 0,
            "intersection attack needs at least one observed round per condition"
        );
        let mut correct = 0usize;
        for _ in 0..trials {
            let talking = rng.gen_bool(0.5);
            let online_pairs = background_pairs + u64::from(talking);
            let online: Vec<u64> = (0..self.window)
                .map(|_| {
                    model
                        .sample(
                            rng,
                            RoundTruth {
                                talking_pairs: online_pairs,
                                lone_users: 0,
                            },
                        )
                        .m2
                })
                .collect();
            let offline: Vec<u64> = (0..self.window)
                .map(|_| {
                    model
                        .sample(
                            rng,
                            RoundTruth {
                                talking_pairs: background_pairs,
                                lone_users: 0,
                            },
                        )
                        .m2
                })
                .collect();
            if Self::guess(&online, &offline) == talking {
                correct += 1;
            }
        }
        correct as f64 / trials as f64
    }
}

/// The §4.2 *disruption* attack: discard every request except Alice's and
/// Bob's at the (compromised) first server, then check at the
/// (compromised) last server whether some dead drop still received two
/// accesses.
pub struct DisruptionAttack;

impl DisruptionAttack {
    /// Decision rule given the observed `m2` and a decision threshold
    /// computed from the noise configuration.
    #[must_use]
    pub fn guess(observed_m2: u64, threshold: f64) -> bool {
        observed_m2 as f64 > threshold
    }

    /// Empirical accuracy of the *optimal threshold* distinguisher.
    ///
    /// Samples `trials` rounds under each hypothesis (Alice↔Bob talking /
    /// not), sweeps every possible threshold, and returns the best
    /// accuracy — an upper estimate of what a single-round adversary can
    /// do, to be compared against [`crate::bounds::max_accuracy`].
    pub fn evaluate<R: Rng>(rng: &mut R, model: &ObservableModel, trials: usize) -> f64 {
        let sample_m2 = |rng: &mut R, pairs: u64| -> u64 {
            model
                .sample(
                    rng,
                    RoundTruth {
                        talking_pairs: pairs,
                        lone_users: 0,
                    },
                )
                .m2
        };
        let talking: Vec<u64> = (0..trials).map(|_| sample_m2(rng, 1)).collect();
        let idle: Vec<u64> = (0..trials).map(|_| sample_m2(rng, 0)).collect();

        // Optimal threshold over the union of observed values.
        let mut candidates: Vec<u64> = talking.iter().chain(idle.iter()).copied().collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut best = 0.5;
        for &threshold in &candidates {
            // Guess "talking" iff m2 >= threshold.
            let hits = talking.iter().filter(|&&x| x >= threshold).count()
                + idle.iter().filter(|&&x| x < threshold).count();
            let accuracy = hits as f64 / (2 * trials) as f64;
            if accuracy > best {
                best = accuracy;
            }
        }
        best
    }
}

/// Long-run statistical disclosure: correlate the target's online
/// schedule with `m2` across many rounds (Danezis-style, paper §10).
pub struct StatisticalDisclosureAttack;

impl StatisticalDisclosureAttack {
    /// Point-biserial correlation between the online indicator and `m2`.
    ///
    /// Returns 0 when either series is degenerate (all same value).
    #[must_use]
    pub fn correlation(online: &[bool], m2: &[u64]) -> f64 {
        assert_eq!(online.len(), m2.len());
        let n = online.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean_x = online.iter().filter(|&&b| b).count() as f64 / n;
        let mean_y = m2.iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_x = 0.0;
        let mut var_y = 0.0;
        for (&b, &v) in online.iter().zip(m2.iter()) {
            let x = f64::from(u8::from(b)) - mean_x;
            let y = v as f64 - mean_y;
            cov += x * y;
            var_x += x * x;
            var_y += y * y;
        }
        if var_x == 0.0 || var_y == 0.0 {
            return 0.0;
        }
        cov / (var_x.sqrt() * var_y.sqrt())
    }

    /// Empirical accuracy: per trial the target talks (with her partner
    /// co-scheduled) or not, over `rounds` rounds with a random ~50%
    /// online schedule; guess "talking" iff correlation > 0.5·(expected
    /// correlation under talking).
    pub fn evaluate<R: Rng>(
        rng: &mut R,
        model: &ObservableModel,
        rounds: usize,
        trials: usize,
    ) -> f64 {
        let mut correct = 0usize;
        for _ in 0..trials {
            let talking = rng.gen_bool(0.5);
            let schedule: Vec<bool> = (0..rounds).map(|_| rng.gen_bool(0.5)).collect();
            let m2: Vec<u64> = schedule
                .iter()
                .map(|&online| {
                    model
                        .sample(
                            rng,
                            RoundTruth {
                                talking_pairs: u64::from(talking && online),
                                lone_users: 0,
                            },
                        )
                        .m2
                })
                .collect();
            let corr = Self::correlation(&schedule, &m2);
            // With no noise and talking, corr ≈ 1; threshold halfway.
            if (corr > 0.5) == talking {
                correct += 1;
            }
        }
        correct as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::max_accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_dp::accounting::conversation_round;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};

    fn no_noise_model() -> ObservableModel {
        ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(1.0, 1.0),
            mode: NoiseMode::Off,
        }
    }

    fn vuvuzela_model() -> ObservableModel {
        ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(1000.0, 50.0),
            mode: NoiseMode::Sampled,
        }
    }

    #[test]
    fn intersection_attack_wins_without_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let attack = IntersectionAttack { window: 3 };
        let accuracy = attack.evaluate(&mut rng, &no_noise_model(), 5, 400);
        assert!(accuracy > 0.99, "no-noise accuracy {accuracy}");
    }

    #[test]
    fn intersection_attack_blinded_by_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let attack = IntersectionAttack { window: 3 };
        let accuracy = attack.evaluate(&mut rng, &vuvuzela_model(), 5, 2000);
        assert!(
            (0.44..=0.56).contains(&accuracy),
            "noised accuracy {accuracy} should be ≈ 0.5"
        );
    }

    #[test]
    #[should_panic(expected = "at least one observed round")]
    fn intersection_attack_rejects_empty_window() {
        // Regression: window = 0 used to evaluate every trial against two
        // empty means (guess always false → a fake ≈50% accuracy).
        let mut rng = StdRng::seed_from_u64(7);
        let attack = IntersectionAttack { window: 0 };
        let _ = attack.evaluate(&mut rng, &no_noise_model(), 5, 10);
    }

    #[test]
    fn disruption_attack_wins_without_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let accuracy = DisruptionAttack::evaluate(&mut rng, &no_noise_model(), 400);
        assert!(accuracy > 0.99, "no-noise accuracy {accuracy}");
    }

    #[test]
    fn disruption_attack_bounded_by_dp() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = vuvuzela_model();
        let accuracy = DisruptionAttack::evaluate(&mut rng, &model, 4000);
        // Per-round guarantee for (µ=1000, b=50) per server; the honest
        // server's noise alone provides it.
        let round = conversation_round(1000.0, 50.0);
        let bound = max_accuracy(round.epsilon, round.delta);
        // Allow Monte-Carlo (~±0.011 at 2·4000 samples) + threshold
        // overfitting slack.
        assert!(
            accuracy <= bound + 0.02,
            "accuracy {accuracy} exceeds DP bound {bound}"
        );
        assert!(accuracy < 0.56, "accuracy {accuracy} suspiciously high");
    }

    #[test]
    fn disruption_threshold_rule_is_monotone() {
        assert!(DisruptionAttack::guess(10, 5.0));
        assert!(!DisruptionAttack::guess(3, 5.0));
    }

    #[test]
    fn disclosure_attack_wins_without_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let accuracy = StatisticalDisclosureAttack::evaluate(&mut rng, &no_noise_model(), 40, 200);
        assert!(accuracy > 0.95, "no-noise accuracy {accuracy}");
    }

    #[test]
    fn disclosure_attack_blinded_by_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let accuracy = StatisticalDisclosureAttack::evaluate(&mut rng, &vuvuzela_model(), 40, 400);
        assert!(
            (0.40..=0.60).contains(&accuracy),
            "noised accuracy {accuracy} should be ≈ 0.5"
        );
    }

    #[test]
    fn correlation_handles_degenerate_series() {
        assert_eq!(
            StatisticalDisclosureAttack::correlation(&[true, true], &[1, 1]),
            0.0
        );
        assert_eq!(StatisticalDisclosureAttack::correlation(&[], &[]), 0.0);
    }

    #[test]
    fn correlation_detects_perfect_signal() {
        let online = [true, false, true, false, true, false];
        let m2 = [5u64, 4, 5, 4, 5, 4];
        let corr = StatisticalDisclosureAttack::correlation(&online, &m2);
        assert!((corr - 1.0).abs() < 1e-9);
    }
}
