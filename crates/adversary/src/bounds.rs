//! Theoretical limits on attack success implied by (ε, δ)-DP.
//!
//! If the observables are (ε, δ)-differentially private with respect to
//! one user's actions, then *any* distinguisher deciding between two
//! adjacent worlds with equal priors has accuracy at most
//! `e^ε / (1 + e^ε) + δ`. The attack evaluations compare their empirical
//! accuracy against this ceiling — the code-level restatement of the
//! paper's plausible-deniability claim (§2.2, §6.4).

/// The maximum accuracy of any equal-prior distinguisher against an
/// (ε, δ)-DP mechanism.
#[must_use]
pub fn max_accuracy(epsilon: f64, delta: f64) -> f64 {
    (epsilon.exp() / (1.0 + epsilon.exp()) + delta).min(1.0)
}

/// The corresponding advantage over random guessing (accuracy − ½).
#[must_use]
pub fn max_advantage(epsilon: f64, delta: f64) -> f64 {
    max_accuracy(epsilon, delta) - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_epsilon_means_coin_flip() {
        assert!((max_accuracy(0.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((max_advantage(0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn ln2_bounds_two_thirds() {
        // ε = ln 2 → accuracy ≤ 2/3, matching the paper's posterior
        // example (50% prior → 67%).
        let acc = max_accuracy(core::f64::consts::LN_2, 0.0);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn huge_epsilon_saturates_at_one() {
        assert_eq!(max_accuracy(100.0, 0.5), 1.0);
    }

    #[test]
    fn delta_adds_linearly() {
        let base = max_accuracy(0.1, 0.0);
        assert!((max_accuracy(0.1, 1e-3) - base - 1e-3).abs() < 1e-12);
    }
}
