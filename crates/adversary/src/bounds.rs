//! Theoretical limits on attack success implied by (ε, δ)-DP.
//!
//! If the observables are (ε, δ)-differentially private with respect to
//! one user's actions, then *any* distinguisher deciding between two
//! adjacent worlds with equal priors has accuracy at most
//! `e^ε / (1 + e^ε) + δ`. The attack evaluations compare their empirical
//! accuracy against this ceiling — the code-level restatement of the
//! paper's plausible-deniability claim (§2.2, §6.4).

/// The maximum accuracy of any equal-prior distinguisher against an
/// (ε, δ)-DP mechanism.
#[must_use]
pub fn max_accuracy(epsilon: f64, delta: f64) -> f64 {
    (epsilon.exp() / (1.0 + epsilon.exp()) + delta).min(1.0)
}

/// The corresponding advantage over random guessing (accuracy − ½),
/// clamped to the meaningful range `[0, 0.5]`: advantage can neither be
/// negative (guessing randomly always achieves 0) nor exceed ½ (accuracy
/// is capped at 1), regardless of how degenerate the (ε, δ) inputs are.
#[must_use]
pub fn max_advantage(epsilon: f64, delta: f64) -> f64 {
    (max_accuracy(epsilon, delta) - 0.5).clamp(0.0, 0.5)
}

/// Two-sided Hoeffding deviation bound for an empirical accuracy
/// estimated from `trials` Bernoulli outcomes: with probability ≥ 1 − α
/// the empirical mean is within `sqrt(ln(2/α) / (2·trials))` of the true
/// accuracy. The attack gate adds this slack to the measured advantage
/// before comparing against [`max_advantage`], so a finite trial count
/// cannot produce a false "bound exceeded" verdict (at confidence 1 − α).
///
/// # Panics
///
/// Panics if `trials == 0` or `alpha` is outside `(0, 1)`.
#[must_use]
pub fn hoeffding_slack(trials: usize, alpha: f64) -> f64 {
    assert!(trials > 0, "slack is undefined for zero trials");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "confidence parameter must be in (0, 1)"
    );
    ((2.0 / alpha).ln() / (2.0 * trials as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_epsilon_means_coin_flip() {
        assert!((max_accuracy(0.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((max_advantage(0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn ln2_bounds_two_thirds() {
        // ε = ln 2 → accuracy ≤ 2/3, matching the paper's posterior
        // example (50% prior → 67%).
        let acc = max_accuracy(core::f64::consts::LN_2, 0.0);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn huge_epsilon_saturates_at_one() {
        assert_eq!(max_accuracy(100.0, 0.5), 1.0);
    }

    #[test]
    fn delta_adds_linearly() {
        let base = max_accuracy(0.1, 0.0);
        assert!((max_accuracy(0.1, 1e-3) - base - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn advantage_is_clamped_to_meaningful_range() {
        // ε = 0, large δ: accuracy saturates at 1.0, so advantage must
        // cap at exactly 0.5 — the corner the attack gate's negative
        // controls rely on.
        assert_eq!(max_advantage(0.0, 0.7), 0.5);
        assert_eq!(max_advantage(100.0, 0.5), 0.5);
        // ε = 0, small δ: advantage is exactly δ.
        assert!((max_advantage(0.0, 1e-3) - 1e-3).abs() < 1e-12);
        // Degenerate negative ε pushes raw accuracy below ½; advantage
        // must clamp at 0, never go negative.
        assert_eq!(max_advantage(-1.0, 0.0), 0.0);
    }

    #[test]
    fn hoeffding_slack_shrinks_with_trials() {
        let wide = hoeffding_slack(100, 0.01);
        let narrow = hoeffding_slack(10_000, 0.01);
        assert!(wide > narrow);
        // Closed form: sqrt(ln(200) / 200).
        assert!((wide - (200.0f64.ln() / 200.0).sqrt()).abs() < 1e-12);
        // More confidence (smaller α) → more slack.
        assert!(hoeffding_slack(100, 1e-6) > wide);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn hoeffding_slack_rejects_zero_trials() {
        let _ = hoeffding_slack(0, 0.01);
    }
}
