//! A Bahramali-style event detector graded against the DP bound.
//!
//! The attacker's job: given two *adjacent worlds* — twin deployments
//! identical except for one target user's behaviour (talking to their
//! partner vs. sitting idle) — decide from a transcript's public
//! statistics which world produced it. Differential privacy promises
//! that no such distinguisher beats [`crate::bounds::max_advantage`]
//! of the composed (ε′, δ′) the transcript itself reports.
//!
//! The detector here is the strongest single-statistic attack on the
//! dead-drop histogram: it sweeps every threshold over a scalar
//! feature of each conversation round ([`pair_activity_feature`]) on
//! *training* transcripts, keeps the orientation and cut that best
//! separate the worlds, and is then scored on *held-out* transcripts.
//! Its held-out advantage, plus a Hoeffding slack for the finite
//! sample, must stay under the bound on every honest deployment — and
//! must *exceed* it when the cover noise is turned off or undersized,
//! which is what makes the harness falsifiable rather than
//! vacuously green.

use crate::bounds::{hoeffding_slack, max_advantage};

/// The per-round scalar the detector thresholds.
///
/// A talking target pair converts two singleton accesses into one
/// mutual dead drop: versus the idle world the round's histogram
/// shifts by `m2 + 1, m1 − 2`. The contrast `2·m2 − m1` moves by +4
/// per round — the largest shift available from the (m1, m2) pair —
/// while honest Laplace noise perturbs it with scale ~√5·b. Returned
/// as `i64` since the contrast can go negative.
#[must_use]
pub fn pair_activity_feature(m1: u64, m2: u64) -> i64 {
    2 * (m2 as i64) - (m1 as i64)
}

/// A trained threshold rule over [`pair_activity_feature`] values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdDetector {
    /// Classify as "talking" on this side of the cut.
    pub threshold: i64,
    /// `true`: feature > threshold ⇒ talking; `false`: the reverse.
    pub talking_above: bool,
}

impl ThresholdDetector {
    /// Fits the optimal threshold on labelled training features by
    /// exhaustive sweep: every observed value and its successor, in
    /// both orientations, keeping the first cut with the highest
    /// training accuracy (deterministic for reproducible verdicts).
    ///
    /// # Panics
    ///
    /// Panics if either training set is empty — a detector fitted on
    /// nothing would silently classify at chance.
    #[must_use]
    pub fn train(talking: &[i64], idle: &[i64]) -> ThresholdDetector {
        assert!(
            !talking.is_empty() && !idle.is_empty(),
            "cannot train a detector without samples from both worlds"
        );
        let mut candidates: Vec<i64> = talking.iter().chain(idle).copied().collect();
        candidates.sort_unstable();
        candidates.dedup();
        // Also cut just above each observed value so a perfectly
        // separable pair of worlds reaches accuracy 1.0.
        let above: Vec<i64> = candidates.iter().map(|v| v.saturating_add(1)).collect();
        candidates.extend(above);
        candidates.sort_unstable();
        candidates.dedup();

        let mut best = ThresholdDetector {
            threshold: candidates[0],
            talking_above: true,
        };
        let mut best_correct = 0usize;
        for &threshold in &candidates {
            for talking_above in [true, false] {
                let rule = ThresholdDetector {
                    threshold,
                    talking_above,
                };
                let correct = talking.iter().filter(|&&f| rule.classify(f)).count()
                    + idle.iter().filter(|&&f| !rule.classify(f)).count();
                if correct > best_correct {
                    best_correct = correct;
                    best = rule;
                }
            }
        }
        best
    }

    /// `true` if the rule labels this feature value "talking".
    #[must_use]
    pub fn classify(&self, feature: i64) -> bool {
        if self.talking_above {
            feature > self.threshold
        } else {
            feature <= self.threshold
        }
    }

    /// Scores the detector on held-out labelled features.
    ///
    /// # Panics
    ///
    /// Panics if both held-out sets are empty.
    #[must_use]
    pub fn evaluate(&self, talking: &[i64], idle: &[i64]) -> DetectionOutcome {
        let trials = talking.len() + idle.len();
        assert!(trials > 0, "cannot evaluate a detector on zero trials");
        let correct = talking.iter().filter(|&&f| self.classify(f)).count()
            + idle.iter().filter(|&&f| !self.classify(f)).count();
        let accuracy = correct as f64 / trials as f64;
        DetectionOutcome {
            detector: *self,
            trials,
            accuracy,
            // A coin-flipping adversary scores 0.5; advantage below
            // chance is no advantage (the bound is on |acc − ½| and
            // an adversary could negate the rule, but a *trained*
            // detector below chance just means the worlds are
            // indistinguishable at this sample size).
            advantage: (accuracy - 0.5).max(0.0),
        }
    }
}

/// A detector's held-out performance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionOutcome {
    /// The rule that was evaluated.
    pub detector: ThresholdDetector,
    /// Held-out sample count across both worlds.
    pub trials: usize,
    /// Fraction of held-out samples labelled correctly.
    pub accuracy: f64,
    /// `max(accuracy − ½, 0)` — the distinguishing advantage.
    pub advantage: f64,
}

impl DetectionOutcome {
    /// Grades this outcome against the deployment's composed budget:
    /// the verdict the attack harness asserts on.
    #[must_use]
    pub fn grade(&self, epsilon: f64, delta: f64, alpha: f64) -> DetectionGrade {
        let bound = max_advantage(epsilon, delta);
        let slack = hoeffding_slack(self.trials, alpha);
        DetectionGrade {
            bound,
            slack,
            // Honest deployments must satisfy this…
            within_bound: self.advantage + slack <= bound,
            // …and broken ones must trip this (no slack credit: the
            // point estimate itself must clear the bound).
            exceeds_bound: self.advantage > bound,
        }
    }
}

/// An outcome compared against `max_advantage(ε′, δ′)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionGrade {
    /// `max_advantage(ε′, δ′)` for the graded budget.
    pub bound: f64,
    /// Hoeffding finite-sample slack at the grading confidence.
    pub slack: f64,
    /// `advantage + slack ≤ bound` — the honest-deployment gate.
    pub within_bound: bool,
    /// `advantage > bound` — the broken-deployment (negative-control)
    /// gate.
    pub exceeds_bound: bool,
}

/// Splits per-seed feature vectors into train/test halves by seed
/// index (first half trains, second half is held out), flattening each
/// half. Seeds — not rounds — are the split unit so the held-out set
/// never shares a deployment with training.
#[must_use]
pub fn split_by_seed(per_seed: &[Vec<i64>]) -> (Vec<i64>, Vec<i64>) {
    let cut = per_seed.len() / 2;
    let train = per_seed[..cut].iter().flatten().copied().collect();
    let test = per_seed[cut..].iter().flatten().copied().collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_worlds_reach_full_advantage() {
        let talking = [10, 11, 12, 13];
        let idle = [0, 1, 2, 3];
        let d = ThresholdDetector::train(&talking, &idle);
        let out = d.evaluate(&talking, &idle);
        assert_eq!(out.accuracy, 1.0);
        assert_eq!(out.advantage, 0.5);
        assert!(d.talking_above);
    }

    #[test]
    fn orientation_flips_when_talking_sits_below() {
        let talking = [0, 1, 2, 3];
        let idle = [10, 11, 12, 13];
        let d = ThresholdDetector::train(&talking, &idle);
        assert!(!d.talking_above);
        let out = d.evaluate(&talking, &idle);
        assert_eq!(out.accuracy, 1.0);
    }

    #[test]
    fn identical_worlds_yield_no_advantage() {
        let samples = [5, 6, 7, 5, 6, 7, 8, 4];
        let d = ThresholdDetector::train(&samples, &samples);
        let out = d.evaluate(&samples, &samples);
        // Best possible on identical distributions is chance.
        assert!((out.accuracy - 0.5).abs() < 1e-12);
        assert_eq!(out.advantage, 0.0);
    }

    #[test]
    fn feature_shift_matches_the_pairing_algebra() {
        // Idle round: (m1, m2); talking twin: (m1 − 2, m2 + 1).
        let idle = pair_activity_feature(412, 203);
        let talking = pair_activity_feature(410, 204);
        assert_eq!(talking - idle, 4);
    }

    #[test]
    fn grade_gates_point_in_opposite_directions() {
        let out = DetectionOutcome {
            detector: ThresholdDetector {
                threshold: 0,
                talking_above: true,
            },
            trials: 200,
            accuracy: 0.8,
            advantage: 0.3,
        };
        // A tight budget: adv 0.3 must trip the negative-control
        // gate and fail the honest gate.
        let g = out.grade(0.2, 1e-3, 0.01);
        assert!(!g.within_bound);
        assert!(g.exceeds_bound);
        // A huge budget bounds nothing: adv 0.3 + slack ≤ 0.5 passes
        // (slack at 200 trials is ≈ 0.115).
        let g = out.grade(10.0, 1e-3, 0.01);
        assert!(g.within_bound);
        assert!(!g.exceeds_bound);
    }

    #[test]
    fn split_by_seed_keeps_deployments_apart() {
        let per_seed = vec![vec![1, 2], vec![3], vec![4, 5], vec![6]];
        let (train, test) = split_by_seed(&per_seed);
        assert_eq!(train, vec![1, 2, 3]);
        assert_eq!(test, vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "cannot train")]
    fn training_on_an_empty_world_panics() {
        let _ = ThresholdDetector::train(&[], &[1, 2]);
    }
}
