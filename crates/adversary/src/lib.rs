//! Traffic-analysis attacks against Vuvuzela (paper §2.1, §4.2) and the
//! machinery to evaluate them.
//!
//! The paper motivates Vuvuzela's design with concrete attacks:
//!
//! * **intersection** — "the adversary can simply wait for Alice to go
//!   offline, and look at the difference in dead drop access counts
//!   between rounds" (§4.2);
//! * **disruption** — an adversary controlling the first and last servers
//!   "collects requests from all users at the first server, but then
//!   throws away all requests except those from Alice and Bob" and checks
//!   whether a dead drop still gets two accesses (§4.2);
//! * **statistical disclosure** — correlate a target's online schedule
//!   with the exchange counts over many rounds.
//!
//! Every attack here consumes only the *legitimate observables*
//! ([`vuvuzela_core::observables`]) plus link taps — the same information
//! a real adversary would have. The point of the crate is Figure-2-style
//! evidence: the attacks demolish a noiseless mixnet and are reduced to
//! coin-flipping by Vuvuzela's cover traffic, with the residual advantage
//! bounded by the (ε, δ) accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod bounds;
pub mod detector;
pub mod model;
pub mod taps;
pub mod transcript;

pub use attacks::{DisruptionAttack, IntersectionAttack, StatisticalDisclosureAttack};
pub use bounds::{hoeffding_slack, max_accuracy, max_advantage};
pub use detector::{
    pair_activity_feature, split_by_seed, DetectionGrade, DetectionOutcome, ThresholdDetector,
};
pub use model::ObservableModel;
pub use transcript::TranscriptView;
