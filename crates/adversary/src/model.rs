//! A fast observable-level model of Vuvuzela rounds.
//!
//! §6.1 of the paper establishes that — given the cryptographic
//! indistinguishability of requests (verified end-to-end elsewhere in
//! this repository) — the adversary's entire per-round view of the
//! conversation protocol collapses to the pair `(m1, m2)`. That makes
//! attack *statistics* cheap to evaluate: instead of running thousands of
//! full crypto rounds, [`ObservableModel`] samples `(m1, m2)` directly
//! from the ground truth plus each noising server's truncated Laplace
//! cover traffic.
//!
//! Integration tests cross-validate this model against the real chain
//! (same deterministic noise, same counts); the attack evaluations in
//! [`crate::attacks`] and the `attack_demo` benchmark then use the model
//! for the heavy Monte-Carlo parts.

use rand::Rng;
use vuvuzela_core::observables::ConversationObservables;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// Ground truth for one simulated round.
#[derive(Clone, Copy, Debug)]
pub struct RoundTruth {
    /// Users engaged in reciprocated conversations (pairs): contributes
    /// `talking_pairs` to m2.
    pub talking_pairs: u64,
    /// Users doing fake/unreciprocated exchanges: contributes to m1.
    pub lone_users: u64,
}

/// Samples the last server's view of conversation rounds.
#[derive(Clone, Copy, Debug)]
pub struct ObservableModel {
    /// Number of servers that add noise (chain length − 1).
    pub noising_servers: usize,
    /// Per-server noise distribution.
    pub noise: NoiseDistribution,
    /// Sampled vs deterministic vs off.
    pub mode: NoiseMode,
}

impl ObservableModel {
    /// Samples one round's observables for the given ground truth.
    pub fn sample<R: Rng>(&self, rng: &mut R, truth: RoundTruth) -> ConversationObservables {
        let mut m1 = truth.lone_users;
        let mut m2 = truth.talking_pairs;
        for _ in 0..self.noising_servers {
            m1 += self.noise.sample_count(rng, self.mode);
            // Algorithm 2: n2 requests → ⌊n2/2⌋ same-drop pairs; an odd
            // draw's leftover request is a singleton drop in the real
            // chain (1 access), so it counts toward m1, not m2.
            let n2 = self.noise.sample_count(rng, self.mode);
            m2 += n2 / 2;
            m1 += n2 % 2;
        }
        ConversationObservables {
            m1,
            m2,
            m_many: 0,
            total_requests: m1 + 2 * m2,
        }
    }

    /// Samples a whole trace: one observable per round, with per-round
    /// ground truth from a closure.
    pub fn sample_trace<R: Rng>(
        &self,
        rng: &mut R,
        rounds: usize,
        truth_for_round: impl Fn(usize) -> RoundTruth,
    ) -> Vec<ConversationObservables> {
        (0..rounds)
            .map(|r| self.sample(rng, truth_for_round(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_mode_matches_hand_count() {
        let model = ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(4.0, 1.0),
            mode: NoiseMode::Deterministic,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let obs = model.sample(
            &mut rng,
            RoundTruth {
                talking_pairs: 1,
                lone_users: 3,
            },
        );
        // Each server: m1 += 4, m2 += 2.
        assert_eq!(obs.m1, 3 + 8);
        assert_eq!(obs.m2, 1 + 4);
        assert_eq!(obs.total_requests, obs.m1 + 2 * obs.m2);
    }

    #[test]
    fn odd_n2_draw_credits_a_singleton() {
        // µ = 5 deterministic → every server draws n1 = n2 = 5: the n2
        // requests pair into ⌊5/2⌋ = 2 drops and the leftover request is
        // a singleton, so each server adds m1 += 5 + 1 and m2 += 2.
        let model = ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(5.0, 1.0),
            mode: NoiseMode::Deterministic,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let obs = model.sample(
            &mut rng,
            RoundTruth {
                talking_pairs: 1,
                lone_users: 3,
            },
        );
        assert_eq!(obs.m1, 3 + 2 * 6);
        assert_eq!(obs.m2, 1 + 2 * 2);
        assert_eq!(obs.total_requests, obs.m1 + 2 * obs.m2);
    }

    #[test]
    fn off_mode_is_ground_truth() {
        let model = ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(100.0, 10.0),
            mode: NoiseMode::Off,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let obs = model.sample(
            &mut rng,
            RoundTruth {
                talking_pairs: 2,
                lone_users: 5,
            },
        );
        assert_eq!(obs.m1, 5);
        assert_eq!(obs.m2, 2);
    }

    #[test]
    fn sampled_mode_is_noisy_but_centered() {
        let model = ObservableModel {
            noising_servers: 2,
            noise: NoiseDistribution::new(1000.0, 30.0),
            mode: NoiseMode::Sampled,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let trace = model.sample_trace(&mut rng, 2000, |_| RoundTruth {
            talking_pairs: 0,
            lone_users: 0,
        });
        let mean_m1: f64 = trace.iter().map(|o| o.m1 as f64).sum::<f64>() / trace.len() as f64;
        let mean_m2: f64 = trace.iter().map(|o| o.m2 as f64).sum::<f64>() / trace.len() as f64;
        assert!((mean_m1 - 2000.0).abs() < 25.0, "mean m1 {mean_m1}");
        assert!((mean_m2 - 1000.0).abs() < 15.0, "mean m2 {mean_m2}");
    }
}
