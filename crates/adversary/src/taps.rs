//! Reusable adversary taps for [`vuvuzela_net::link::Link`]s.
//!
//! Passive taps ([`SizeRecorder`]) observe; tampering taps exercise the
//! §2.3 active adversary, who "can monitor, block, delay, or inject
//! traffic on any network link": [`DropFraction`] discards,
//! [`DelayBatch`] holds a round's batch and releases it merged into a
//! later round, [`ReplayBatch`] re-sends a copied batch, and
//! [`InjectOnions`] pushes well-formed garbage. Every tampering tap is
//! link-addressable (a tap is attached to one [`vuvuzela_net::Link`])
//! and round-addressable (via a [`RoundWindow`] or explicit round
//! fields). A [`TapStack`] composes several taps on one link — the
//! "coalition multiplexes inside its own `Tap` implementation"
//! convention from the `Link` docs.

use vuvuzela_net::link::{Tap, TapContext};

/// An inclusive round range restricting when a tampering tap acts —
/// the "round-addressable" half of the taps' addressing contract (the
/// link they are attached to is the other half).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundWindow {
    /// First round (inclusive) the tap interferes with.
    pub first: u64,
    /// Last round (inclusive) the tap interferes with.
    pub last: u64,
}

impl RoundWindow {
    /// Every round.
    pub const ALL: RoundWindow = RoundWindow {
        first: 0,
        last: u64::MAX,
    };

    /// Exactly one round.
    #[must_use]
    pub fn only(round: u64) -> RoundWindow {
        RoundWindow {
            first: round,
            last: round,
        }
    }

    /// Every round from `round` on.
    #[must_use]
    pub fn from(round: u64) -> RoundWindow {
        RoundWindow {
            first: round,
            last: u64::MAX,
        }
    }

    /// Whether `round` falls inside the window.
    #[must_use]
    pub fn contains(&self, round: u64) -> bool {
        (self.first..=self.last).contains(&round)
    }
}

/// Keeps only the requests at the given batch indices — the §4.2
/// disruption attack's "throws away all requests except those from Alice
/// and Bob". Meaningful on the clients→entry or entry→server-0 link,
/// where batch order still identifies clients. Kept entries stay in
/// batch order; the filter runs in place without cloning any onion.
pub struct KeepOnly {
    /// Indices (into the forward batch) to let through.
    pub indices: Vec<usize>,
    /// Restrict interference to this round, passing other rounds
    /// untouched; `None` applies every round.
    pub only_round: Option<u64>,
}

impl Tap for KeepOnly {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if let Some(round) = self.only_round {
            if ctx.round != round {
                return;
            }
        }
        let mut index = 0;
        batch.retain(|_| {
            let keep = self.indices.contains(&index);
            index += 1;
            keep
        });
    }
}

/// Blocks every request from one client index — "block network traffic
/// from Alice" (§2.1).
///
/// ## Index stability under composed taps
///
/// `Vec::remove` shifts every later entry down, so a second blocking
/// tap on the same link (or any tap addressing the same forward batch
/// by original position) would hit the wrong victim. The fix is to
/// block by *stable identity within the round*: the victim's slot is
/// cleared in place — positions never move while taps are still
/// running — and the zero-length tombstone is swept afterwards.
/// Standalone (`tombstone_only: false`, the only mode a lone tap
/// needs), the sweep happens at the end of this tap's own `intercept`,
/// which is observationally identical to the old `remove`. Inside a
/// [`TapStack`], construct with `tombstone_only: true`: every blocking
/// tap then resolves its index against the *original* batch layout and
/// the stack performs one sweep after all members ran. Onions are
/// never legitimately zero-length, so tombstones are unambiguous.
pub struct BlockClient {
    /// The batch index of the victim on the tapped link, in the batch
    /// layout *before* any blocking this round.
    pub index: usize,
    /// Apply only from this round on (`None` = always).
    pub from_round: Option<u64>,
    /// Leave the cleared slot in place for an enclosing [`TapStack`]
    /// to sweep, instead of sweeping here.
    pub tombstone_only: bool,
}

impl Tap for BlockClient {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if let Some(from) = self.from_round {
            if ctx.round < from {
                return;
            }
        }
        if let Some(entry) = batch.get_mut(self.index) {
            entry.clear();
        }
        if !self.tombstone_only {
            sweep_tombstones(batch);
        }
    }
}

/// Removes the zero-length tombstones blocking taps leave behind.
fn sweep_tombstones(batch: &mut Vec<Vec<u8>>) {
    batch.retain(|entry| !entry.is_empty());
}

/// Runs several taps over the same link in order, then sweeps the
/// tombstones position-stable blockers ([`BlockClient`] with
/// `tombstone_only: true`) left behind — the coalition combinator the
/// [`vuvuzela_net::Link`] one-tap-per-link contract points to. Because
/// slots only vanish in the final sweep, every member addresses the
/// round's original batch layout.
#[derive(Default)]
pub struct TapStack {
    /// The member taps, run front to back.
    pub taps: Vec<Box<dyn Tap>>,
}

impl TapStack {
    /// A coalition of the given taps.
    #[must_use]
    pub fn new(taps: Vec<Box<dyn Tap>>) -> TapStack {
        TapStack { taps }
    }
}

impl Tap for TapStack {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        for tap in &mut self.taps {
            tap.intercept(ctx, batch);
        }
        sweep_tombstones(batch);
    }
}

/// Drops a fixed fraction of each forward batch: index `i` is discarded
/// iff `i mod denominator < numerator`, so exactly
/// `numerator/denominator` of every full stride vanishes,
/// deterministically. `{1, 1}` drops everything crossing the link in
/// the window — total blackout of the tapped hop.
pub struct DropFraction {
    /// Dropped residues per stride.
    pub numerator: u32,
    /// Stride length (must be nonzero).
    pub denominator: u32,
    /// Rounds the drop applies to.
    pub window: RoundWindow,
}

impl Tap for DropFraction {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward)
            || !self.window.contains(ctx.round)
        {
            return;
        }
        assert!(self.denominator > 0, "DropFraction denominator must be > 0");
        let mut index = 0u32;
        batch.retain(|_| {
            let keep = index % self.denominator >= self.numerator;
            index = index.wrapping_add(1);
            keep
        });
    }
}

/// Holds one round's entire forward batch and releases it *merged into*
/// a later round's batch — the cross-round delay the §2.3 adversary can
/// inflict. Held state lives inside the tap, so the delay spans
/// schedules (the tap stays attached to its link across
/// `run_mixed_schedule` calls).
///
/// Against Vuvuzela the released onions buy the adversary nothing:
/// every layer is bound to its round, so delayed requests fail
/// authentication downstream and are replaced by noise — a delayed
/// round degrades exactly like a dropped one (clients retransmit).
pub struct DelayBatch {
    /// The round whose forward batch is captured.
    pub hold_round: u64,
    /// The first round at or after which the captured batch is merged
    /// back in (strictly greater than `hold_round`).
    pub release_round: u64,
    held: Vec<Vec<u8>>,
    captured: bool,
}

impl DelayBatch {
    /// A delay of `hold_round`'s batch into `release_round`.
    ///
    /// # Panics
    ///
    /// Panics unless `release_round > hold_round` — releasing into the
    /// same or an earlier round is not a delay.
    #[must_use]
    pub fn new(hold_round: u64, release_round: u64) -> DelayBatch {
        assert!(
            release_round > hold_round,
            "release round {release_round} must follow hold round {hold_round}"
        );
        DelayBatch {
            hold_round,
            release_round,
            held: Vec::new(),
            captured: false,
        }
    }
}

impl Tap for DelayBatch {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if ctx.round == self.hold_round && !self.captured {
            self.held = std::mem::take(batch);
            self.captured = true;
        } else if ctx.round >= self.release_round && !self.held.is_empty() {
            batch.append(&mut self.held);
        }
    }
}

/// Copies one round's forward batch and re-sends the copy merged into a
/// later round — replay, the other half of the §2.3 delay/replay
/// capability. Unlike [`DelayBatch`] the original round passes
/// untouched; the replayed copies fail the round-bound authentication
/// downstream and degrade into noise.
pub struct ReplayBatch {
    /// The round whose forward batch is copied (and passed through).
    pub capture_round: u64,
    /// The round the copy is appended to (strictly greater).
    pub replay_round: u64,
    copied: Vec<Vec<u8>>,
}

impl ReplayBatch {
    /// A replay of `capture_round`'s batch into `replay_round`.
    ///
    /// # Panics
    ///
    /// Panics unless `replay_round > capture_round`.
    #[must_use]
    pub fn new(capture_round: u64, replay_round: u64) -> ReplayBatch {
        assert!(
            replay_round > capture_round,
            "replay round {replay_round} must follow capture round {capture_round}"
        );
        ReplayBatch {
            capture_round,
            replay_round,
            copied: Vec::new(),
        }
    }
}

impl Tap for ReplayBatch {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if ctx.round == self.capture_round {
            self.copied = batch.clone();
        } else if ctx.round == self.replay_round {
            batch.append(&mut self.copied);
        }
    }
}

/// Injects well-formed garbage onions: entries of exactly the width the
/// tapped link carries (copied from the batch in flight), filled with
/// seeded pseudo-random bytes. The sizes pass every stage's shape
/// checks, but the payloads fail authentication at the next server and
/// are substituted with noise — inflating the round's observable totals
/// without wedging anything. An empty batch gives no width to imitate,
/// so nothing is injected into it.
pub struct InjectOnions {
    /// Garbage onions injected per forward transfer in the window.
    pub count: usize,
    /// Rounds the injection applies to.
    pub window: RoundWindow,
    /// Seed for the deterministic garbage bytes.
    pub seed: u64,
}

impl Tap for InjectOnions {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward)
            || !self.window.contains(ctx.round)
        {
            return;
        }
        let Some(width) = batch.first().map(Vec::len) else {
            return;
        };
        for injected in 0..self.count {
            // splitmix64 over (seed, round, index): deterministic
            // garbage, different every round and every onion.
            let mut state = self
                .seed
                .wrapping_add(ctx.round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(injected as u64);
            let mut onion = Vec::with_capacity(width);
            while onion.len() < width {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let take = (width - onion.len()).min(8);
                onion.extend_from_slice(&z.to_le_bytes()[..take]);
            }
            batch.push(onion);
        }
    }
}

/// Delays traffic by one round: requests captured in round r are removed
/// and re-injected into round r+1 — the §1 "adversaries that can
/// actively disrupt traffic (e.g., inject delays)" capability.
///
/// Against Vuvuzela this buys nothing: onion layers are bound to their
/// round (per-round nonces), so replayed requests fail authentication at
/// the next server and are replaced by noise. The `delay_is_equivalent_
/// to_drop` integration test pins that property down.
#[derive(Default)]
pub struct DelayOneRound {
    held: Vec<(u64, Vec<Vec<u8>>)>,
}

impl DelayOneRound {
    /// Creates an empty delaying tap.
    #[must_use]
    pub fn new() -> DelayOneRound {
        DelayOneRound::default()
    }
}

impl Tap for DelayOneRound {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        // Release anything captured in an earlier round.
        let mut released = Vec::new();
        self.held.retain(|(round, entries)| {
            if *round < ctx.round {
                released.extend(entries.iter().cloned());
                false
            } else {
                true
            }
        });
        // Capture the current batch, substitute the released one.
        let captured = std::mem::replace(batch, released);
        self.held.push((ctx.round, captured));
    }
}

/// Slows a link down without touching any bytes: sleeps for a fixed
/// wall-clock interval on every forward transfer — the "server stalling
/// mid-round" deployment fault (a slow disk, a GC pause, a congested
/// uplink). Against the streaming scheduler this perturbs *when* batches
/// move and how rounds overlap, but must never change *what* any round
/// computes; the deployment simulator's slowdown scenario pins that down
/// by asserting a byte-identical transcript with and without the stall.
pub struct StallLink {
    /// How long each forward transfer stalls.
    pub delay: std::time::Duration,
}

impl Tap for StallLink {
    fn intercept(&mut self, ctx: &TapContext, _batch: &mut Vec<Vec<u8>>) {
        if matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            std::thread::sleep(self.delay);
        }
    }
}

/// Kills the schedule when a specific round's forward batch crosses the
/// tapped link — the "server aborts mid-round" deployment fault. The
/// panic unwinds the pipeline stage that ran the tap; the streaming
/// scheduler's abort flag then drains the surviving stages and the whole
/// schedule fails (never hangs). Disarms itself *before* panicking so
/// batches drained during the abort cannot re-trigger it, and stays
/// inert afterwards, so the deployment can keep the link (tap detached
/// or not) for subsequent schedules.
pub struct CrashOnRound {
    /// The round whose forward transfer triggers the crash.
    pub round: u64,
    /// Whether the crash is still pending.
    pub armed: bool,
}

impl CrashOnRound {
    /// An armed crash for `round`.
    #[must_use]
    pub fn new(round: u64) -> CrashOnRound {
        CrashOnRound { round, armed: true }
    }
}

impl Tap for CrashOnRound {
    fn intercept(&mut self, ctx: &TapContext, _batch: &mut Vec<Vec<u8>>) {
        if self.armed
            && ctx.round == self.round
            && matches!(ctx.direction, vuvuzela_net::Direction::Forward)
        {
            self.armed = false;
            panic!(
                "injected server fault on {} at round {}",
                ctx.link, ctx.round
            );
        }
    }
}

/// Records only the *sizes* of everything in flight — a cheap global
/// passive observer for asserting the fixed-size invariants.
#[derive(Default)]
pub struct SizeRecorder {
    /// `(round, direction-is-forward, sizes)` per observed batch.
    pub batches: Vec<(u64, bool, Vec<usize>)>,
}

impl Tap for SizeRecorder {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        self.batches.push((
            ctx.round,
            matches!(ctx.direction, vuvuzela_net::Direction::Forward),
            batch.iter().map(Vec::len).collect(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_net::link::Direction;
    use vuvuzela_net::{Link, LinkId};

    fn batch3() -> Vec<Vec<u8>> {
        vec![vec![0], vec![1], vec![2]]
    }

    #[test]
    fn keep_only_filters_forward_traffic() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(KeepOnly {
            indices: vec![0, 2],
            only_round: None,
        })));
        let out = link.transmit(0, Direction::Forward, batch3());
        assert_eq!(out, vec![vec![0], vec![2]]);
        // Backward traffic untouched.
        let back = link.transmit(0, Direction::Backward, batch3());
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn keep_only_respects_round_filter() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(KeepOnly {
            indices: vec![1],
            only_round: Some(5),
        })));
        assert_eq!(link.transmit(4, Direction::Forward, batch3()).len(), 3);
        assert_eq!(
            link.transmit(5, Direction::Forward, batch3()),
            vec![vec![1]]
        );
    }

    #[test]
    fn block_client_removes_one() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(BlockClient {
            index: 1,
            from_round: Some(2),
            tombstone_only: false,
        })));
        assert_eq!(link.transmit(1, Direction::Forward, batch3()).len(), 3);
        let out = link.transmit(2, Direction::Forward, batch3());
        assert_eq!(out, vec![vec![0], vec![2]]);
    }

    #[test]
    fn two_blockers_on_one_link_hit_their_original_indices() {
        // Regression for the index-shift hazard: composing two blocking
        // taps with bare `Vec::remove` semantics would let the first
        // removal shift the second victim (index 3 would hit the
        // *fourth* remaining entry, i.e. original index 4). Tombstoning
        // keeps positions stable until the stack's single sweep.
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(TapStack::new(vec![
            Box::new(BlockClient {
                index: 1,
                from_round: None,
                tombstone_only: true,
            }),
            Box::new(BlockClient {
                index: 3,
                from_round: None,
                tombstone_only: true,
            }),
        ]))));
        let batch: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i]).collect();
        let out = link.transmit(0, Direction::Forward, batch);
        assert_eq!(
            out,
            vec![vec![0], vec![2], vec![4]],
            "exactly original indices 1 and 3 must vanish"
        );
    }

    #[test]
    fn keep_only_runs_in_place_preserving_batch_order() {
        let mut tap = KeepOnly {
            indices: vec![2, 0], // unsorted: order must not matter
            only_round: None,
        };
        let mut batch = batch3();
        tap.intercept(
            &TapContext {
                link: LinkId::Hop(0),
                round: 0,
                direction: Direction::Forward,
            },
            &mut batch,
        );
        assert_eq!(batch, vec![vec![0], vec![2]]);
    }

    #[test]
    fn delay_tap_shifts_batches_by_one_round() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(DelayOneRound::new())));
        // Round 0's batch is swallowed.
        let out0 = link.transmit(0, Direction::Forward, vec![vec![0]]);
        assert!(out0.is_empty());
        // Round 1 receives round 0's traffic; round 1's is held.
        let out1 = link.transmit(1, Direction::Forward, vec![vec![1]]);
        assert_eq!(out1, vec![vec![0]]);
        let out2 = link.transmit(2, Direction::Forward, vec![vec![2]]);
        assert_eq!(out2, vec![vec![1]]);
        // Backward traffic is untouched.
        let back = link.transmit(2, Direction::Backward, vec![vec![9]]);
        assert_eq!(back, vec![vec![9]]);
    }

    #[test]
    fn crash_on_round_fires_once_and_only_forward() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(CrashOnRound::new(2))));
        // Other rounds and backward traffic pass untouched.
        assert_eq!(link.transmit(1, Direction::Forward, batch3()).len(), 3);
        assert_eq!(link.transmit(2, Direction::Backward, batch3()).len(), 3);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            link.transmit(2, Direction::Forward, batch3())
        }));
        assert!(boom.is_err(), "armed tap must panic on its round");
        // Disarmed: the same round drains through afterwards.
        assert_eq!(link.transmit(2, Direction::Forward, batch3()).len(), 3);
    }

    #[test]
    fn stall_link_changes_nothing_but_time() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(StallLink {
            delay: std::time::Duration::from_millis(1),
        })));
        assert_eq!(link.transmit(0, Direction::Forward, batch3()), batch3());
        assert_eq!(link.transmit(0, Direction::Backward, batch3()), batch3());
    }

    #[test]
    fn size_recorder_sees_sizes_only() {
        let mut link = Link::new(LinkId::Hop(0));
        let tap = std::sync::Arc::new(parking_lot_mutex(SizeRecorder::default()));
        link.attach_tap(tap.clone());
        let _ = link.transmit(9, Direction::Forward, vec![vec![0u8; 7], vec![0u8; 7]]);
        let guard = tap.lock();
        assert_eq!(guard.batches, vec![(9, true, vec![7, 7])]);
    }

    #[test]
    fn drop_fraction_discards_deterministic_stride() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(DropFraction {
            numerator: 1,
            denominator: 3,
            window: RoundWindow::from(2),
        })));
        // Outside the window: untouched.
        assert_eq!(link.transmit(1, Direction::Forward, batch3()).len(), 3);
        // In the window: indices 0 and 3 dropped out of five.
        let batch: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i]).collect();
        let out = link.transmit(2, Direction::Forward, batch);
        assert_eq!(out, vec![vec![1], vec![2], vec![4]]);
        // Backward traffic untouched.
        assert_eq!(link.transmit(2, Direction::Backward, batch3()).len(), 3);
        // {1, 1} is a total blackout.
        let mut all = DropFraction {
            numerator: 1,
            denominator: 1,
            window: RoundWindow::ALL,
        };
        let mut batch = batch3();
        all.intercept(
            &TapContext {
                link: LinkId::Hop(0),
                round: 9,
                direction: Direction::Forward,
            },
            &mut batch,
        );
        assert!(batch.is_empty());
    }

    #[test]
    fn delay_batch_holds_and_merges_into_release_round() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(DelayBatch::new(
            1, 3,
        ))));
        assert_eq!(link.transmit(0, Direction::Forward, batch3()).len(), 3);
        // Round 1 is swallowed whole.
        assert!(link.transmit(1, Direction::Forward, batch3()).is_empty());
        // Round 2 (before the release round) passes untouched.
        assert_eq!(link.transmit(2, Direction::Forward, batch3()).len(), 3);
        // Round 3 carries its own batch plus the held one, merged.
        let out = link.transmit(3, Direction::Forward, vec![vec![9]]);
        assert_eq!(out, vec![vec![9], vec![0], vec![1], vec![2]]);
        // Released exactly once.
        assert_eq!(link.transmit(4, Direction::Forward, vec![vec![8]]).len(), 1);
    }

    #[test]
    fn replay_batch_copies_without_touching_the_original() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(ReplayBatch::new(
            0, 2,
        ))));
        // The captured round passes through unchanged.
        assert_eq!(link.transmit(0, Direction::Forward, batch3()), batch3());
        assert_eq!(link.transmit(1, Direction::Forward, vec![vec![7]]).len(), 1);
        // The replay round carries its own batch plus the copy.
        let out = link.transmit(2, Direction::Forward, vec![vec![9]]);
        assert_eq!(out, vec![vec![9], vec![0], vec![1], vec![2]]);
        // Replayed exactly once.
        assert_eq!(link.transmit(3, Direction::Forward, vec![vec![8]]).len(), 1);
    }

    #[test]
    fn inject_onions_adds_width_matched_garbage() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(InjectOnions {
            count: 2,
            window: RoundWindow::only(1),
            seed: 42,
        })));
        assert_eq!(link.transmit(0, Direction::Forward, batch3()).len(), 3);
        let out = link.transmit(1, Direction::Forward, vec![vec![5u8; 64], vec![6u8; 64]]);
        assert_eq!(out.len(), 4);
        assert!(
            out.iter().all(|onion| onion.len() == 64),
            "injected onions must match the link's width"
        );
        assert_ne!(out[2], out[3], "garbage must differ per injected onion");
        // An empty batch gives no width to imitate: nothing injected.
        assert!(link.transmit(1, Direction::Forward, Vec::new()).is_empty());
        // Deterministic: the same (seed, round) reproduces the bytes.
        let mut twin = InjectOnions {
            count: 2,
            window: RoundWindow::only(1),
            seed: 42,
        };
        let mut batch = vec![vec![5u8; 64], vec![6u8; 64]];
        twin.intercept(
            &TapContext {
                link: LinkId::Hop(0),
                round: 1,
                direction: Direction::Forward,
            },
            &mut batch,
        );
        assert_eq!(batch[2..], out[2..]);
    }

    #[test]
    fn round_window_bounds_are_inclusive() {
        let w = RoundWindow { first: 2, last: 4 };
        assert!(!w.contains(1) && w.contains(2) && w.contains(4) && !w.contains(5));
        assert!(RoundWindow::ALL.contains(u64::MAX));
        assert!(RoundWindow::only(3).contains(3) && !RoundWindow::only(3).contains(4));
        assert!(RoundWindow::from(3).contains(u64::MAX) && !RoundWindow::from(3).contains(2));
    }

    fn parking_lot_mutex<T>(t: T) -> parking_lot::Mutex<T> {
        parking_lot::Mutex::new(t)
    }
}
