//! Reusable adversary taps for [`vuvuzela_net::link::Link`]s.

use vuvuzela_net::link::{Tap, TapContext};

/// Keeps only the requests at the given batch indices — the §4.2
/// disruption attack's "throws away all requests except those from Alice
/// and Bob". Meaningful on the clients→entry or entry→server-0 link,
/// where batch order still identifies clients.
pub struct KeepOnly {
    /// Indices (into the forward batch) to let through.
    pub indices: Vec<usize>,
    /// Restrict interference to this round, passing other rounds
    /// untouched; `None` applies every round.
    pub only_round: Option<u64>,
}

impl Tap for KeepOnly {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if let Some(round) = self.only_round {
            if ctx.round != round {
                return;
            }
        }
        let keep: Vec<Vec<u8>> = self
            .indices
            .iter()
            .filter_map(|&i| batch.get(i).cloned())
            .collect();
        *batch = keep;
    }
}

/// Blocks every request from one client index — "block network traffic
/// from Alice" (§2.1).
pub struct BlockClient {
    /// The batch index of the victim on the tapped link.
    pub index: usize,
    /// Apply only from this round on (`None` = always).
    pub from_round: Option<u64>,
}

impl Tap for BlockClient {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        if let Some(from) = self.from_round {
            if ctx.round < from {
                return;
            }
        }
        if self.index < batch.len() {
            batch.remove(self.index);
        }
    }
}

/// Delays traffic by one round: requests captured in round r are removed
/// and re-injected into round r+1 — the §1 "adversaries that can
/// actively disrupt traffic (e.g., inject delays)" capability.
///
/// Against Vuvuzela this buys nothing: onion layers are bound to their
/// round (per-round nonces), so replayed requests fail authentication at
/// the next server and are replaced by noise. The `delay_is_equivalent_
/// to_drop` integration test pins that property down.
#[derive(Default)]
pub struct DelayOneRound {
    held: Vec<(u64, Vec<Vec<u8>>)>,
}

impl DelayOneRound {
    /// Creates an empty delaying tap.
    #[must_use]
    pub fn new() -> DelayOneRound {
        DelayOneRound::default()
    }
}

impl Tap for DelayOneRound {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if !matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            return;
        }
        // Release anything captured in an earlier round.
        let mut released = Vec::new();
        self.held.retain(|(round, entries)| {
            if *round < ctx.round {
                released.extend(entries.iter().cloned());
                false
            } else {
                true
            }
        });
        // Capture the current batch, substitute the released one.
        let captured = std::mem::replace(batch, released);
        self.held.push((ctx.round, captured));
    }
}

/// Slows a link down without touching any bytes: sleeps for a fixed
/// wall-clock interval on every forward transfer — the "server stalling
/// mid-round" deployment fault (a slow disk, a GC pause, a congested
/// uplink). Against the streaming scheduler this perturbs *when* batches
/// move and how rounds overlap, but must never change *what* any round
/// computes; the deployment simulator's slowdown scenario pins that down
/// by asserting a byte-identical transcript with and without the stall.
pub struct StallLink {
    /// How long each forward transfer stalls.
    pub delay: std::time::Duration,
}

impl Tap for StallLink {
    fn intercept(&mut self, ctx: &TapContext, _batch: &mut Vec<Vec<u8>>) {
        if matches!(ctx.direction, vuvuzela_net::Direction::Forward) {
            std::thread::sleep(self.delay);
        }
    }
}

/// Kills the schedule when a specific round's forward batch crosses the
/// tapped link — the "server aborts mid-round" deployment fault. The
/// panic unwinds the pipeline stage that ran the tap; the streaming
/// scheduler's abort flag then drains the surviving stages and the whole
/// schedule fails (never hangs). Disarms itself *before* panicking so
/// batches drained during the abort cannot re-trigger it, and stays
/// inert afterwards, so the deployment can keep the link (tap detached
/// or not) for subsequent schedules.
pub struct CrashOnRound {
    /// The round whose forward transfer triggers the crash.
    pub round: u64,
    /// Whether the crash is still pending.
    pub armed: bool,
}

impl CrashOnRound {
    /// An armed crash for `round`.
    #[must_use]
    pub fn new(round: u64) -> CrashOnRound {
        CrashOnRound { round, armed: true }
    }
}

impl Tap for CrashOnRound {
    fn intercept(&mut self, ctx: &TapContext, _batch: &mut Vec<Vec<u8>>) {
        if self.armed
            && ctx.round == self.round
            && matches!(ctx.direction, vuvuzela_net::Direction::Forward)
        {
            self.armed = false;
            panic!(
                "injected server fault on {} at round {}",
                ctx.link, ctx.round
            );
        }
    }
}

/// Records only the *sizes* of everything in flight — a cheap global
/// passive observer for asserting the fixed-size invariants.
#[derive(Default)]
pub struct SizeRecorder {
    /// `(round, direction-is-forward, sizes)` per observed batch.
    pub batches: Vec<(u64, bool, Vec<usize>)>,
}

impl Tap for SizeRecorder {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        self.batches.push((
            ctx.round,
            matches!(ctx.direction, vuvuzela_net::Direction::Forward),
            batch.iter().map(Vec::len).collect(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_net::link::Direction;
    use vuvuzela_net::Link;

    fn batch3() -> Vec<Vec<u8>> {
        vec![vec![0], vec![1], vec![2]]
    }

    #[test]
    fn keep_only_filters_forward_traffic() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(KeepOnly {
            indices: vec![0, 2],
            only_round: None,
        })));
        let out = link.transmit(0, Direction::Forward, batch3());
        assert_eq!(out, vec![vec![0], vec![2]]);
        // Backward traffic untouched.
        let back = link.transmit(0, Direction::Backward, batch3());
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn keep_only_respects_round_filter() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(KeepOnly {
            indices: vec![1],
            only_round: Some(5),
        })));
        assert_eq!(link.transmit(4, Direction::Forward, batch3()).len(), 3);
        assert_eq!(
            link.transmit(5, Direction::Forward, batch3()),
            vec![vec![1]]
        );
    }

    #[test]
    fn block_client_removes_one() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(BlockClient {
            index: 1,
            from_round: Some(2),
        })));
        assert_eq!(link.transmit(1, Direction::Forward, batch3()).len(), 3);
        let out = link.transmit(2, Direction::Forward, batch3());
        assert_eq!(out, vec![vec![0], vec![2]]);
    }

    #[test]
    fn delay_tap_shifts_batches_by_one_round() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(DelayOneRound::new())));
        // Round 0's batch is swallowed.
        let out0 = link.transmit(0, Direction::Forward, vec![vec![0]]);
        assert!(out0.is_empty());
        // Round 1 receives round 0's traffic; round 1's is held.
        let out1 = link.transmit(1, Direction::Forward, vec![vec![1]]);
        assert_eq!(out1, vec![vec![0]]);
        let out2 = link.transmit(2, Direction::Forward, vec![vec![2]]);
        assert_eq!(out2, vec![vec![1]]);
        // Backward traffic is untouched.
        let back = link.transmit(2, Direction::Backward, vec![vec![9]]);
        assert_eq!(back, vec![vec![9]]);
    }

    #[test]
    fn crash_on_round_fires_once_and_only_forward() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(CrashOnRound::new(2))));
        // Other rounds and backward traffic pass untouched.
        assert_eq!(link.transmit(1, Direction::Forward, batch3()).len(), 3);
        assert_eq!(link.transmit(2, Direction::Backward, batch3()).len(), 3);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            link.transmit(2, Direction::Forward, batch3())
        }));
        assert!(boom.is_err(), "armed tap must panic on its round");
        // Disarmed: the same round drains through afterwards.
        assert_eq!(link.transmit(2, Direction::Forward, batch3()).len(), 3);
    }

    #[test]
    fn stall_link_changes_nothing_but_time() {
        let mut link = Link::new("t");
        link.attach_tap(std::sync::Arc::new(parking_lot_mutex(StallLink {
            delay: std::time::Duration::from_millis(1),
        })));
        assert_eq!(link.transmit(0, Direction::Forward, batch3()), batch3());
        assert_eq!(link.transmit(0, Direction::Backward, batch3()), batch3());
    }

    #[test]
    fn size_recorder_sees_sizes_only() {
        let mut link = Link::new("t");
        let tap = std::sync::Arc::new(parking_lot_mutex(SizeRecorder::default()));
        link.attach_tap(tap.clone());
        let _ = link.transmit(9, Direction::Forward, vec![vec![0u8; 7], vec![0u8; 7]]);
        let guard = tap.lock();
        assert_eq!(guard.batches, vec![(9, true, vec![7, 7])]);
    }

    fn parking_lot_mutex<T>(t: T) -> parking_lot::Mutex<T> {
        parking_lot::Mutex::new(t)
    }
}
