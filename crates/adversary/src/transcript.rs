//! The adversary's reconstruction of a deployment from its transcript.
//!
//! The `vuvuzela-sim` simulator emits a canonical line-oriented
//! transcript of everything that happened in a run. A real network
//! adversary tapping every link sees a strict *subset* of it: batch
//! sizes per link and round, the last server's public dead-drop
//! histograms (`m1`/`m2`/`m_many`, per-drop invitation counts), the
//! connected-participant counts, the round kinds, and — because the
//! noise parameters are public protocol configuration — the composed
//! (ε′, δ′) the deployment has spent. [`TranscriptView::parse`]
//! reconstructs exactly that view and **discards the ground truth**
//! the transcript also records for test assertions: the `mutual`
//! pair count inside round lines, and the `event`/`delivered`/`scan`
//! lines that say who actually dialed, talked or received. Attacks
//! built on a [`TranscriptView`] therefore consume only information a
//! real adversary would have, which is what makes grading them against
//! the DP bound ([`crate::bounds`]) meaningful.
//!
//! The parser is strict: every line of the canonical format must be
//! recognised, so format drift in the simulator fails loudly here
//! instead of silently blinding the attacker.

use vuvuzela_dp::ComposedPrivacy;

/// The public noise configuration announced in the transcript header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseHeader {
    /// Conversation noise mean µ per noising server.
    pub conversation_mu: f64,
    /// Conversation noise scale b.
    pub conversation_b: f64,
    /// Dialing noise mean µ per server per drop.
    pub dialing_mu: f64,
    /// Dialing noise scale b.
    pub dialing_b: f64,
    /// Noise mode: `sampled`, `deterministic` or `off`.
    pub mode: NoiseModeTag,
    /// Invitation drops per dialing round.
    pub drops: u32,
}

/// The transcript's noise-mode tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseModeTag {
    /// Real truncated-Laplace draws.
    Sampled,
    /// Exactly `⌈µ⌉` per draw.
    Deterministic,
    /// No cover traffic at all.
    Off,
}

/// The dead-drop histogram of one completed conversation round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConversationCounts {
    /// Requests submitted on the client link (participants × slots).
    pub submitted: u64,
    /// Dead drops accessed exactly once.
    pub m1: u64,
    /// Dead drops accessed exactly twice.
    pub m2: u64,
    /// Dead drops accessed three or more times.
    pub m_many: u64,
    /// Total requests the last server exchanged.
    pub total: u64,
}

/// One conversation round as the adversary sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConversationRound {
    /// Round id.
    pub round: u64,
    /// Connected participants (the connected-client set is public).
    pub participants: u64,
    /// The observed histogram; `None` when the transcript recorded the
    /// round as `missing-observables`.
    pub counts: Option<ConversationCounts>,
    /// The composed conversation-protocol (ε′, δ′) after this round.
    pub spent: ComposedPrivacy,
}

/// One dialing round as the adversary sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct DialingRound {
    /// Round id.
    pub round: u64,
    /// Connected participants.
    pub participants: u64,
    /// Per-drop invitation counts plus the no-op drop write count;
    /// `None` for a `missing-observables` round.
    pub counts: Option<DialingCounts>,
    /// The composed dialing-protocol (ε′, δ′) after this round.
    pub spent: ComposedPrivacy,
}

/// The per-drop histogram of one completed dialing round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DialingCounts {
    /// Invitation drops this round.
    pub drops: u32,
    /// Observed invitation count per drop.
    pub per_drop: Vec<u64>,
    /// Writes to the designated no-op drop.
    pub noop_writes: u64,
}

/// One protocol round, either kind, in transcript order.
#[derive(Clone, Debug, PartialEq)]
pub enum RoundView {
    /// A conversation round.
    Conversation(ConversationRound),
    /// A dialing round.
    Dialing(DialingRound),
}

/// One tap observation: a batch on a chain link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TapBatchView {
    /// The observed link, in the transcript's diagnostic name
    /// (e.g. `entry->server0`).
    pub link: String,
    /// Round id.
    pub round: u64,
    /// `true` for the forward direction.
    pub forward: bool,
    /// Onions in the batch.
    pub onions: u64,
    /// Uniform onion width in bytes.
    pub width: u64,
}

/// The adversary's complete reconstructed view of one transcript.
#[derive(Clone, Debug)]
pub struct TranscriptView {
    /// Scenario name from the header.
    pub scenario: String,
    /// Deployment seed (public in the simulator's world; unused by
    /// attacks, kept for artefact labelling).
    pub seed: u64,
    /// Chain length.
    pub servers: usize,
    /// The announced noise configuration.
    pub noise: NoiseHeader,
    /// The noise the *ledger* charges with, when the transcript
    /// declares it separately (a mis-deployment advertising a budget
    /// its servers do not draw). `None` means the ledger uses
    /// [`TranscriptView::noise`].
    pub claimed_noise: Option<NoiseHeader>,
    /// Every protocol round, in transcript order.
    pub rounds: Vec<RoundView>,
    /// Every tap-observed batch, in transcript order.
    pub taps: Vec<TapBatchView>,
    /// `violation …` lines the run recorded (tolerant mode).
    pub violations: usize,
    /// The `end` line's completed-round count, if the transcript has
    /// one.
    pub completed_rounds: Option<u64>,
    /// Last composed conversation spend seen (round or ledger lines).
    last_conversation: Option<ComposedPrivacy>,
    /// Last composed dialing spend seen (round or ledger lines).
    last_dialing: Option<ComposedPrivacy>,
}

impl TranscriptView {
    /// Parses a rendered transcript into the adversary's view.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unrecognised
    /// line — the parser is strict by design (see the module docs).
    pub fn parse(text: &str) -> Result<TranscriptView, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty transcript")?;
        if header != "vuvuzela-sim transcript v1" {
            return Err(format!("unsupported transcript header {header:?}"));
        }
        let mut view = TranscriptView {
            scenario: String::new(),
            seed: 0,
            servers: 0,
            noise: NoiseHeader {
                conversation_mu: 0.0,
                conversation_b: 0.0,
                dialing_mu: 0.0,
                dialing_b: 0.0,
                mode: NoiseModeTag::Deterministic,
                drops: 0,
            },
            claimed_noise: None,
            rounds: Vec::new(),
            taps: Vec::new(),
            violations: 0,
            completed_rounds: None,
            last_conversation: None,
            last_dialing: None,
        };
        for (index, line) in lines {
            view.parse_line(line)
                .map_err(|e| format!("line {}: {e} in {line:?}", index + 1))?;
        }
        Ok(view)
    }

    /// The whole transcript's composed budget as one (ε′, δ′) pair:
    /// the last conversation and dialing spends (Theorem 2 each),
    /// combined by basic composition ([`vuvuzela_dp::accounting::combine`]).
    /// A protocol with no charged rounds contributes (0, 0).
    #[must_use]
    pub fn composed_budget(&self) -> ComposedPrivacy {
        let zero = ComposedPrivacy {
            epsilon: 0.0,
            delta: 0.0,
        };
        vuvuzela_dp::accounting::combine(
            self.last_conversation.unwrap_or(zero),
            self.last_dialing.unwrap_or(zero),
        )
    }

    /// The conversation rounds, in order.
    pub fn conversation_rounds(&self) -> impl Iterator<Item = &ConversationRound> {
        self.rounds.iter().filter_map(|r| match r {
            RoundView::Conversation(c) => Some(c),
            RoundView::Dialing(_) => None,
        })
    }

    /// The dialing rounds, in order.
    pub fn dialing_rounds(&self) -> impl Iterator<Item = &DialingRound> {
        self.rounds.iter().filter_map(|r| match r {
            RoundView::Dialing(d) => Some(d),
            RoundView::Conversation(_) => None,
        })
    }

    fn parse_line(&mut self, line: &str) -> Result<(), String> {
        let mut t = Tokens::new(line);
        match t.word()? {
            "scenario" => self.scenario = t.rest(),
            "seed" => {
                self.seed = t.u64()?;
                t.expect("servers")?;
                self.servers = t.u64()? as usize;
                // workers/shards/slots/retransmit_after: deployment
                // tuning, irrelevant to the adversary's statistics.
            }
            "noise" => self.parse_noise(&mut t)?,
            "round" => {
                let round = t.u64()?;
                match t.word()? {
                    "conversation" => self.parse_conversation_round(round, &mut t)?,
                    "dialing" => self.parse_dialing_round(round, &mut t)?,
                    kind => return Err(format!("unknown round kind {kind:?}")),
                }
            }
            "tap" => {
                t.expect("link")?;
                let link = t.word()?.to_string();
                t.expect("round")?;
                let round = t.u64()?;
                let forward = match t.word()? {
                    "forward" => true,
                    "backward" => false,
                    dir => return Err(format!("unknown direction {dir:?}")),
                };
                t.expect("onions")?;
                let onions = t.u64()?;
                t.expect("width")?;
                let width = t.u64()?;
                self.taps.push(TapBatchView {
                    link,
                    round,
                    forward,
                    onions,
                    width,
                });
            }
            "ledger" => {
                // Abort-path budget line: both protocols' spends.
                t.expect("conversation")?;
                t.expect("eps")?;
                let ce = t.f64()?;
                t.expect("delta")?;
                let cd = t.f64()?;
                self.last_conversation = Some(ComposedPrivacy {
                    epsilon: ce,
                    delta: cd,
                });
                t.expect("dialing")?;
                t.expect("eps")?;
                let de = t.f64()?;
                t.expect("delta")?;
                let dd = t.f64()?;
                self.last_dialing = Some(ComposedPrivacy {
                    epsilon: de,
                    delta: dd,
                });
            }
            "violation" => self.violations += 1,
            "end" => {
                t.expect("rounds")?;
                self.completed_rounds = Some(t.u64()?);
            }
            // Ground truth the adversary must not consume: script
            // events (who dialed whom), deliveries, invitation scans.
            // Schedule plans and the end-of-run soak tallies carry no
            // per-user signal either way; all are skipped.
            "event" | "delivered" | "scan" | "schedule" | "soak" => {}
            other => return Err(format!("unrecognised record {other:?}")),
        }
        Ok(())
    }

    fn parse_noise(&mut self, t: &mut Tokens<'_>) -> Result<(), String> {
        let mut word = t.word()?;
        let claimed = word == "claimed";
        if claimed {
            word = t.word()?;
        }
        if word != "conversation" {
            return Err(format!("unknown noise record {word:?}"));
        }
        t.expect("mu")?;
        let conversation_mu = t.f64()?;
        t.expect("b")?;
        let conversation_b = t.f64()?;
        t.expect("dialing")?;
        t.expect("mu")?;
        let dialing_mu = t.f64()?;
        t.expect("b")?;
        let dialing_b = t.f64()?;
        let (mode, drops) = if claimed {
            // The claimed line re-uses the deployed line's mode/drops.
            (self.noise.mode, self.noise.drops)
        } else {
            t.expect("mode")?;
            let mode = match t.word()? {
                "sampled" => NoiseModeTag::Sampled,
                "deterministic" => NoiseModeTag::Deterministic,
                "off" => NoiseModeTag::Off,
                m => return Err(format!("unknown noise mode {m:?}")),
            };
            t.expect("drops")?;
            (mode, t.u64()? as u32)
        };
        let header = NoiseHeader {
            conversation_mu,
            conversation_b,
            dialing_mu,
            dialing_b,
            mode,
            drops,
        };
        if claimed {
            self.claimed_noise = Some(header);
        } else {
            self.noise = header;
        }
        Ok(())
    }

    fn parse_conversation_round(&mut self, round: u64, t: &mut Tokens<'_>) -> Result<(), String> {
        t.expect("participants")?;
        let participants = t.u64()?;
        let counts = match t.word()? {
            "missing-observables" => None,
            "submitted" => {
                let submitted = t.u64()?;
                // `mutual` is ground truth (who is actually talking):
                // parse past it, never store it.
                t.expect("mutual")?;
                let _ground_truth_mutual = t.u64()?;
                t.expect("m1")?;
                let m1 = t.u64()?;
                t.expect("m2")?;
                let m2 = t.u64()?;
                t.expect("mmany")?;
                let m_many = t.u64()?;
                t.expect("total")?;
                let total = t.u64()?;
                Some(ConversationCounts {
                    submitted,
                    m1,
                    m2,
                    m_many,
                    total,
                })
            }
            w => return Err(format!("unexpected token {w:?} in conversation round")),
        };
        t.expect("eps")?;
        let epsilon = t.f64()?;
        t.expect("delta")?;
        let delta = t.f64()?;
        let spent = ComposedPrivacy { epsilon, delta };
        self.last_conversation = Some(spent);
        self.rounds.push(RoundView::Conversation(ConversationRound {
            round,
            participants,
            counts,
            spent,
        }));
        Ok(())
    }

    fn parse_dialing_round(&mut self, round: u64, t: &mut Tokens<'_>) -> Result<(), String> {
        t.expect("participants")?;
        let participants = t.u64()?;
        let counts = match t.word()? {
            "missing-observables" => None,
            "drops" => {
                let drops = t.u64()? as u32;
                t.expect("counts")?;
                let list = t.word()?;
                let inner = list
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| format!("malformed counts list {list:?}"))?;
                let per_drop = inner
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse::<u64>().map_err(|e| format!("count {s:?}: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?;
                t.expect("noop")?;
                let noop_writes = t.u64()?;
                Some(DialingCounts {
                    drops,
                    per_drop,
                    noop_writes,
                })
            }
            w => return Err(format!("unexpected token {w:?} in dialing round")),
        };
        t.expect("eps")?;
        let epsilon = t.f64()?;
        t.expect("delta")?;
        let delta = t.f64()?;
        let spent = ComposedPrivacy { epsilon, delta };
        self.last_dialing = Some(spent);
        self.rounds.push(RoundView::Dialing(DialingRound {
            round,
            participants,
            counts,
            spent,
        }));
        Ok(())
    }
}

/// A whitespace token walker with descriptive errors.
struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Tokens<'a> {
        Tokens {
            iter: line.split_whitespace(),
        }
    }

    fn word(&mut self) -> Result<&'a str, String> {
        self.iter.next().ok_or_else(|| "truncated line".to_string())
    }

    fn expect(&mut self, want: &str) -> Result<(), String> {
        let got = self.word()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {got:?}"))
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let w = self.word()?;
        w.parse::<u64>().map_err(|e| format!("integer {w:?}: {e}"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let w = self.word()?;
        w.parse::<f64>().map_err(|e| format!("float {w:?}: {e}"))
    }

    /// Everything remaining, joined by single spaces.
    fn rest(&mut self) -> String {
        self.iter.clone().collect::<Vec<&str>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
vuvuzela-sim transcript v1
scenario attack_twin
seed 42 servers 3 workers 2 shards 4 slots 1 retransmit_after 2
noise conversation mu 200 b 40 dialing mu 160 b 32 mode sampled drops 1
event join clients 0..8
event dial caller 0 callee 1
schedule rounds [0:dialing]
round 0 dialing participants 8 drops 1 counts [482] noop 7 eps 3.039e-1 delta 3.49e-3
scan round 0 client 1 callers [0]
event accept client 1 caller 0
schedule rounds [1:conversation,2:conversation]
round 1 conversation participants 8 submitted 8 mutual 1 m1 412 m2 203 mmany 0 total 818 eps 5.2e-1 delta 7.1e-3
tap link entry->server0 round 1 forward onions 412 width 224
delivered round 1 client 1 from 0 body 6869
round 2 conversation participants 8 submitted 8 mutual 1 m1 399 m2 210 mmany 0 total 819 eps 7.4e-1 delta 1.42e-2
violation uniform-participation round 2: whatever
soak conversation draws 4 singles 812 pairs 401 dialing draws 3 sum 482
end rounds 3 aborted 0
";

    #[test]
    fn parses_the_adversary_visible_fields() {
        let view = TranscriptView::parse(SAMPLE).expect("parse");
        assert_eq!(view.scenario, "attack_twin");
        assert_eq!(view.seed, 42);
        assert_eq!(view.servers, 3);
        assert_eq!(view.noise.conversation_mu, 200.0);
        assert_eq!(view.noise.mode, NoiseModeTag::Sampled);
        assert!(view.claimed_noise.is_none());
        assert_eq!(view.rounds.len(), 3);
        assert_eq!(view.conversation_rounds().count(), 2);
        assert_eq!(view.dialing_rounds().count(), 1);
        let first = view.conversation_rounds().next().expect("round");
        assert_eq!(first.round, 1);
        let counts = first.counts.expect("observables");
        assert_eq!(counts.m1, 412);
        assert_eq!(counts.m2, 203);
        assert_eq!(counts.total, 818);
        let dial = view.dialing_rounds().next().expect("round");
        assert_eq!(dial.counts.as_ref().expect("counts").per_drop, vec![482]);
        assert_eq!(view.taps.len(), 1);
        assert_eq!(view.taps[0].link, "entry->server0");
        assert_eq!(view.taps[0].onions, 412);
        assert_eq!(view.violations, 1);
        assert_eq!(view.completed_rounds, Some(3));
    }

    #[test]
    fn budget_combines_the_last_spend_of_each_protocol() {
        let view = TranscriptView::parse(SAMPLE).expect("parse");
        let budget = view.composed_budget();
        // Last conversation spend + the single dialing spend.
        assert!((budget.epsilon - (0.74 + 0.3039)).abs() < 1e-12);
        assert!((budget.delta - (1.42e-2 + 3.49e-3)).abs() < 1e-12);
    }

    #[test]
    fn claimed_noise_line_is_recognised() {
        let text = "\
vuvuzela-sim transcript v1
scenario undersized
seed 1 servers 3 workers 2 shards 4 slots 1 retransmit_after 2
noise conversation mu 2 b 0.5 dialing mu 2 b 0.5 mode sampled drops 1
noise claimed conversation mu 200 b 40 dialing mu 160 b 32
end rounds 0 aborted 0
";
        let view = TranscriptView::parse(text).expect("parse");
        let claimed = view.claimed_noise.expect("claimed noise");
        assert_eq!(claimed.conversation_mu, 200.0);
        assert_eq!(claimed.dialing_b, 32.0);
        assert_eq!(claimed.mode, NoiseModeTag::Sampled);
        assert_eq!(view.noise.conversation_mu, 2.0);
    }

    #[test]
    fn missing_observables_rounds_parse_without_counts() {
        let text = "\
vuvuzela-sim transcript v1
scenario degraded
seed 1 servers 3 workers 2 shards 4 slots 1 retransmit_after 2
noise conversation mu 6 b 0.5 dialing mu 3 b 0.5 mode sampled drops 1
round 4 conversation participants 10 missing-observables eps 1e-1 delta 1e-3
round 5 dialing participants 10 missing-observables eps 2e-2 delta 1e-4
";
        let view = TranscriptView::parse(text).expect("parse");
        assert_eq!(view.rounds.len(), 2);
        assert!(view
            .conversation_rounds()
            .next()
            .expect("r")
            .counts
            .is_none());
        assert!(view.dialing_rounds().next().expect("r").counts.is_none());
    }

    #[test]
    fn ledger_abort_line_updates_the_budget() {
        let text = "\
vuvuzela-sim transcript v1
scenario aborted
seed 1 servers 3 workers 2 shards 4 slots 1 retransmit_after 2
noise conversation mu 6 b 0.5 dialing mu 3 b 0.5 mode deterministic drops 1
schedule aborted rounds [0:conversation]
ledger conversation eps 1.5e0 delta 2e-3 dialing eps 0e0 delta 1e-5
";
        let view = TranscriptView::parse(text).expect("parse");
        let budget = view.composed_budget();
        assert!((budget.epsilon - 1.5).abs() < 1e-12);
        assert!((budget.delta - 2.01e-3).abs() < 1e-12);
    }

    #[test]
    fn unknown_records_are_rejected() {
        let text = "vuvuzela-sim transcript v1\ngremlin in the mix\n";
        let err = TranscriptView::parse(text).expect_err("must reject");
        assert!(err.contains("gremlin"), "{err}");
    }

    #[test]
    fn wrong_header_is_rejected() {
        assert!(TranscriptView::parse("vuvuzela-sim transcript v2\n").is_err());
        assert!(TranscriptView::parse("").is_err());
    }
}
