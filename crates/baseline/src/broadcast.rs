//! A Dissent/Riposte-style broadcast messenger (the unscalable baseline).
//!
//! Systems with provably strong metadata privacy before Vuvuzela "either
//! rely on broadcasting all messages to all users, or use computationally
//! expensive cryptographic constructions" (§1). This module implements
//! the broadcast strawman: every round, every client submits one
//! fixed-size sealed message; the server concatenates them all and sends
//! the full bundle to *every* client, who trial-decrypts everything.
//!
//! Recipient metadata is perfectly hidden (everyone receives everything),
//! but the per-round traffic is `n² · message_size` — the quadratic wall
//! that caps such systems at a few thousand users. The `tab_throughput`
//! benchmark plots this against Vuvuzela's linear cost.

use rand::{CryptoRng, RngCore};
use vuvuzela_crypto::sealedbox;
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_net::Meter;

/// Sealed broadcast slot size: a 240-byte payload in a sealed box.
pub const SLOT_LEN: usize = sealedbox::sealed_len(240);

/// A broadcast-round server: collects one slot per client, returns the
/// concatenation to each of them.
#[derive(Default)]
pub struct BroadcastServer {
    /// Bytes uploaded + downloaded through the server.
    pub meter: Meter,
}

impl BroadcastServer {
    /// Creates a server with zeroed meters.
    #[must_use]
    pub fn new() -> BroadcastServer {
        BroadcastServer::default()
    }

    /// Runs one round: takes `slots` (one per client, each [`SLOT_LEN`]
    /// bytes) and returns the bundle every client downloads.
    ///
    /// The returned bundle is shared; the *accounting* multiplies it by
    /// the client count, because each client must download all of it.
    pub fn run_round(&self, slots: Vec<Vec<u8>>) -> Vec<u8> {
        let n = slots.len() as u64;
        let upload: u64 = slots.iter().map(|s| s.len() as u64).sum();
        self.meter.record_batch(n, upload);
        let bundle: Vec<u8> = slots.concat();
        // Every client downloads the whole bundle: n × n × SLOT_LEN.
        self.meter.record_batch(n * n, bundle.len() as u64 * n);
        bundle
    }

    /// Total bytes the server moved so far.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.meter.bytes()
    }
}

/// A broadcast-system client.
pub struct BroadcastClient {
    keypair: Keypair,
}

impl BroadcastClient {
    /// Creates a client with a fresh keypair.
    pub fn new<R: RngCore + CryptoRng>(rng: &mut R) -> BroadcastClient {
        BroadcastClient {
            keypair: Keypair::generate(rng),
        }
    }

    /// The client's public identity.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Builds this round's slot: a real message sealed to `recipient`, or
    /// an indistinguishable dummy when idle.
    pub fn build_slot<R: RngCore + CryptoRng>(
        &self,
        rng: &mut R,
        message: Option<(&PublicKey, &[u8; 240])>,
    ) -> Vec<u8> {
        match message {
            Some((recipient, payload)) => sealedbox::seal(rng, recipient, payload.as_slice()),
            None => {
                let mut dummy = vec![0u8; SLOT_LEN];
                rng.fill_bytes(&mut dummy);
                dummy
            }
        }
    }

    /// Scans a downloaded bundle for messages addressed to this client.
    #[must_use]
    pub fn scan_bundle(&self, bundle: &[u8]) -> Vec<Vec<u8>> {
        bundle
            .chunks(SLOT_LEN)
            .filter_map(|slot| {
                sealedbox::open(&self.keypair.secret, &self.keypair.public, slot).ok()
            })
            .collect()
    }
}

/// Total bytes a broadcast deployment moves per round for `n` clients —
/// the analytic form of the quadratic cost, used by benches without
/// running the crypto.
#[must_use]
pub fn bytes_per_round(n: u64) -> u64 {
    n * SLOT_LEN as u64 // uploads
        + n * n * SLOT_LEN as u64 // every client downloads everything
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn broadcast_delivers_while_hiding_recipient() {
        let mut rng = StdRng::seed_from_u64(1);
        let server = BroadcastServer::new();
        let alice = BroadcastClient::new(&mut rng);
        let bob = BroadcastClient::new(&mut rng);
        let carol = BroadcastClient::new(&mut rng);

        let mut message = [0u8; 240];
        message[..5].copy_from_slice(b"hello");
        let slots = vec![
            alice.build_slot(&mut rng, Some((&bob.public_key(), &message))),
            bob.build_slot(&mut rng, None),
            carol.build_slot(&mut rng, None),
        ];
        // All slots are the same size — senders are indistinguishable.
        assert!(slots.iter().all(|s| s.len() == SLOT_LEN));

        let bundle = server.run_round(slots);
        // Everyone downloads the same bundle; only Bob can read the
        // message.
        assert_eq!(bob.scan_bundle(&bundle).len(), 1);
        assert_eq!(&bob.scan_bundle(&bundle)[0][..5], b"hello");
        assert!(alice.scan_bundle(&bundle).is_empty());
        assert!(carol.scan_bundle(&bundle).is_empty());
    }

    #[test]
    fn cost_grows_quadratically() {
        // Doubling users should ~4x the bytes once downloads dominate.
        let small = bytes_per_round(1_000);
        let big = bytes_per_round(2_000);
        let ratio = big as f64 / small as f64;
        assert!((3.9..=4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn metered_round_matches_analytic_cost() {
        let mut rng = StdRng::seed_from_u64(2);
        let server = BroadcastServer::new();
        let clients: Vec<BroadcastClient> =
            (0..5).map(|_| BroadcastClient::new(&mut rng)).collect();
        let slots: Vec<Vec<u8>> = clients
            .iter()
            .map(|c| c.build_slot(&mut rng, None))
            .collect();
        let _ = server.run_round(slots);
        assert_eq!(server.total_bytes(), bytes_per_round(5));
    }
}
