//! Comparison systems for Vuvuzela's evaluation.
//!
//! The paper positions Vuvuzela against two families (§1, §10):
//!
//! * **scalable but analyzable** — mixnets/onion routing without
//!   principled cover traffic. [`no_noise`] configures Vuvuzela's own
//!   pipeline with noise off: same crypto, same mixing, no differential
//!   privacy. The attack suite demolishes it.
//! * **private but unscalable** — Dissent/Riposte-style systems built on
//!   broadcast, with per-round cost superlinear in users. [`broadcast`]
//!   implements that strawman; the scaling benches show its O(n²) total
//!   bytes against Vuvuzela's O(n).
//!
//! [`single_server`] additionally implements the §2.1 strawman (one
//! trusted server, no mixing, no noise) whose observable dead-drop access
//! patterns motivate the whole design (Figure 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod no_noise;
pub mod single_server;
