//! Vuvuzela minus cover traffic: the "plain mixnet" baseline.
//!
//! Identical wire formats, onion encryption, and mixing — but
//! [`vuvuzela_dp::NoiseMode::Off`]. This is the fair version of "Tor-like
//! systems provide little protection against powerful adversaries" (§1):
//! the mixnet hides *which* users accessed *which* drop, but the bare
//! `(m1, m2)` histogram leaks conversation counts, and the attacks in
//! `vuvuzela-adversary` exploit exactly that.

use vuvuzela_core::SystemConfig;
use vuvuzela_dp::NoiseMode;

/// A configuration identical to `base` but with all cover traffic
/// disabled.
#[must_use]
pub fn config_from(base: &SystemConfig) -> SystemConfig {
    SystemConfig {
        noise_mode: NoiseMode::Off,
        ..base.clone()
    }
}

/// The default no-noise baseline configuration (3 servers).
#[must_use]
pub fn default_config() -> SystemConfig {
    config_from(&SystemConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_core::testkit::TestNet;

    #[test]
    fn no_noise_preserves_functionality() {
        // Messages still flow; only the cover traffic is gone.
        let mut net = TestNet::builder().config(default_config()).seed(3).build();
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();
        net.queue_message(alice, bob, b"hi");
        net.run_conversation_round();
        assert_eq!(net.received(bob), vec![b"hi".to_vec()]);
    }

    #[test]
    fn no_noise_leaks_exact_conversation_count() {
        let mut net = TestNet::builder().config(default_config()).seed(4).build();
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        let _carol = net.add_user("carol");
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();
        net.run_conversation_round();

        let (_, obs) = net.chain().conversation_observables()[0];
        // The adversary reads the truth straight off the histogram:
        // exactly one conversation (m2 = 1), one lone user (m1 = 1).
        assert_eq!(obs.m2, 1);
        assert_eq!(obs.m1, 1);
    }
}
