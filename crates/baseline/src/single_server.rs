//! The §2.1 strawman: a single, fully trusted server (Figure 4).
//!
//! Clients deposit sealed messages into dead drops on one server with no
//! mixing and no noise. Even with a *trusted* server and encrypted
//! messages, the paper shows the access pattern alone betrays users: the
//! server (or anyone who compromises it) sees **which client accessed
//! which drop** — this module exposes exactly that observable so tests
//! can demonstrate the leak that Vuvuzela closes.

use rand::{CryptoRng, RngCore};
use std::collections::HashMap;
use vuvuzela_wire::conversation::{ExchangeRequest, ExchangeResponse};
use vuvuzela_wire::deaddrop::DeadDropId;

/// What the single server observes in one round — fatally, the mapping
/// from client to dead drop.
#[derive(Clone, Debug, Default)]
pub struct StrawmanObservables {
    /// `links[i] = (client index a, client index b)` for every pair of
    /// clients that exchanged messages this round. This is the "Adversary
    /// can see Alice and Bob talking" of Figure 4.
    pub linked_pairs: Vec<(usize, usize)>,
}

/// One round of the strawman protocol.
///
/// Returns per-client responses and the observables — no noise to hide
/// them, no mixing to unlink them.
pub fn run_round<R: RngCore + CryptoRng>(
    rng: &mut R,
    requests: &[ExchangeRequest],
) -> (Vec<ExchangeResponse>, StrawmanObservables) {
    let mut by_drop: HashMap<DeadDropId, Vec<usize>> = HashMap::new();
    for (i, request) in requests.iter().enumerate() {
        by_drop.entry(request.drop).or_default().push(i);
    }

    let mut responses: Vec<ExchangeResponse> = (0..requests.len())
        .map(|_| ExchangeResponse::empty(rng))
        .collect();
    let mut observables = StrawmanObservables::default();

    for accessors in by_drop.values() {
        if accessors.len() == 2 {
            let (a, b) = (accessors[0], accessors[1]);
            observables.linked_pairs.push((a.min(b), a.max(b)));
            responses[a] = ExchangeResponse {
                sealed_message: requests[b].sealed_message.clone(),
            };
            responses[b] = ExchangeResponse {
                sealed_message: requests[a].sealed_message.clone(),
            };
        }
    }
    observables.linked_pairs.sort_unstable();
    (responses, observables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_wire::SEALED_MESSAGE_LEN;

    fn request(drop_byte: u8) -> ExchangeRequest {
        ExchangeRequest {
            drop: DeadDropId([drop_byte; 16]),
            sealed_message: vec![drop_byte; SEALED_MESSAGE_LEN],
        }
    }

    #[test]
    fn server_links_conversing_clients() {
        let mut rng = StdRng::seed_from_u64(1);
        // Clients 0 and 2 talk; 1 and 3 are idle on random drops.
        let requests = vec![request(7), request(1), request(7), request(2)];
        let (responses, obs) = run_round(&mut rng, &requests);
        // Messages flow correctly...
        assert_eq!(responses[0].sealed_message, requests[2].sealed_message);
        // ...but the server learns exactly who talked to whom.
        assert_eq!(obs.linked_pairs, vec![(0, 2)]);
    }

    #[test]
    fn idle_clients_are_visible_too() {
        let mut rng = StdRng::seed_from_u64(2);
        let requests = vec![request(1), request(2)];
        let (_, obs) = run_round(&mut rng, &requests);
        assert!(obs.linked_pairs.is_empty(), "no conversations to link");
    }
}
