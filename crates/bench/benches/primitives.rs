//! Criterion micro-benchmarks for the cryptographic primitives.
//!
//! These are the quantities the paper's performance analysis is built on:
//! "The most computationally expensive part of Vuvuzela's implementation
//! is the repeated use of Diffie-Hellman in the wrapping and unwrapping
//! of encryption layers" (§7). The `x25519` result here is the direct
//! analogue of the paper's "340,000 Curve25519 operations per second"
//! per 36-core machine (§8.2) — divide by 36 for a per-core comparison.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_crypto::{aead, chacha20, onion, sealedbox, sha256};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

fn bench_x25519(c: &mut Criterion) {
    let mut group = c.benchmark_group("x25519");
    group.throughput(Throughput::Elements(1));
    let mut rng = StdRng::seed_from_u64(0);
    let mut scalar = [7u8; 32];
    rand::RngCore::fill_bytes(&mut rng, &mut scalar);
    let point = [9u8; 32];
    group.bench_function("scalar_mult", |b| {
        b.iter(|| vuvuzela_crypto::x25519::x25519(black_box(&scalar), black_box(&point)))
    });
    // The fixed-base comb table vs the ladder on the same job (ephemeral
    // keygen): the tentpole speedup behind noise generation and client
    // wrapping.
    group.bench_function("scalar_mult_base_table", |b| {
        b.iter(|| vuvuzela_crypto::x25519::x25519_base(black_box(&scalar)))
    });
    let alice = Keypair::generate(&mut rng);
    let bob = Keypair::generate(&mut rng);
    group.bench_function("diffie_hellman", |b| {
        b.iter(|| alice.secret.diffie_hellman(black_box(&bob.public)))
    });
    let table =
        vuvuzela_crypto::x25519::DhTable::new(&bob.public).expect("honest key is on the curve");
    group.bench_function("diffie_hellman_table", |b| {
        b.iter(|| table.diffie_hellman(black_box(&alice.secret)))
    });
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = [1u8; 32];
    let nonce = [2u8; 12];
    let msg = [0u8; 240];
    group.throughput(Throughput::Bytes(240));
    group.bench_function("seal_240B", |b| {
        b.iter(|| aead::seal(black_box(&key), &nonce, &[], black_box(&msg)))
    });
    let sealed = aead::seal(&key, &nonce, &[], &msg);
    group.bench_function("open_240B", |b| {
        b.iter(|| aead::open(black_box(&key), &nonce, &[], black_box(&sealed)).expect("valid"))
    });
    group.finish();
}

fn bench_chacha_sha(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk");
    let key = [1u8; 32];
    let nonce = [2u8; 12];
    let mut buf = vec![0u8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("chacha20_4KB", |b| {
        b.iter(|| chacha20::xor_stream(&key, 0, &nonce, black_box(&mut buf)))
    });
    group.bench_function("sha256_4KB", |b| b.iter(|| sha256::sha256(black_box(&buf))));
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("onion");
    let mut rng = StdRng::seed_from_u64(1);
    let servers: Vec<Keypair> = (0..3).map(|_| Keypair::generate(&mut rng)).collect();
    let pks: Vec<_> = servers.iter().map(|kp| kp.public).collect();
    let payload = vec![0u8; 272];

    group.bench_function("wrap_3_layers", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(2),
            |mut r| onion::wrap(&mut r, &pks, 0, black_box(&payload)),
            BatchSize::SmallInput,
        )
    });

    let (wrapped, _) = onion::wrap(&mut rng, &pks, 0, &payload);
    group.bench_function("peel_1_layer", |b| {
        b.iter(|| {
            onion::peel(
                &servers[0].secret,
                &servers[0].public,
                0,
                black_box(&wrapped),
            )
            .expect("valid layer")
        })
    });
    group.finish();
}

fn bench_sealedbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("sealedbox");
    let mut rng = StdRng::seed_from_u64(3);
    let recipient = Keypair::generate(&mut rng);
    let invitation = [0u8; 32];
    group.bench_function("seal_invitation", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(4),
            |mut r| sealedbox::seal(&mut r, &recipient.public, black_box(&invitation)),
            BatchSize::SmallInput,
        )
    });
    let boxed = sealedbox::seal(&mut rng, &recipient.public, &invitation);
    group.bench_function("trial_decrypt_hit", |b| {
        b.iter(|| sealedbox::open(&recipient.secret, &recipient.public, black_box(&boxed)))
    });
    let other = Keypair::generate(&mut rng);
    group.bench_function("trial_decrypt_miss", |b| {
        b.iter(|| sealedbox::open(&other.secret, &other.public, black_box(&boxed)))
    });
    group.finish();
}

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise");
    let dist = NoiseDistribution::new(300_000.0, 13_800.0);
    group.bench_function("laplace_sample_x100", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(5),
            |mut r| {
                for _ in 0..100 {
                    black_box(dist.sample_count(&mut r, NoiseMode::Sampled));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_x25519, bench_aead, bench_chacha_sha, bench_onion, bench_sealedbox, bench_laplace
}
criterion_main!(benches);
