//! Criterion benchmarks for whole protocol rounds and server stages.
//!
//! `conversation_round/*` is the direct (scaled) analogue of the paper's
//! Figure 9 measurements; `deaddrop_match` isolates the non-crypto
//! matching stage to confirm DH dominates, as §8.2 claims.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_core::deaddrops::ConversationDrops;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_wire::conversation::ExchangeRequest;

fn config(mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(mu, (mu / 20.0).max(1.0)),
        dialing_noise: NoiseDistribution::new(1.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: vuvuzela_net::parallel::default_workers(),
        conversation_slots: 1,
        retransmit_after: 2,
    }
}

fn bench_conversation_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversation_round");
    group.sample_size(10);
    for (users, mu) in [(100u64, 50.0), (500, 200.0)] {
        group.throughput(Throughput::Elements(users));
        group.bench_function(format!("users{users}_mu{mu}"), |b| {
            b.iter_batched(
                || {
                    let chain = Chain::new(config(mu), 1);
                    let pks = chain.server_public_keys();
                    let batch = conversation_batch(users, 0, &pks, 2, users);
                    (chain, batch)
                },
                |(mut chain, batch)| chain.run_conversation_round(0, black_box(batch)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_deaddrop_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("deaddrop_match");
    for count in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(count));
        group.bench_function(format!("requests{count}"), |b| {
            b.iter_batched(
                || {
                    let mut rng = StdRng::seed_from_u64(7);
                    let requests: Vec<ExchangeRequest> = (0..count)
                        .map(|_| ExchangeRequest::noise(&mut rng))
                        .collect();
                    (StdRng::seed_from_u64(8), requests)
                },
                |(mut rng, requests)| ConversationDrops::exchange(&mut rng, black_box(&requests)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conversation_round, bench_deaddrop_match
}
criterion_main!(benches);
