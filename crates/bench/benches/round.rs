//! Criterion benchmarks for whole protocol rounds and server stages.
//!
//! `conversation_round/*` is the direct (scaled) analogue of the paper's
//! Figure 9 measurements; `deaddrop_match` isolates the non-crypto
//! matching stage to confirm DH dominates, as §8.2 claims.
//!
//! `forward_pass/*` holds the zero-copy round pipeline against the
//! pre-refactor per-`Vec` reference at 10,000 onions, chain length 3
//! (acceptance target: ≥ 2× throughput on the noising hop; see
//! `bench_round_pipeline` for the committed JSON artefact and the full
//! methodology).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_core::deaddrops::ConversationDrops;
use vuvuzela_core::roundbuf::RoundBuffer;
use vuvuzela_core::server::{MixServer, RoundKind};
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_wire::conversation::ExchangeRequest;

fn config(mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(mu, (mu / 20.0).max(1.0)),
        dialing_noise: NoiseDistribution::new(1.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: vuvuzela_net::parallel::default_workers(),
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

fn bench_conversation_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversation_round");
    group.sample_size(10);
    for (users, mu) in [(100u64, 50.0), (500, 200.0)] {
        group.throughput(Throughput::Elements(users));
        group.bench_function(format!("users{users}_mu{mu}"), |b| {
            b.iter_batched(
                || {
                    let chain = Chain::new(config(mu), 1);
                    let pks = chain.server_public_keys();
                    let batch = conversation_batch(users, 0, &pks, 2, users);
                    (chain, batch)
                },
                |(mut chain, batch)| chain.run_conversation_round(0, black_box(batch)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

/// Flat `RoundBuffer` pipeline vs the per-`Vec` reference on the first
/// (noising) server's forward pass: 10k onions, chain 3, µ = 5000
/// (the paper's fixed-µ noise regime scaled 1:60).
fn bench_forward_pass(c: &mut Criterion) {
    const ONIONS: u64 = 10_000;
    const MU: f64 = 5_000.0;
    let seed = 42;

    let build_server = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let keypairs: Vec<Keypair> = (0..3).map(|_| Keypair::generate(&mut rng)).collect();
        let publics: Vec<_> = keypairs.iter().map(|kp| kp.public).collect();
        let mut iter = keypairs.into_iter();
        let first = iter.next().expect("chain has a first server");
        (
            MixServer::new(0, 3, first, publics[1..].to_vec(), config(MU), seed + 1),
            publics,
        )
    };
    let (_, pks) = build_server();
    let batch = conversation_batch(
        ONIONS,
        0,
        &pks,
        vuvuzela_net::parallel::default_workers(),
        7,
    );
    let width = batch[0].len();

    let mut group = c.benchmark_group("forward_pass");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ONIONS));
    group.bench_function("flat_10k", |b| {
        b.iter_batched(
            || {
                let (server, _) = build_server();
                let (buf, _) = RoundBuffer::from_vecs(&batch, width, width);
                (server, buf)
            },
            |(mut server, buf)| server.forward_buf(0, RoundKind::Conversation, black_box(buf)),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("per_vec_reference_10k", |b| {
        b.iter_batched(
            || (build_server().0, batch.clone()),
            |(mut server, batch)| {
                server.forward_reference(0, RoundKind::Conversation, black_box(batch))
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_deaddrop_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("deaddrop_match");
    for count in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(count));
        group.bench_function(format!("requests{count}"), |b| {
            b.iter_batched(
                || {
                    let mut rng = StdRng::seed_from_u64(7);
                    let requests: Vec<ExchangeRequest> = (0..count)
                        .map(|_| ExchangeRequest::noise(&mut rng))
                        .collect();
                    (StdRng::seed_from_u64(8), requests)
                },
                |(mut rng, requests)| ConversationDrops::exchange(&mut rng, black_box(&requests)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conversation_round, bench_forward_pass, bench_deaddrop_match
}
criterion_main!(benches);
