//! Ablation: where in the chain should noise be generated?
//!
//! The paper has every server except the last add conversation cover
//! traffic (Algorithm 2 / §8.2), even though the *guarantee* only relies
//! on the one honest server's noise (§6.1). This ablation quantifies the
//! trade-off: each extra noising server buys defence-in-depth (the
//! adversary must compromise it to discount its noise) at a measurable
//! latency cost, because noise wrapped at position i must be peeled by
//! every later server.
//!
//! Method: fix the chain at 3 servers and move/duplicate the noise by
//! varying per-server µ so that either (a) only server 0 noises at 2µ̄,
//! or (b) both mixing servers noise at µ̄ (the paper's layout) — equal
//! *total* noise mass, different placement.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin abl_noise_placement`

use std::time::Instant;
use vuvuzela_bench::report::{secs, write_json, Table};
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::accounting::conversation_round;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

fn main() {
    let users = 2_000u64;
    let mu_bar = 1_000.0;

    // Scenario A: the paper's layout — both mixing servers add µ̄.
    // Scenario B: all noise concentrated at server 0 (2µ̄ there, none at
    // server 1). Same expected number of noise requests reaching the
    // last server; different wrapping/peeling work distribution.
    //
    // Our `SystemConfig` gives every non-last server the same µ, so
    // scenario B is emulated with a 2-server chain at 2µ̄ plus an extra
    // no-noise relay measured separately; instead we compare total work
    // via measured rounds at per-server µ and at 2µ on fewer servers,
    // and report the analytic per-hop DH counts alongside.
    let mut table = Table::new(&[
        "layout",
        "noising servers",
        "per-server mu",
        "measured round",
        "honest-server eps/round",
    ]);
    let mut results = Vec::new();

    for (label, chain_len, mu) in [
        ("paper: every mixing server", 3usize, mu_bar),
        ("concentrated: one server, 2µ", 2usize, 2.0 * mu_bar),
    ] {
        let config = SystemConfig {
            chain_len,
            conversation_noise: NoiseDistribution::new(mu, (mu / 20.0).max(1.0)),
            dialing_noise: NoiseDistribution::new(1.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        };
        let mut chain = Chain::new(config, 1);
        let pks = chain.server_public_keys();
        let batch = conversation_batch(users, 0, &pks, 2, 5);
        let start = Instant::now();
        let _ = chain.run_conversation_round(0, batch);
        let measured = start.elapsed().as_secs_f64();

        // Privacy per round from ONE honest server's noise: in layout A
        // the honest server contributes µ̄; in layout B, only server 0's
        // noise counts — if server 0 is the compromised one, B has *no*
        // honest noise. Report the honest-server epsilon for the
        // best case (honest server is a noising one).
        let round = conversation_round(mu, (mu / 20.0).max(1.0));
        table.row(&[
            label.into(),
            (chain_len - 1).to_string(),
            format!("{mu:.0}"),
            secs(measured),
            format!("{:.4}", round.epsilon),
        ]);
        results.push(serde_json::json!({
            "layout": label, "chain_len": chain_len, "mu": mu,
            "measured_secs": measured, "eps_per_round": round.epsilon,
        }));
    }

    table.print("Ablation: noise placement (equal total noise mass)");
    println!(
        "\nwhy the paper spreads noise: with noise at every mixing server, ANY\n\
         single honest server suffices for the guarantee. Concentrating noise\n\
         at one server makes that server a single point of privacy failure —\n\
         if the adversary controls it, the remaining observables are bare.\n\
         The cost of spreading is the extra peeling of noise wrapped upstream\n\
         (Figure 11's quadratic chain scaling)."
    );

    write_json(
        "abl_noise_placement",
        &serde_json::json!({ "users": users, "results": results }),
    );
}
