//! Attack demonstration (paper §2.1, §4.2, Figure 2).
//!
//! Evaluates the three traffic-analysis attacks against (a) the no-noise
//! mixnet baseline and (b) Vuvuzela's noise, reporting empirical attacker
//! accuracy against the DP-theoretic ceiling, plus the §6.4 posterior
//! table (prior → posterior under ε).
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin attack_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_adversary::attacks::{
    DisruptionAttack, IntersectionAttack, StatisticalDisclosureAttack,
};
use vuvuzela_adversary::bounds::max_accuracy;
use vuvuzela_adversary::model::ObservableModel;
use vuvuzela_bench::report::{write_json, Table};
use vuvuzela_dp::accounting::conversation_round;
use vuvuzela_dp::planner::posterior_bound;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    let trials = 4_000;

    let no_noise = ObservableModel {
        noising_servers: 2,
        noise: NoiseDistribution::new(1.0, 1.0),
        mode: NoiseMode::Off,
    };
    let vuvuzela = ObservableModel {
        noising_servers: 2,
        noise: NoiseDistribution::new(1_000.0, 50.0),
        mode: NoiseMode::Sampled,
    };
    let round = conversation_round(1_000.0, 50.0);
    let bound = max_accuracy(round.epsilon, round.delta);

    let mut table = Table::new(&[
        "attack",
        "no-noise accuracy",
        "Vuvuzela accuracy",
        "DP ceiling (1 round)",
    ]);

    let intersection = IntersectionAttack { window: 5 };
    let i_plain = intersection.evaluate(&mut rng, &no_noise, 5, trials);
    let i_noised = intersection.evaluate(&mut rng, &vuvuzela, 5, trials);
    table.row(&[
        "intersection (offline diff)".into(),
        format!("{i_plain:.3}"),
        format!("{i_noised:.3}"),
        format!("{bound:.3}"),
    ]);

    let d_plain = DisruptionAttack::evaluate(&mut rng, &no_noise, trials);
    let d_noised = DisruptionAttack::evaluate(&mut rng, &vuvuzela, trials);
    table.row(&[
        "disruption (keep Alice+Bob)".into(),
        format!("{d_plain:.3}"),
        format!("{d_noised:.3}"),
        format!("{bound:.3}"),
    ]);

    let s_plain = StatisticalDisclosureAttack::evaluate(&mut rng, &no_noise, 40, trials / 10);
    let s_noised = StatisticalDisclosureAttack::evaluate(&mut rng, &vuvuzela, 40, trials / 10);
    table.row(&[
        "statistical disclosure (40 rounds)".into(),
        format!("{s_plain:.3}"),
        format!("{s_noised:.3}"),
        "n/a (multi-round)".into(),
    ]);

    table.print("Attack accuracy: no-noise mixnet vs Vuvuzela (µ=1000, b=50 per server)");
    println!(
        "\n1.0 = adversary always right, 0.5 = coin flip. Vuvuzela's noise\n\
         reduces every attack to ≈0.5, within the DP ceiling."
    );

    // §6.4 posterior-belief table.
    let ln2 = core::f64::consts::LN_2;
    let ln3 = 3.0f64.ln();
    let mut posterior = Table::new(&["prior", "ε", "posterior (paper)", "posterior (ours)"]);
    for (prior, eps, paper) in [(0.50, ln2, "67%"), (0.50, ln3, "75%"), (0.01, ln3, "3%")] {
        posterior.row(&[
            format!("{:.0}%", prior * 100.0),
            format!("{eps:.3}"),
            paper.into(),
            format!("{:.1}%", posterior_bound(prior, eps) * 100.0),
        ]);
    }
    posterior.print("§6.4 posterior beliefs after observing Vuvuzela");

    write_json(
        "attack_demo",
        &serde_json::json!({
            "trials": trials,
            "dp_ceiling_one_round": bound,
            "intersection": { "no_noise": i_plain, "vuvuzela": i_noised },
            "disruption": { "no_noise": d_plain, "vuvuzela": d_noised },
            "disclosure": { "no_noise": s_plain, "vuvuzela": s_noised },
        }),
    );
}
