//! Bench-regression gate: compares a freshly generated bench JSON
//! against its committed baseline and exits non-zero on a throughput
//! regression.
//!
//! Only **scale-free ratio metrics** are compared — every numeric leaf
//! whose key contains `speedup` but not `measured`
//! (`sustained_speedup_model`, `speedup_first_hop`, …). Absolute rates
//! (onions/sec, rounds/sec) depend on the machine a baseline was
//! generated on and are meaningless to diff across hardware, and even
//! `measured_speedup` is core-count-bound (it cannot exceed 1.0 when
//! cores < chain_len, so a 1-core baseline vs a multi-core runner — or
//! vice versa — would gate on hardware, not code; the smoke bins
//! already hold measured throughput to a same-machine floor
//! themselves). The model-derived speedups are computed from per-stage
//! time *ratios* of a single run, so they transfer: if the pipeline
//! model used to predict 2.5× over sequential on every box and now
//! predicts 1.2×, something regressed no matter what hardware CI
//! landed on.
//!
//! A metric regresses when `fresh < (1 − tolerance) × baseline`.
//! Metrics present in only one file are reported but don't fail the
//! gate (artefact schemas may grow); finding *no* comparable metric at
//! all fails it (a silently empty gate is worse than none).
//!
//! Usage:
//! `bench_diff <baseline.json> <fresh.json> [tolerance]`
//! Tolerance defaults to 0.15 (the ">15% regression fails" CI
//! contract); override positionally or via `VUVUZELA_BENCH_TOLERANCE`.

use serde_json::Value;
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.15;

/// Collects `(path, value)` for every numeric leaf under `value` whose
/// final key contains "speedup" — except wall-clock `measured_*`
/// ratios, which don't transfer across machines (see the module docs).
fn collect_speedups(path: &str, value: &Value, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                let child_path = format!("{path}/{key}");
                if let Some(number) = child.as_f64() {
                    if key.contains("speedup") && !key.contains("measured") {
                        out.push((child_path, number));
                    }
                } else {
                    collect_speedups(&child_path, child, out);
                }
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                collect_speedups(&format!("{path}/{i}"), child, out);
            }
        }
        _ => {}
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let mut metrics = Vec::new();
    collect_speedups("", &value, &mut metrics);
    Ok(metrics)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(fresh_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_diff <baseline.json> <fresh.json> [tolerance]");
        return ExitCode::FAILURE;
    };
    let tolerance = args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("VUVUZELA_BENCH_TOLERANCE").ok())
        .map_or(DEFAULT_TOLERANCE, |t| {
            t.parse().expect("tolerance must be a number")
        });
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1)"
    );

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_diff: {baseline_path} (baseline) vs {fresh_path} (fresh), tolerance {tolerance:.2}"
    );
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (path, base) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(p, _)| p == path) else {
            println!("  [skip] {path}: only in baseline");
            continue;
        };
        compared += 1;
        let floor = base * (1.0 - tolerance);
        if *new < floor {
            regressions += 1;
            println!("  [FAIL] {path}: {new:.3} < {floor:.3} (baseline {base:.3})");
        } else {
            println!("  [ ok ] {path}: {new:.3} (baseline {base:.3}, floor {floor:.3})");
        }
    }
    for (path, _) in &fresh {
        if !baseline.iter().any(|(p, _)| p == path) {
            println!("  [new ] {path}: only in fresh");
        }
    }

    if compared == 0 {
        eprintln!(
            "bench_diff: no comparable speedup metrics found — refusing to pass an empty gate"
        );
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions}/{compared} metric(s) regressed more than {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_diff: {compared} metric(s) within tolerance");
    ExitCode::SUCCESS
}
