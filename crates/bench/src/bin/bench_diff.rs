//! Bench-regression gate: compares a freshly generated bench JSON
//! against its committed baseline and exits non-zero on a throughput
//! regression.
//!
//! Only **scale-free ratio metrics** are compared — every numeric leaf
//! whose key contains `speedup` but not `measured`
//! (`sustained_speedup_model`, `speedup_first_hop`, …). Absolute rates
//! (onions/sec, rounds/sec) depend on the machine a baseline was
//! generated on and are meaningless to diff across hardware, and even
//! `measured_speedup` is core-count-bound (it cannot exceed 1.0 when
//! cores < chain_len, so a 1-core baseline vs a multi-core runner — or
//! vice versa — would gate on hardware, not code; the smoke bins
//! already hold measured throughput to a same-machine floor
//! themselves).
//!
//! The remaining ratio metrics are not all equally machine-transferable,
//! so the gate applies **per-metric-class tolerances**:
//!
//! * **model** metrics (key contains `sustained` or `model`) are
//!   computed from per-stage time *ratios* of a single run — if the
//!   pipeline model used to predict 2.5× over sequential on every box
//!   and now predicts 1.2×, something regressed no matter what hardware
//!   CI landed on. These get the tight tolerance (default 15%).
//! * **wall-clock** ratio metrics (`speedup_first_hop`,
//!   `speedup_peel_batched`, …) compare two same-run wall-clock
//!   measurements. The ratio transfers across machines far better than
//!   the absolute rates do, but a shared CI runner adds load noise to
//!   each side independently — on the 1-core runners some of these sit
//!   near 1.0×, where a 15% band is routinely crossed by noise alone.
//!   These get a looser tolerance (default 35%) so scheduling jitter
//!   cannot fail the build while a real regression (a halved speedup)
//!   still does.
//!
//! A metric regresses when `fresh < (1 − tolerance) × baseline`.
//! Metrics present in only one file are reported but don't fail the
//! gate (artefact schemas may grow); finding *no* comparable metric at
//! all fails it (a silently empty gate is worse than none).
//!
//! Usage:
//! `bench_diff <baseline.json> <fresh.json> [model-tolerance] [wallclock-tolerance]`
//! Tolerances default to 0.15 / 0.35; override positionally or via
//! `VUVUZELA_BENCH_TOLERANCE` / `VUVUZELA_BENCH_TOLERANCE_WALLCLOCK`.

use serde_json::Value;
use std::process::ExitCode;

const DEFAULT_MODEL_TOLERANCE: f64 = 0.15;
const DEFAULT_WALLCLOCK_TOLERANCE: f64 = 0.35;

/// How machine-transferable a ratio metric is, deciding its tolerance.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Derived from intra-run stage-time ratios; transfers across
    /// hardware, gets the tight band.
    Model,
    /// A ratio of two same-run wall-clock measurements; load noise on
    /// shared runners hits each side independently, gets the loose
    /// band.
    Wallclock,
}

impl MetricClass {
    fn of(key: &str) -> MetricClass {
        if key.contains("sustained") || key.contains("model") {
            MetricClass::Model
        } else {
            MetricClass::Wallclock
        }
    }

    fn label(self) -> &'static str {
        match self {
            MetricClass::Model => "model",
            MetricClass::Wallclock => "wall-clock",
        }
    }
}

/// Collects `(path, class, value)` for every numeric leaf under `value`
/// whose final key contains "speedup" — except wall-clock `measured_*`
/// ratios, which don't transfer across machines (see the module docs).
fn collect_speedups(path: &str, value: &Value, out: &mut Vec<(String, MetricClass, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                let child_path = format!("{path}/{key}");
                if let Some(number) = child.as_f64() {
                    if key.contains("speedup") && !key.contains("measured") {
                        out.push((child_path, MetricClass::of(key), number));
                    }
                } else {
                    collect_speedups(&child_path, child, out);
                }
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                collect_speedups(&format!("{path}/{i}"), child, out);
            }
        }
        _ => {}
    }
}

fn load(path: &str) -> Result<Vec<(String, MetricClass, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let mut metrics = Vec::new();
    collect_speedups("", &value, &mut metrics);
    Ok(metrics)
}

fn parse_tolerance(positional: Option<&String>, env_key: &str, default: f64) -> f64 {
    let tolerance = positional
        .cloned()
        .or_else(|| std::env::var(env_key).ok())
        .map_or(default, |t| t.parse().expect("tolerance must be a number"));
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1)"
    );
    tolerance
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(fresh_path)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: bench_diff <baseline.json> <fresh.json> [model-tolerance] [wallclock-tolerance]"
        );
        return ExitCode::FAILURE;
    };
    let model_tolerance = parse_tolerance(
        args.get(2),
        "VUVUZELA_BENCH_TOLERANCE",
        DEFAULT_MODEL_TOLERANCE,
    );
    let wallclock_tolerance = parse_tolerance(
        args.get(3),
        "VUVUZELA_BENCH_TOLERANCE_WALLCLOCK",
        DEFAULT_WALLCLOCK_TOLERANCE,
    );

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_diff: {baseline_path} (baseline) vs {fresh_path} (fresh), \
         tolerance {model_tolerance:.2} (model) / {wallclock_tolerance:.2} (wall-clock)"
    );
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for (path, class, base) in &baseline {
        let Some((_, _, new)) = fresh.iter().find(|(p, _, _)| p == path) else {
            println!("  [skip] {path}: only in baseline");
            continue;
        };
        compared += 1;
        let tolerance = match class {
            MetricClass::Model => model_tolerance,
            MetricClass::Wallclock => wallclock_tolerance,
        };
        let floor = base * (1.0 - tolerance);
        if *new < floor {
            regressions += 1;
            println!(
                "  [FAIL] {path} ({}): {new:.3} < {floor:.3} (baseline {base:.3})",
                class.label()
            );
        } else {
            println!(
                "  [ ok ] {path} ({}): {new:.3} (baseline {base:.3}, floor {floor:.3})",
                class.label()
            );
        }
    }
    for (path, _, _) in &fresh {
        if !baseline.iter().any(|(p, _, _)| p == path) {
            println!("  [new ] {path}: only in fresh");
        }
    }

    if compared == 0 {
        eprintln!(
            "bench_diff: no comparable speedup metrics found — refusing to pass an empty gate"
        );
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions}/{compared} metric(s) regressed beyond tolerance");
        return ExitCode::FAILURE;
    }
    println!("bench_diff: {compared} metric(s) within tolerance");
    ExitCode::SUCCESS
}
