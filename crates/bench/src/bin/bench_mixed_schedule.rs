//! Mixed-schedule throughput artefact: the sequential `Chain` vs the
//! unified `StreamingChain` mixed-round scheduler on an interleaved
//! conversation + dialing workload.
//!
//! A deployment never runs conversation rounds in isolation: dialing
//! rounds (§5, µ = 13,000 noise per drop at the paper's parameters)
//! interleave with the conversation protocol on the same mix chain, and
//! the paper's throughput claims are about that combined load. This
//! artefact therefore drives both schedulers over the *same*
//! heterogeneous [`RoundSpec`] sequence — conversation rounds with a
//! dialing round every third slot — and reports:
//!
//! * **measured** — wall-clock rounds/sec per scheduler on this machine
//!   (the honest ground truth; on a box with fewer cores than stages
//!   the overlapped schedule cannot beat the sequential one);
//! * **sustained model** — the steady-state pipeline throughput implied
//!   by the measured per-hop stage times: a full pipeline completes one
//!   round per `max(stage busy)` instead of `sum(stage busy)`, summed
//!   over the heterogeneous schedule round by round;
//! * the **admission weights** the scheduler priced each round at
//!   (µ=13k dialing rounds occupy several window slots).
//!
//! Outputs are first held byte-identical between the two schedulers
//! (replies, observables, invitation drops) before anything is timed.
//!
//! Regenerate with
//! `cargo run --release -p vuvuzela-bench --bin bench_mixed_schedule`
//! (writes `BENCH_mixed_schedule.json` at the workspace root). Set
//! `VUVUZELA_BENCH_SMOKE=1` for the CI variant: tiny schedule,
//! `workers = 2`, writes `bench_results/SMOKE_mixed_schedule.json` for
//! the `bench_diff` regression gate and exits non-zero if streaming
//! throughput regresses below sequential on a multi-core machine.

use std::time::Instant;

use vuvuzela_bench::report::{stage_busy_secs, workspace_root, write_json};
use vuvuzela_bench::workload::{conversation_batch, dialing_batch};
use vuvuzela_core::pipeline::{admission_weights, StreamingChain};
use vuvuzela_core::{Chain, RoundOutcome, RoundSpec, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_wire::RoundType;

const CHAIN_LEN: usize = 3;
const WINDOW: usize = 3;

struct Sizes {
    conv_onions: u64,
    conv_mu: f64,
    dial_users: u64,
    dial_mu: f64,
    num_drops: u32,
    /// `true` = dialing round at this schedule position.
    pattern: Vec<bool>,
    workers: usize,
    iterations: usize,
    smoke: bool,
}

fn sizes() -> Sizes {
    if std::env::var("VUVUZELA_BENCH_SMOKE").is_ok() {
        Sizes {
            conv_onions: 80,
            conv_mu: 40.0,
            dial_users: 40,
            dial_mu: 200.0,
            num_drops: 1,
            // Dialing adjacent *and* separated, ≥3 rounds in flight.
            pattern: vec![false, true, true, false, false, true],
            workers: 2,
            iterations: 3,
            smoke: true,
        }
    } else {
        Sizes {
            conv_onions: 2_000,
            conv_mu: 1_000.0,
            dial_users: 400,
            dial_mu: 13_000.0, // the paper's µ per drop (§8.1)
            num_drops: 1,
            // A dialing round every third slot.
            pattern: vec![false, false, true, false, false, true, false, false],
            workers: 2,
            iterations: 2,
            smoke: false,
        }
    }
}

fn config(sizes: &Sizes) -> SystemConfig {
    SystemConfig {
        chain_len: CHAIN_LEN,
        conversation_noise: NoiseDistribution::new(sizes.conv_mu, sizes.conv_mu / 20.0 + 1.0),
        dialing_noise: NoiseDistribution::new(sizes.dial_mu, sizes.dial_mu / 20.0 + 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: sizes.workers,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

/// Asserts both schedulers produced identical observables and replies.
fn assert_equivalent(
    streaming: &mut StreamingChain,
    sequential: &mut Chain,
    streamed: &[RoundOutcome],
    expected: &[RoundOutcome],
    num_drops: u32,
) {
    for (round, (got, want)) in streamed.iter().zip(expected).enumerate() {
        assert_eq!(got.replies(), want.replies(), "round {round} diverged");
    }
    let mut got = streaming.chain().conversation_observables().to_vec();
    got.sort_by_key(|(r, _)| *r);
    assert_eq!(
        got.as_slice(),
        sequential.conversation_observables(),
        "conversation observables diverged"
    );
    let mut got = streaming.chain().dialing_observables().to_vec();
    got.sort_by_key(|(r, _)| *r);
    assert_eq!(
        got.as_slice(),
        sequential.dialing_observables(),
        "dialing observables diverged"
    );
    for drop in 1..=num_drops {
        let index = vuvuzela_wire::deaddrop::InvitationDropIndex(drop);
        assert_eq!(
            streaming.download_drop(index),
            sequential.download_drop(index),
            "invitation drop {drop} diverged"
        );
    }
}

fn main() {
    let sizes = sizes();
    let seed = 42;
    let cores = vuvuzela_net::parallel::default_workers();
    println!(
        "mixed-schedule bench: {} rounds, conv {} onions/µ {}, dial {} users/µ {} per drop, chain {CHAIN_LEN}, {} core(s)",
        sizes.pattern.len(), sizes.conv_onions, sizes.conv_mu, sizes.dial_users, sizes.dial_mu, cores
    );

    // One shared workload (batches are scheduler-independent).
    let cfg = config(&sizes);
    let pks = Chain::new(cfg.clone(), seed).server_public_keys();
    let specs: Vec<RoundSpec> = sizes
        .pattern
        .iter()
        .enumerate()
        .map(|(i, &dialing)| {
            let round = i as u64;
            if dialing {
                RoundSpec::Dialing {
                    round,
                    batch: dialing_batch(
                        sizes.dial_users,
                        sizes.dial_users / 20,
                        sizes.num_drops,
                        round,
                        &pks,
                        cores,
                        99 + round,
                    )
                    .into(),
                    num_drops: sizes.num_drops,
                }
            } else {
                RoundSpec::Conversation {
                    round,
                    batch: conversation_batch(sizes.conv_onions, round, &pks, cores, 7 + round)
                        .into(),
                }
            }
        })
        .collect();
    // Render the schedule from each round's wire-level protocol tag.
    let schedule_str: String = specs
        .iter()
        .map(|spec| match spec.round_type() {
            RoundType::Conversation => 'C',
            RoundType::Dialing => 'D',
        })
        .collect();
    let weights = admission_weights(&cfg, WINDOW, &specs);
    println!("schedule {schedule_str}, admission weights (window {WINDOW}): {weights:?}");

    // Best-of-N wall clock per scheduler; outputs must agree on every
    // iteration.
    let rounds = specs.len();
    let mut seq_best: Option<(f64, Vec<RoundOutcome>)> = None;
    let mut stream_best: Option<f64> = None;
    for _ in 0..sizes.iterations {
        let mut sequential = Chain::new(cfg.clone(), seed);
        let start = Instant::now();
        let expected: Vec<RoundOutcome> = specs
            .iter()
            .cloned()
            .map(|spec| sequential.run_round(spec))
            .collect();
        let seq_wall = start.elapsed().as_secs_f64();

        let mut streaming = StreamingChain::new(cfg.clone(), seed).with_max_in_flight(WINDOW);
        let start = Instant::now();
        let streamed = streaming.run_mixed_schedule(specs.clone());
        let stream_wall = start.elapsed().as_secs_f64();

        assert_equivalent(
            &mut streaming,
            &mut sequential,
            &streamed,
            &expected,
            sizes.num_drops,
        );

        if seq_best.as_ref().is_none_or(|(best, _)| seq_wall < *best) {
            seq_best = Some((seq_wall, expected));
        }
        if stream_best.is_none_or(|best| stream_wall < best) {
            stream_best = Some(stream_wall);
        }
    }
    let (seq_wall, expected) = seq_best.expect("at least one iteration");
    let stream_wall = stream_best.expect("at least one iteration");

    // Steady-state pipeline model over the heterogeneous schedule: the
    // sequential cost of a round is the sum of its stage busy times, the
    // pipelined cost is its slowest stage.
    let seq_model: f64 = expected
        .iter()
        .map(|o| stage_busy_secs(o.timing()).iter().sum::<f64>())
        .sum();
    let pipeline_model: f64 = expected
        .iter()
        .map(|o| {
            stage_busy_secs(o.timing())
                .into_iter()
                .fold(0.0f64, f64::max)
        })
        .sum();
    let sustained_model = seq_model / pipeline_model;

    let seq_rate = rounds as f64 / seq_wall;
    let stream_rate = rounds as f64 / stream_wall;
    let measured = stream_rate / seq_rate;
    println!(
        "mixed: sequential {seq_rate:.3} rounds/s, streaming {stream_rate:.3} rounds/s \
         (measured {measured:.2}x, sustained model {sustained_model:.2}x)"
    );

    let json = serde_json::json!({
        "schedule": schedule_str,
        "rounds": rounds,
        "chain_len": CHAIN_LEN,
        "window": WINDOW,
        "admission_weights": weights,
        "conv_onions": sizes.conv_onions,
        "conv_mu": sizes.conv_mu,
        "dial_users": sizes.dial_users,
        "dial_mu_per_drop": sizes.dial_mu,
        "num_drops": sizes.num_drops,
        "workers": sizes.workers,
        "machine_cores": cores,
        "sequential": {
            "wall_secs": seq_wall,
            "rounds_per_sec": seq_rate,
        },
        "streaming": {
            "wall_secs": stream_wall,
            "rounds_per_sec": stream_rate,
        },
        "measured_speedup": measured,
        "sustained_speedup_model": sustained_model,
        "note": "sustained_speedup_model sums, round by heterogeneous round, max(stage busy) \
                 for the pipeline vs sum(stage busy) sequentially; measured_speedup is raw \
                 wall clock on this machine and cannot exceed 1.0 when cores < chain_len.",
    });
    if sizes.smoke {
        // Scratch output for the bench_diff gate; the committed
        // baseline is BENCH_smoke_mixed_schedule.json.
        let _ = write_json("SMOKE_mixed_schedule", &json);
    } else {
        // Committed at the workspace root (unlike the bench_results/
        // artefacts) so the perf trajectory is tracked in-repo.
        let path = workspace_root().join("BENCH_mixed_schedule.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&json).expect("serialize"),
        )
        .expect("write BENCH_mixed_schedule.json");
        println!("[artefact] {}", path.display());
    }

    if sizes.smoke {
        // CI gate: outputs byte-identical (asserted every iteration) and
        // no real throughput regression where the machine can overlap
        // stages; near 1.0× is legitimate when cores < chain_len.
        let threshold = if cores >= 2 { 0.9 } else { 0.5 };
        if measured < threshold {
            eprintln!(
                "SMOKE FAIL: mixed streaming measured {measured:.2}x < {threshold:.2}x \
                 (cores {cores})"
            );
            std::process::exit(1);
        }
        println!("smoke gate passed");
    }
}
