//! Population-scale client artefact: struct-of-arrays
//! [`ClientCohort`] request building, the sharded dead-drop exchange
//! and a full end-to-end round, against the naive per-object
//! [`Client`] loop.
//!
//! The paper's deployment serves a million clients per round (§8);
//! what gates that on the client-aggregation side is request
//! construction. A naive harness loop — one [`Client`] object per
//! user, each lazily building its own per-server DH tables, each round
//! allocating its own request `Vec`s — spends most of its time on
//! per-object setup that the cohort amortises: one shared table set,
//! one flat [`RoundBuffer`] arena, worker-striped construction. This
//! artefact measures clients/sec for:
//!
//! * **request build** — cohort arena build vs the naive per-object
//!   loop (the gated `speedup_request_build` ratio) and vs a
//!   shared-tables per-object loop (informational, `measured_*`);
//! * **exchange** — the last server's dead-drop stage, sharded
//!   (`exchange_shards` from the config) vs unsharded, with replies
//!   asserted byte-identical (the sharded merge is deterministic);
//! * **end to end** — build → chain round → reply ingestion.
//!
//! Regenerate with
//! `cargo run --release -p vuvuzela-bench --bin bench_population`
//! (writes `BENCH_population.json` at the workspace root; 10k clients,
//! asserts the ≥ 10× request-build speedup the artefact documents).
//! Set `VUVUZELA_BENCH_SMOKE=1` for the CI variant: a few hundred
//! clients, writes `bench_results/SMOKE_population.json` for the
//! `bench_diff` regression gate.

use std::time::Instant;

use vuvuzela_bench::report::{workspace_root, write_json};
use vuvuzela_core::chain::Batch;
use vuvuzela_core::cohort::{client_round_rng, key_rng, ClientCohort};
use vuvuzela_core::{Chain, Client, SystemConfig};
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

const CHAIN_LEN: usize = 3;
const SEED: u64 = 4242;

struct Sizes {
    clients: usize,
    mu: f64,
    workers: usize,
    smoke: bool,
}

fn sizes() -> Sizes {
    if std::env::var("VUVUZELA_BENCH_SMOKE").is_ok() {
        Sizes {
            clients: 200,
            mu: 10.0,
            workers: 2,
            smoke: true,
        }
    } else {
        Sizes {
            clients: 10_000,
            mu: 100.0,
            workers: 2,
            smoke: false,
        }
    }
}

fn config(sizes: &Sizes, exchange_shards: usize) -> SystemConfig {
    SystemConfig {
        chain_len: CHAIN_LEN,
        conversation_noise: NoiseDistribution::new(sizes.mu, sizes.mu / 20.0 + 1.0),
        dialing_noise: NoiseDistribution::new(sizes.mu, sizes.mu / 20.0 + 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: sizes.workers,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards,
    }
}

fn main() {
    let sizes = sizes();
    let cores = vuvuzela_net::parallel::default_workers();
    let cfg = config(&sizes, 4);
    let n = sizes.clients;
    println!(
        "population bench: {n} clients, chain {CHAIN_LEN}, µ {}, workers {}, {cores} core(s)",
        sizes.mu, sizes.workers
    );

    let mut sharded = Chain::new(cfg.clone(), SEED);
    let mut unsharded = Chain::new(config(&sizes, 1), SEED);
    let pks = sharded.server_public_keys();

    // --- Request build: cohort arena vs per-object loops. ------------
    let mut cohort = ClientCohort::with_own_tables(cfg.clone(), SEED, &pks);
    cohort.join(n);
    // Steady-state rate: best of two rounds (round 0 also warms the
    // worker pool).
    let mut cohort_secs = f64::INFINITY;
    let mut batch = None;
    for round in 0..2u64 {
        let start = Instant::now();
        let buf = cohort.build_conversation_round(round);
        cohort_secs = cohort_secs.min(start.elapsed().as_secs_f64());
        cohort.expire_pending(round + 1); // keep only the last round's keys
        batch = Some(buf);
    }
    let batch = batch.expect("two rounds built");
    let cohort_rate = n as f64 / cohort_secs;
    println!("request build: cohort {cohort_rate:.0} clients/s ({cohort_secs:.3} s)");

    // The naive loop: one Client per user, keypairs drawn from the same
    // stream, every client lazily building its OWN per-server tables
    // inside the round (what a per-object harness does by default).
    // Object setup is outside the timer; table build is the loop's
    // inherent per-client cost and stays inside.
    let mut krng = key_rng(SEED);
    let mut naive: Vec<Client> = (0..n)
        .map(|_| Client::new("naive", Keypair::generate(&mut krng), cfg.clone()))
        .collect();
    let start = Instant::now();
    for (i, client) in naive.iter_mut().enumerate() {
        let mut rng = client_round_rng(SEED, 1, i as u64);
        client.build_conversation_requests(&mut rng, 1, &pks);
    }
    let naive_secs = start.elapsed().as_secs_f64();
    let naive_rate = n as f64 / naive_secs;
    drop(naive);
    println!("request build: naive per-object {naive_rate:.0} clients/s ({naive_secs:.3} s)");

    // Shared-tables per-object loop: the strongest per-object baseline
    // (tables amortised, but still one object + one Vec per request).
    let tables = Client::chain_tables(&pks);
    let mut krng = key_rng(SEED);
    let mut shared: Vec<Client> = (0..n)
        .map(|_| {
            let mut c = Client::new("shared", Keypair::generate(&mut krng), cfg.clone());
            c.set_chain_tables(tables.clone(), &pks);
            c
        })
        .collect();
    let start = Instant::now();
    for (i, client) in shared.iter_mut().enumerate() {
        let mut rng = client_round_rng(SEED, 1, i as u64);
        client.build_conversation_requests(&mut rng, 1, &pks);
    }
    let shared_secs = start.elapsed().as_secs_f64();
    let shared_rate = n as f64 / shared_secs;
    drop(shared);
    println!("request build: shared-tables loop {shared_rate:.0} clients/s ({shared_secs:.3} s)");

    let speedup_request_build = cohort_rate / naive_rate;
    let speedup_vs_shared = cohort_rate / shared_rate;
    println!(
        "request build speedup: {speedup_request_build:.1}x vs naive, \
         {speedup_vs_shared:.2}x vs shared-tables"
    );

    // --- Exchange: sharded vs unsharded tail, identical replies. ------
    let round = 1u64;
    let (replies_sharded, timing_sharded) =
        sharded.run_conversation_round(round, Batch::Flat(batch.clone()));
    let (replies_unsharded, timing_unsharded) =
        unsharded.run_conversation_round(round, Batch::Flat(batch));
    assert_eq!(
        replies_sharded, replies_unsharded,
        "sharded exchange must merge deterministically"
    );
    let exch_sharded_secs = timing_sharded.exchange.as_secs_f64();
    let exch_unsharded_secs = timing_unsharded.exchange.as_secs_f64();
    let exch_sharded_rate = n as f64 / exch_sharded_secs;
    let exch_unsharded_rate = n as f64 / exch_unsharded_secs;
    println!(
        "exchange: sharded {exch_sharded_rate:.0} clients/s, \
         unsharded {exch_unsharded_rate:.0} clients/s"
    );

    // --- End to end: build → round → reply ingestion. -----------------
    let round = 2u64;
    let start = Instant::now();
    let buf = cohort.build_conversation_round(round);
    let (replies, _) = sharded.run_conversation_round(round, Batch::Flat(buf));
    cohort.handle_conversation_replies(round, &replies);
    let e2e_secs = start.elapsed().as_secs_f64();
    let e2e_rate = n as f64 / e2e_secs;
    println!("end to end: {e2e_rate:.0} clients/s ({e2e_secs:.3} s for the round)");

    let json = serde_json::json!({
        "clients": n,
        "chain_len": CHAIN_LEN,
        "conversation_mu": sizes.mu,
        "workers": sizes.workers,
        "exchange_shards": 4,
        "machine_cores": cores,
        "request_build": {
            "cohort_clients_per_sec": cohort_rate,
            "naive_per_object_clients_per_sec": naive_rate,
            "shared_tables_loop_clients_per_sec": shared_rate,
        },
        "speedup_request_build": speedup_request_build,
        "measured_speedup_request_build_vs_shared_tables": speedup_vs_shared,
        "exchange": {
            "sharded_clients_per_sec": exch_sharded_rate,
            "unsharded_clients_per_sec": exch_unsharded_rate,
            "measured_speedup_exchange_sharded": exch_sharded_rate / exch_unsharded_rate,
        },
        "end_to_end": {
            "round_secs": e2e_secs,
            "clients_per_sec": e2e_rate,
        },
        "note": "speedup_request_build compares the cohort's flat-arena build against the \
                 naive per-object loop (fresh Clients, per-client DH tables) at the same \
                 client count; measured_* ratios are informational and excluded from the \
                 bench_diff gate (exchange sharding only pays off with spare cores).",
    });
    if sizes.smoke {
        // Scratch output for the bench_diff gate; the committed
        // baseline is BENCH_smoke_population.json.
        let _ = write_json("SMOKE_population", &json);
        // Same-machine floor: the arena build must beat the naive loop
        // decisively even at smoke scale; bench_diff tracks drift.
        if speedup_request_build < 3.0 {
            eprintln!("SMOKE FAIL: request-build speedup {speedup_request_build:.2}x < 3x");
            std::process::exit(1);
        }
        println!("smoke gate passed");
    } else {
        assert!(
            speedup_request_build >= 10.0,
            "committed artefact must show the documented >= 10x request-build speedup \
             (got {speedup_request_build:.2}x)"
        );
        let path = workspace_root().join("BENCH_population.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&json).expect("serialize"),
        )
        .expect("write BENCH_population.json");
        println!("[artefact] {}", path.display());
    }
}
