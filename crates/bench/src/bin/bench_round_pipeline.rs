//! Round-pipeline throughput artefact: flat `RoundBuffer` path vs the
//! pre-refactor per-`Vec` reference, measured on a 10,000-onion
//! conversation round at chain length 3.
//!
//! Noise is deterministic with µ = 5,000 per noising server, i.e. 2µ =
//! 10,000 cover onions each — a 1:60 scale-down of the paper's fixed
//! µ = 300,000 (§8.1). µ does not shrink with the user count (it is a
//! privacy parameter), which is why "the noise dominates" server cost at
//! smaller scales (§8.2); cover ≈ 1× real traffic here is the modest end
//! of that regime.
//! Both paths run the same servers with the same seeds and produce
//! byte-identical batches (asserted here before timing), so the
//! comparison isolates implementation cost:
//!
//! * **reference** — the seed implementation: allocating peel, noise
//!   onions as fresh `Vec`s (ladder keygen + ladder DH per layer),
//!   shuffle by cloning every payload;
//! * **flat** — in-place peel over one arena, noise wrapped in place with
//!   comb-table keygen and precomputed per-server DH tables, shuffle by
//!   index remapping, all scheduled on the persistent worker pool.
//!
//! Reported per pass: wall-clock seconds, onions/sec (incoming onions ÷
//! forward-pass time at the first — noising — server, the §8.2 unit of
//! server work), heap allocations per onion (counting global allocator),
//! and the full three-hop forward-pass time. A separate `peel` section
//! isolates the onion-peeling stage itself and prices the 4-wide
//! `Fe4` Montgomery ladder against both the scalar-ladder chunk path it
//! replaced and the seed-era per-slot peel (see [`run_peel_stage`]).
//! Written to `BENCH_round_pipeline.json` at the workspace root for the
//! perf trajectory; regenerate with
//! `cargo run --release -p vuvuzela-bench --bin bench_round_pipeline`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_core::roundbuf::RoundBuffer;
use vuvuzela_core::server::{MixServer, RoundKind};
use vuvuzela_core::SystemConfig;
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// `System` allocator wrapper counting every allocation (not bytes —
/// the pipeline claim is about allocation *count* per onion).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates everything to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ONIONS: u64 = 10_000;
const CHAIN_LEN: usize = 3;
const MU: f64 = 5_000.0;
const ROUND: u64 = 1;
const ITERATIONS: usize = 3;

fn config() -> SystemConfig {
    SystemConfig {
        chain_len: CHAIN_LEN,
        conversation_noise: NoiseDistribution::new(MU, MU / 20.0),
        dialing_noise: NoiseDistribution::new(1.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: vuvuzela_net::parallel::default_workers(),
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

fn build_servers(seed: u64) -> Vec<MixServer> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keypairs: Vec<Keypair> = (0..CHAIN_LEN)
        .map(|_| Keypair::generate(&mut rng))
        .collect();
    let publics: Vec<_> = keypairs.iter().map(|kp| kp.public).collect();
    keypairs
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            MixServer::new(
                i,
                CHAIN_LEN,
                kp,
                publics[i + 1..].to_vec(),
                config(),
                seed.wrapping_add(1 + i as u64),
            )
        })
        .collect()
}

struct PassResult {
    first_hop_secs: f64,
    full_chain_secs: f64,
    allocs_per_onion: f64,
}

/// Runs the full three-hop forward pass, timing the first (noising) hop
/// separately and counting allocations across the whole pass.
fn run_reference(seed: u64, batch: &[Vec<u8>]) -> (PassResult, Vec<Vec<u8>>) {
    let mut servers = build_servers(seed);
    let input = batch.to_vec();
    let alloc0 = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let mut current = servers[0].forward_reference(ROUND, RoundKind::Conversation, input);
    let first_hop_secs = start.elapsed().as_secs_f64();
    for server in &mut servers[1..] {
        current = server.forward_reference(ROUND, RoundKind::Conversation, current);
    }
    let full_chain_secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - alloc0;
    (
        PassResult {
            first_hop_secs,
            full_chain_secs,
            allocs_per_onion: allocs as f64 / ONIONS as f64,
        },
        current,
    )
}

fn run_flat(seed: u64, batch: &[Vec<u8>]) -> (PassResult, Vec<Vec<u8>>) {
    let mut servers = build_servers(seed);
    let width = servers[0].incoming_width(RoundKind::Conversation);
    let (mut buf, mismatched) = RoundBuffer::from_vecs(batch, width, width);
    assert!(mismatched.is_empty(), "benchmark batch must be well-formed");
    let alloc0 = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    buf = servers[0].forward_buf(ROUND, RoundKind::Conversation, buf);
    let first_hop_secs = start.elapsed().as_secs_f64();
    for server in &mut servers[1..] {
        buf = server.forward_buf(ROUND, RoundKind::Conversation, buf);
    }
    let full_chain_secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - alloc0;
    (
        PassResult {
            first_hop_secs,
            full_chain_secs,
            allocs_per_onion: allocs as f64 / ONIONS as f64,
        },
        buf.to_vecs(),
    )
}

fn best(results: &[PassResult]) -> &PassResult {
    results
        .iter()
        .min_by(|a, b| {
            a.first_hop_secs
                .partial_cmp(&b.first_hop_secs)
                .expect("finite timings")
        })
        .expect("at least one iteration")
}

fn main() {
    let seed = 42;
    println!("building {ONIONS}-onion workload (chain {CHAIN_LEN}, mu {MU})...");
    let servers = build_servers(seed);
    let pks: Vec<_> = servers.iter().map(MixServer::public_key).collect();
    drop(servers);
    let batch = conversation_batch(
        ONIONS,
        ROUND,
        &pks,
        vuvuzela_net::parallel::default_workers(),
        7,
    );

    // Correctness gate: both paths must agree bytewise before timing.
    let (_, out_ref) = run_reference(seed, &batch);
    let (_, out_flat) = run_flat(seed, &batch);
    assert_eq!(out_ref, out_flat, "flat and reference paths diverged");
    println!(
        "paths byte-identical over {} outgoing onions",
        out_ref.len()
    );

    let mut reference = Vec::new();
    let mut flat = Vec::new();
    for i in 0..ITERATIONS {
        reference.push(run_reference(seed, &batch).0);
        flat.push(run_flat(seed, &batch).0);
        println!(
            "iter {i}: reference first-hop {:.3}s  flat first-hop {:.3}s",
            reference[i].first_hop_secs, flat[i].first_hop_secs
        );
    }
    let reference = best(&reference);
    let flat = best(&flat);

    let peel = vuvuzela_bench::peelstage::run(4096, 5, true);

    let ref_rate = ONIONS as f64 / reference.first_hop_secs;
    let flat_rate = ONIONS as f64 / flat.first_hop_secs;
    let speedup_first = flat_rate / ref_rate;
    let speedup_full = reference.full_chain_secs / flat.full_chain_secs;
    println!(
        "\nfirst (noising) hop: reference {:>9.0} onions/s   flat {:>9.0} onions/s   {speedup_first:.2}x",
        ref_rate, flat_rate
    );
    println!(
        "full 3-hop forward:  reference {:.3}s              flat {:.3}s              {speedup_full:.2}x",
        reference.full_chain_secs, flat.full_chain_secs
    );
    println!(
        "allocations/onion:   reference {:>6.1}             flat {:>6.1}",
        reference.allocs_per_onion, flat.allocs_per_onion
    );

    let json = serde_json::json!({
        "onions": ONIONS,
        "chain_len": CHAIN_LEN,
        "mu": MU,
        "workers": vuvuzela_net::parallel::default_workers(),
        "iterations": ITERATIONS,
        "reference": {
            "first_hop_secs": reference.first_hop_secs,
            "first_hop_onions_per_sec": ref_rate,
            "full_chain_secs": reference.full_chain_secs,
            "allocs_per_onion": reference.allocs_per_onion,
        },
        "flat": {
            "first_hop_secs": flat.first_hop_secs,
            "first_hop_onions_per_sec": flat_rate,
            "full_chain_secs": flat.full_chain_secs,
            "allocs_per_onion": flat.allocs_per_onion,
        },
        "speedup_first_hop": speedup_first,
        "speedup_full_chain": speedup_full,
        "peel": peel,
    });

    // Committed at the workspace root (unlike the bench_results/
    // artefacts) so the perf trajectory is tracked in-repo.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = root.join("BENCH_round_pipeline.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_round_pipeline.json");
    println!("\n[artefact] {}", path.display());
}
