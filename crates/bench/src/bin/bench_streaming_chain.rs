//! Streaming-scheduler throughput artefact: sequential `Chain` vs the
//! overlapped `StreamingChain` on identical multi-round schedules.
//!
//! Two numbers are reported per worker configuration:
//!
//! * **measured** — wall-clock rounds/sec for each scheduler on this
//!   machine. On a box with fewer cores than pipeline stages the
//!   overlapped schedule cannot beat the sequential one (the work is
//!   CPU-bound and identical); the measurement is still the honest
//!   ground truth for the machine it ran on and doubles as the CI
//!   regression gate.
//! * **sustained model** — the steady-state pipeline throughput implied
//!   by the *measured per-hop stage times* of the same run: a streaming
//!   schedule completes one round per `max(stage busy time)` once the
//!   pipe is full, versus `sum(stage times)` sequentially (§8.2's
//!   latency-is-the-sum observation, inverted for throughput). This is
//!   the number that scales with cores ≥ stages; both are committed so
//!   the artefact is meaningful on any machine.
//!
//! Both schedulers are first held to byte-identical outputs for the whole
//! schedule (the same property the `streaming_equivalence` tests check).
//!
//! Also emits `BENCH_dialing_round.json`: a dialing-round schedule at
//! the paper's µ = 13,000 noise per drop (§8.1), the heaviest per-onion
//! workload in the system.
//!
//! Regenerate with
//! `cargo run --release -p vuvuzela-bench --bin bench_streaming_chain`.
//! Set `VUVUZELA_BENCH_SMOKE=1` for the CI smoke variant (tiny sizes,
//! `workers = 2`, exits non-zero if streaming throughput regresses below
//! sequential on a multi-core machine).

use std::time::Instant;

use vuvuzela_bench::report::{stage_busy_secs, workspace_root, write_json};
use vuvuzela_bench::workload::{conversation_batch, dialing_batch};
use vuvuzela_core::chain::RoundTiming;
use vuvuzela_core::pipeline::StreamingChain;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

const CHAIN_LEN: usize = 3;
const DIAL_MU: f64 = 13_000.0;

struct Sizes {
    onions: u64,
    mu: f64,
    rounds: usize,
    workers: Vec<usize>,
    dial_users: u64,
    dial_rounds: usize,
    smoke: bool,
}

fn sizes() -> Sizes {
    let env_u64 = |key: &str, default: u64| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    if std::env::var("VUVUZELA_BENCH_SMOKE").is_ok() {
        Sizes {
            onions: env_u64("VUVUZELA_BENCH_ONIONS", 120),
            mu: 60.0,
            rounds: 4,
            workers: vec![2],
            dial_users: 0, // smoke skips the heavy dialing artefact
            dial_rounds: 0,
            smoke: true,
        }
    } else {
        Sizes {
            onions: env_u64("VUVUZELA_BENCH_ONIONS", 2_000),
            mu: 1_000.0,
            rounds: env_u64("VUVUZELA_BENCH_ROUNDS", 6) as usize,
            workers: vec![1, 2, 4],
            dial_users: env_u64("VUVUZELA_BENCH_DIAL_USERS", 400),
            dial_rounds: env_u64("VUVUZELA_BENCH_DIAL_ROUNDS", 2) as usize,
            smoke: false,
        }
    }
}

fn config(workers: usize, mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len: CHAIN_LEN,
        conversation_noise: NoiseDistribution::new(mu, mu / 20.0 + 1.0),
        dialing_noise: NoiseDistribution::new(DIAL_MU, 770.0),
        noise_mode: NoiseMode::Deterministic,
        workers,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

struct SchedulerResult {
    wall_secs: f64,
    timings: Vec<RoundTiming>,
}

fn run_sequential(
    workers: usize,
    mu: f64,
    seed: u64,
    schedule: &[(u64, Vec<Vec<u8>>)],
) -> (SchedulerResult, Vec<Vec<Vec<u8>>>) {
    let mut chain = Chain::new(config(workers, mu), seed);
    let start = Instant::now();
    let mut replies = Vec::new();
    let mut timings = Vec::new();
    for (round, batch) in schedule {
        let (r, t) = chain.run_conversation_round(*round, batch.clone());
        replies.push(r);
        timings.push(t);
    }
    (
        SchedulerResult {
            wall_secs: start.elapsed().as_secs_f64(),
            timings,
        },
        replies,
    )
}

fn run_streaming(
    workers: usize,
    mu: f64,
    seed: u64,
    schedule: &[(u64, Vec<Vec<u8>>)],
) -> (SchedulerResult, Vec<Vec<Vec<u8>>>) {
    let mut chain = StreamingChain::new(config(workers, mu), seed);
    let start = Instant::now();
    let out = chain.run_conversation_rounds(schedule.to_vec());
    let wall_secs = start.elapsed().as_secs_f64();
    let (replies, timings): (Vec<_>, Vec<_>) = out.into_iter().unzip();
    (SchedulerResult { wall_secs, timings }, replies)
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let sizes = sizes();
    let seed = 42;
    let cores = vuvuzela_net::parallel::default_workers();
    println!(
        "streaming-chain bench: {} onions/round, {} rounds, chain {CHAIN_LEN}, mu {}, {} core(s)",
        sizes.onions, sizes.rounds, sizes.mu, cores
    );

    // One shared client workload per round (batches are scheduler-independent).
    let pks = Chain::new(config(1, sizes.mu), seed).server_public_keys();
    let schedule: Vec<(u64, Vec<Vec<u8>>)> = (0..sizes.rounds as u64)
        .map(|round| {
            (
                round,
                conversation_batch(sizes.onions, round, &pks, cores, 7 + round),
            )
        })
        .collect();

    let mut configs = Vec::new();
    let mut gate_failed = false;
    let iterations = if sizes.smoke { 2 } else { 3 };
    for &workers in &sizes.workers {
        // Best-of-N wall clock per scheduler (single-core boxes have
        // ±10% run-to-run noise); outputs must agree on every iteration.
        let mut seq: Option<SchedulerResult> = None;
        let mut stream: Option<SchedulerResult> = None;
        for _ in 0..iterations {
            let (s, seq_replies) = run_sequential(workers, sizes.mu, seed, &schedule);
            let (p, stream_replies) = run_streaming(workers, sizes.mu, seed, &schedule);
            assert_eq!(
                seq_replies, stream_replies,
                "streaming and sequential outputs diverged (workers {workers})"
            );
            if seq.as_ref().is_none_or(|best| s.wall_secs < best.wall_secs) {
                seq = Some(s);
            }
            if stream
                .as_ref()
                .is_none_or(|best| p.wall_secs < best.wall_secs)
            {
                stream = Some(p);
            }
        }
        let seq = seq.expect("at least one iteration");
        let stream = stream.expect("at least one iteration");

        let seq_period = mean(seq.timings.iter().map(|t| t.total.as_secs_f64()));
        let n_stages = CHAIN_LEN;
        let mean_stage_busy: Vec<f64> = (0..n_stages)
            .map(|i| mean(seq.timings.iter().map(|t| stage_busy_secs(t)[i])))
            .collect();
        let pipeline_period = mean_stage_busy.iter().cloned().fold(0.0f64, f64::max);
        let sustained_model = seq_period / pipeline_period;

        let seq_rate = sizes.rounds as f64 / seq.wall_secs;
        let stream_rate = sizes.rounds as f64 / stream.wall_secs;
        let measured = stream_rate / seq_rate;
        println!(
            "workers {workers}: sequential {seq_rate:.3} rounds/s, streaming {stream_rate:.3} rounds/s \
             (measured {measured:.2}x, sustained model {sustained_model:.2}x)"
        );

        if sizes.smoke {
            // CI gate: outputs byte-identical (asserted above) and no
            // real throughput regression where the machine can overlap
            // stages. The measured ratio legitimately hovers near 1.0×
            // when cores < chain_len and wall clocks carry ±10%
            // run-to-run noise even best-of-2, so the gate trips only on
            // a regression outside that band.
            let threshold = if cores >= 2 { 0.9 } else { 0.5 };
            if measured < threshold {
                eprintln!(
                    "SMOKE FAIL: streaming measured {measured:.2}x < {threshold:.2}x \
                     (cores {cores}, workers {workers})"
                );
                gate_failed = true;
            }
        }

        configs.push(serde_json::json!({
            "workers": workers,
            "sequential": {
                "wall_secs": seq.wall_secs,
                "rounds_per_sec": seq_rate,
                "mean_round_secs": seq_period,
                "mean_stage_busy_secs": mean_stage_busy,
            },
            "streaming": {
                "wall_secs": stream.wall_secs,
                "rounds_per_sec": stream_rate,
                "mean_stream_total_secs": mean(stream.timings.iter().map(|t| t.total.as_secs_f64())),
            },
            "measured_speedup": measured,
            "sustained_speedup_model": sustained_model,
        }));
    }

    if sizes.smoke {
        // The tiny run's ratio metrics (measured / sustained-model
        // speedups, batched-peel speedup) feed the `bench_diff`
        // regression gate; the committed baseline is the committed
        // BENCH_smoke_streaming_chain.json.
        let json = serde_json::json!({
            "onions": sizes.onions,
            "chain_len": CHAIN_LEN,
            "mu": sizes.mu,
            "rounds": sizes.rounds,
            "machine_cores": cores,
            "configs": configs,
            "peel": vuvuzela_bench::peelstage::run(512, 3, false),
        });
        let _ = write_json("SMOKE_streaming_chain", &json);
        if gate_failed {
            std::process::exit(1);
        }
        println!("smoke gate passed");
        return;
    }

    let sustained_at_2 = configs
        .iter()
        .find(|c| c["workers"].as_u64() == Some(2))
        .map(|c| c["sustained_speedup_model"].as_f64().unwrap_or(0.0))
        .unwrap_or(0.0);
    let json = serde_json::json!({
        "onions": sizes.onions,
        "chain_len": CHAIN_LEN,
        "mu": sizes.mu,
        "rounds": sizes.rounds,
        "machine_cores": cores,
        "configs": configs,
        "peel": vuvuzela_bench::peelstage::run(2048, 3, false),
        "sustained_speedup": sustained_at_2,
        "note": "sustained_speedup is the steady-state pipeline model derived from measured \
                 per-hop stage times (one round per max stage time vs the sum of stage times); \
                 measured_speedup is raw wall clock on this machine, which cannot exceed 1.0 \
                 when cores < chain_len because the work is CPU-bound and identical.",
    });
    let root = workspace_root();
    let path = root.join("BENCH_streaming_chain.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write BENCH_streaming_chain.json");
    println!("[artefact] {}", path.display());

    // ---- Dialing-round artefact (µ = 13,000 noise per drop, §8.1) ----
    if sizes.dial_rounds > 0 {
        let num_drops = 1u32;
        println!(
            "\ndialing bench: {} users, {} rounds, mu {DIAL_MU} per drop, {num_drops} drop(s)",
            sizes.dial_users, sizes.dial_rounds
        );
        let dial_schedule: Vec<(u64, Vec<Vec<u8>>)> = (0..sizes.dial_rounds as u64)
            .map(|round| {
                (
                    round,
                    dialing_batch(
                        sizes.dial_users,
                        sizes.dial_users / 20,
                        num_drops,
                        round,
                        &pks,
                        cores,
                        99 + round,
                    ),
                )
            })
            .collect();

        let workers = 2;
        let mut seq_chain = Chain::new(config(workers, sizes.mu), seed);
        let start = Instant::now();
        let mut seq_timings = Vec::new();
        for (round, batch) in &dial_schedule {
            seq_timings.push(seq_chain.run_dialing_round(*round, batch.clone(), num_drops));
        }
        let seq_wall = start.elapsed().as_secs_f64();

        let mut stream_chain = StreamingChain::new(config(workers, sizes.mu), seed);
        let start = Instant::now();
        let stream_timings = stream_chain.run_dialing_rounds(dial_schedule.clone(), num_drops);
        let stream_wall = start.elapsed().as_secs_f64();

        // Observables must agree (full byte-equivalence is covered by the
        // streaming_equivalence proptests; drops are too large to diff here).
        let mut got = stream_chain.chain().dialing_observables().to_vec();
        got.sort_by_key(|(r, _)| *r);
        assert_eq!(
            got.as_slice(),
            seq_chain.dialing_observables(),
            "dialing observables diverged"
        );

        // Forward-only pipeline model: one round per slowest hop
        // (+ deposit at the tail) vs the sum of hops.
        let mean_stage: Vec<f64> = (0..CHAIN_LEN)
            .map(|i| {
                mean(seq_timings.iter().map(|t| {
                    t.forward[i].as_secs_f64()
                        + if i == CHAIN_LEN - 1 {
                            t.exchange.as_secs_f64()
                        } else {
                            0.0
                        }
                }))
            })
            .collect();
        let seq_period = mean(seq_timings.iter().map(|t| t.total.as_secs_f64()));
        let pipeline_period = mean_stage.iter().cloned().fold(0.0f64, f64::max);

        let seq_rate = sizes.dial_rounds as f64 / seq_wall;
        let stream_rate = sizes.dial_rounds as f64 / stream_wall;
        println!(
            "dialing: sequential {seq_rate:.3} rounds/s, streaming {stream_rate:.3} rounds/s \
             (measured {:.2}x, sustained model {:.2}x)",
            stream_rate / seq_rate,
            seq_period / pipeline_period
        );

        let dial_json = serde_json::json!({
            "users": sizes.dial_users,
            "dialers": sizes.dial_users / 20,
            "num_drops": num_drops,
            "mu_per_drop": DIAL_MU,
            "chain_len": CHAIN_LEN,
            "rounds": sizes.dial_rounds,
            "workers": workers,
            "machine_cores": cores,
            "sequential": {
                "wall_secs": seq_wall,
                "rounds_per_sec": seq_rate,
                "mean_round_secs": seq_period,
                "mean_stage_busy_secs": mean_stage,
            },
            "streaming": {
                "wall_secs": stream_wall,
                "rounds_per_sec": stream_rate,
            },
            "measured_speedup": stream_rate / seq_rate,
            "sustained_speedup_model": seq_period / pipeline_period,
            "stream_timings_total_secs":
                stream_timings.iter().map(|t| t.total.as_secs_f64()).collect::<Vec<_>>(),
        });
        let path = root.join("BENCH_dialing_round.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&dial_json).expect("serialize"),
        )
        .expect("write BENCH_dialing_round.json");
        println!("[artefact] {}", path.display());
    }
}
