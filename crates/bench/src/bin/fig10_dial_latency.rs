//! Figure 10: dialing-round end-to-end latency vs online users.
//!
//! The paper: 5% of users dial each round, µ = 13,000 per drop, one
//! invitation drop at evaluation scale (§7), sweeping 10 → 2M users
//! (13 s → 50 s). We run 1:100 scale (µ = 130) and extrapolate like
//! Figure 9.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig10_dial_latency`
//! (pass `--quick` for a reduced grid).

use std::time::Instant;
use vuvuzela_bench::report::{secs, write_json, Table};
use vuvuzela_bench::workload::dialing_batch;
use vuvuzela_bench::CostModel;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

const SCALE: u64 = 100;
const DIAL_FRACTION: f64 = 0.05;
const NUM_DROPS: u32 = 1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mu_scaled = 130.0; // 13,000 / SCALE
    let users_scaled: Vec<u64> = if quick {
        vec![10, 2_500, 5_000]
    } else {
        vec![10, 2_500, 5_000, 10_000, 15_000, 20_000]
    };

    let model = CostModel::calibrate();
    let mut table = Table::new(&[
        "users (x100)",
        "dialers",
        "measured",
        "model",
        "overhead",
        "paper-scale est.",
    ]);
    let mut points = Vec::new();
    let mut overheads = Vec::new();

    for &users in &users_scaled {
        let dialers = ((users as f64) * DIAL_FRACTION).round() as u64;
        let config = SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(1.0, 1.0),
            dialing_noise: NoiseDistribution::new(mu_scaled, (mu_scaled / 20.0).max(1.0)),
            noise_mode: NoiseMode::Deterministic,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        };
        let mut chain = Chain::new(config, 1);
        let pks = chain.server_public_keys();
        let batch = dialing_batch(users, dialers, NUM_DROPS, 0, &pks, model.cores, users);

        let start = Instant::now();
        let _timing = chain.run_dialing_round(0, batch, NUM_DROPS);
        let measured = start.elapsed().as_secs_f64();

        let dh_only = model
            .with_overhead(1.0)
            .predict_dialing_secs(users, mu_scaled, NUM_DROPS, 3);
        let overhead = measured / dh_only;
        overheads.push(overhead);
        let paper_est = CostModel::paper_hardware()
            .with_overhead(overhead)
            .predict_dialing_secs(users * SCALE, mu_scaled * SCALE as f64, NUM_DROPS, 3);

        table.row(&[
            users.to_string(),
            dialers.to_string(),
            secs(measured),
            secs(dh_only),
            format!("{overhead:.2}x"),
            secs(paper_est),
        ]);
        points.push(serde_json::json!({
            "users_scaled": users, "dialers": dialers,
            "measured_secs": measured, "dh_model_secs": dh_only,
            "overhead": overhead, "paper_scale_est_secs": paper_est,
        }));
    }

    table.print("Figure 10 (1:100 scale): dialing latency vs online users (5% dialing)");
    let mean_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;

    // In the paper's Figure 10 "the conversation protocol is running
    // concurrently with µ=300,000", so dialing rounds contend with ~1.2M
    // conversation noise requests for the same CPUs. Our scaled runs have
    // no concurrent conversation, so we model the contention as an
    // additive constant *fitted at the 10-user endpoint* (13 s, where
    // dialing's own work is negligible) and then *predict* the 2M-user
    // endpoint from it.
    let paper = CostModel::paper_hardware().with_overhead(2.0);
    let dial_only_10 = paper.predict_dialing_secs(10, 13_000.0, NUM_DROPS, 3);
    let contention = 13.0 - dial_only_10;
    let predicted_2m = paper.predict_dialing_secs(2_000_000, 13_000.0, NUM_DROPS, 3) + contention;
    println!(
        "\nconcurrent-conversation contention fitted at 10 users: {:.1} s\n\
         paper endpoints: 13 s at 10 users, 50 s at 2M users\n\
         our model:       13.0 s (fitted) at 10 users, {} (predicted) at 2M users",
        contention,
        secs(predicted_2m),
    );

    write_json(
        "fig10_dial_latency",
        &serde_json::json!({
            "scale": SCALE,
            "mu_scaled": mu_scaled,
            "dial_fraction": DIAL_FRACTION,
            "points": points,
            "mean_overhead": mean_overhead,
        }),
    );
}
