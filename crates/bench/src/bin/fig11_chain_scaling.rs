//! Figure 11: conversation latency vs number of servers in the chain.
//!
//! The paper fixes 1M active users and µ = 300K, sweeping 1–6 servers;
//! latency grows "roughly quadratically" because each of the s servers
//! must process cover traffic from all previous servers (O(s) work for
//! O(s) servers → O(s²)). We run 1:300 scale (3,333 users, µ = 1,000)
//! and check the quadratic shape directly.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig11_chain_scaling`

use std::time::Instant;
use vuvuzela_bench::report::{secs, write_json, Table};
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_bench::CostModel;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

const SCALE: u64 = 300;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let users: u64 = 1_000_000 / SCALE;
    let mu: f64 = 300_000.0 / SCALE as f64;
    let chain_lengths: Vec<usize> = if quick {
        vec![1, 2, 3, 4]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };

    let model = CostModel::calibrate();
    let mut table = Table::new(&["servers", "measured", "model", "paper-scale est."]);
    let mut points = Vec::new();

    for &n in &chain_lengths {
        let config = SystemConfig {
            chain_len: n,
            conversation_noise: NoiseDistribution::new(mu, (mu / 20.0).max(1.0)),
            dialing_noise: NoiseDistribution::new(1.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        };
        let mut chain = Chain::new(config, 1);
        let pks = chain.server_public_keys();
        let batch = conversation_batch(users, 0, &pks, model.cores, n as u64);

        let start = Instant::now();
        let _ = chain.run_conversation_round(0, batch);
        let measured = start.elapsed().as_secs_f64();

        let dh_only = model
            .with_overhead(1.0)
            .predict_conversation_secs(users, mu, n);
        let overhead = measured / dh_only;
        let paper_est = CostModel::paper_hardware()
            .with_overhead(overhead)
            .predict_conversation_secs(1_000_000, 300_000.0, n);

        table.row(&[
            n.to_string(),
            secs(measured),
            secs(dh_only),
            secs(paper_est),
        ]);
        points.push(serde_json::json!({
            "servers": n, "measured_secs": measured,
            "dh_model_secs": dh_only, "paper_scale_est_secs": paper_est,
        }));
    }

    table.print("Figure 11 (1:300 scale): latency vs servers, 1M-user equivalent");

    // Quadratic-shape check: fit measured latency against a + b·s².
    if points.len() >= 3 {
        let first = points.first().expect("non-empty");
        let last = points.last().expect("non-empty");
        let (s1, t1) = (
            first["servers"].as_u64().expect("int") as f64,
            first["measured_secs"].as_f64().expect("float"),
        );
        let (s2, t2) = (
            last["servers"].as_u64().expect("int") as f64,
            last["measured_secs"].as_f64().expect("float"),
        );
        let growth = t2 / t1;
        let linear = s2 / s1;
        let quadratic = (s2 / s1).powi(2);
        println!(
            "\nshape: {s1:.0}→{s2:.0} servers grew latency {growth:.1}x \
             (linear would be {linear:.1}x, quadratic {quadratic:.1}x)"
        );
    }

    write_json(
        "fig11_chain_scaling",
        &serde_json::json!({ "scale": SCALE, "users_scaled": users, "mu_scaled": mu, "points": points }),
    );
}
