//! Figure 6: the (∆m1, ∆m2) sensitivity table.
//!
//! Empirically reproduces the paper's Figure 6 by running one noise-free
//! conversation round through the *real* chain for every world, and
//! differencing the observables between each of Alice's real actions and
//! each cover story. Other users' behaviour is held fixed across the
//! compared worlds, exactly as the differential-privacy adjacency
//! requires (§6.2).
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig6_sensitivity`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_bench::report::{write_json, Table};
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_wire::conversation::{ConversationKeys, ExchangeRequest};
use vuvuzela_wire::MESSAGE_LEN;

/// Alice's possible behaviours in a round.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Action {
    Idle,
    /// Exchange with a partner who reciprocates (b or c).
    ConvRecip(usize),
    /// Exchange with a partner who does not reciprocate (x or y).
    ConvUnrecip(usize),
}

fn main() {
    // Population: alice + b, c (always attempt an exchange with Alice) +
    // x, y (never do; they run fake exchanges like idle users).
    let mut rng = StdRng::seed_from_u64(42);
    let alice = Keypair::generate(&mut rng);
    let partners: Vec<Keypair> = (0..4).map(|_| Keypair::generate(&mut rng)).collect();
    let (b, c, x, y) = (0usize, 1, 2, 3);

    let real_actions = [
        ("idle", Action::Idle),
        ("conv b", Action::ConvRecip(b)),
        ("conv x", Action::ConvUnrecip(x)),
    ];
    let cover_stories = [
        ("idle", Action::Idle),
        ("conv b", Action::ConvRecip(b)),
        ("conv c", Action::ConvRecip(c)),
        ("conv x", Action::ConvUnrecip(x)),
        ("conv y", Action::ConvUnrecip(y)),
    ];

    // Observables for each distinct world Alice might inhabit.
    let world = |action: Action| -> (u64, u64) { observe_world(&alice, &partners, action) };

    let mut table = Table::new(&["cover \\ real", "idle", "conv b", "conv x"]);
    let mut matrix = Vec::new();
    for (cover_name, cover) in cover_stories {
        let (m1_cover, m2_cover) = world(cover);
        let mut cells = vec![cover_name.to_string()];
        let mut row_json = Vec::new();
        for (_, real) in &real_actions {
            let (m1_real, m2_real) = world(*real);
            let dm1 = m1_real as i64 - m1_cover as i64;
            let dm2 = m2_real as i64 - m2_cover as i64;
            cells.push(format!("{dm1:+}, {dm2:+}"));
            row_json.push(serde_json::json!({ "dm1": dm1, "dm2": dm2 }));
        }
        table.row(&cells);
        matrix.push(serde_json::json!({ "cover": cover_name, "cells": row_json }));
    }

    table.print("Figure 6: (∆m1, ∆m2) between Alice's real action and cover story");
    println!(
        "\npaper: |∆m1| ≤ 2 and |∆m2| ≤ 1 in every cell — the sensitivities\n\
         Theorem 1 noises against."
    );
    write_json("fig6_sensitivity", &serde_json::json!({ "matrix": matrix }));
}

/// Runs one noise-free round where Alice takes `action` and returns
/// (m1, m2).
fn observe_world(alice: &Keypair, partners: &[Keypair], action: Action) -> (u64, u64) {
    let config = SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(1.0, 1.0),
        dialing_noise: NoiseDistribution::new(1.0, 1.0),
        noise_mode: NoiseMode::Off,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    };
    // Fixed chain/seed so only Alice's action varies between worlds.
    let mut chain = Chain::new(config, 7);
    let pks = chain.server_public_keys();
    let mut rng = StdRng::seed_from_u64(1234);
    let round = 0u64;

    let keys_with = |i: usize| -> ConversationKeys {
        ConversationKeys::derive(&alice.secret, &alice.public, &partners[i].public)
    };
    let partner_keys = |i: usize| -> ConversationKeys {
        ConversationKeys::derive(&partners[i].secret, &partners[i].public, &alice.public)
    };

    let mut requests: Vec<ExchangeRequest> = Vec::new();

    // Alice's request.
    let alice_request = match action {
        Action::Idle => {
            let fake = ConversationKeys::fake(&mut rng, &alice.secret, &alice.public);
            ExchangeRequest {
                drop: fake.drop_id(round),
                sealed_message: fake.seal_message(round, &[0u8; MESSAGE_LEN]),
            }
        }
        Action::ConvRecip(i) | Action::ConvUnrecip(i) => {
            let keys = keys_with(i);
            ExchangeRequest {
                drop: keys.drop_id(round),
                sealed_message: keys.seal_message(round, &[0u8; MESSAGE_LEN]),
            }
        }
    };
    requests.push(alice_request);

    // b and c always attempt the exchange with Alice (fixed behaviour).
    for i in [0usize, 1] {
        let keys = partner_keys(i);
        requests.push(ExchangeRequest {
            drop: keys.drop_id(round),
            sealed_message: keys.seal_message(round, &[0u8; MESSAGE_LEN]),
        });
    }
    // x and y never reciprocate: they run fake exchanges (fixed).
    for i in [2usize, 3] {
        let fake = ConversationKeys::fake(&mut rng, &partners[i].secret, &partners[i].public);
        requests.push(ExchangeRequest {
            drop: fake.drop_id(round),
            sealed_message: fake.seal_message(round, &[0u8; MESSAGE_LEN]),
        });
    }

    let batch: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| onion::wrap(&mut rng, &pks, round, &r.encode()).0)
        .collect();
    let _ = chain.run_conversation_round(round, batch);
    let (_, obs) = chain.conversation_observables()[0];
    (obs.m1, obs.m2)
}
