//! Figure 7: ε′ and δ′ after k conversation rounds.
//!
//! Regenerates both panels of Figure 7 for the paper's three noise
//! configurations (µ = 150K/300K/450K with b = 7300/13800/20000,
//! d = 10⁻⁵), plus the maximum number of rounds each supports at the
//! ε′ = ln 2, δ′ = 10⁻⁴ target.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig7_conv_privacy`

use vuvuzela_bench::report::{write_json, Table};
use vuvuzela_dp::planner::{max_protected_rounds, privacy_series, PrivacyTarget};
use vuvuzela_dp::Protocol;

fn main() {
    let configs = [
        (150_000.0, 7_300.0),
        (300_000.0, 13_800.0),
        (450_000.0, 20_000.0),
    ];
    // The paper plots k from 10,000 to 1M on a log axis.
    let ks: Vec<u64> = (0..=20)
        .map(|i| (10_000.0 * (100.0f64).powf(f64::from(i) / 20.0)) as u64)
        .collect();

    let mut table = Table::new(&[
        "k",
        "e^eps' (mu=150K)",
        "delta' (150K)",
        "e^eps' (300K)",
        "delta' (300K)",
        "e^eps' (450K)",
        "delta' (450K)",
    ]);

    let series: Vec<_> = configs
        .iter()
        .map(|&(mu, b)| privacy_series(Protocol::Conversation, mu, b, &ks, 1e-5))
        .collect();

    for (i, &k) in ks.iter().enumerate() {
        let mut cells = vec![k.to_string()];
        for s in &series {
            cells.push(format!("{:.3}", s[i].e_epsilon));
            cells.push(format!("{:.2e}", s[i].delta));
        }
        table.row(&cells);
    }
    table.print("Figure 7: privacy vs number of conversation rounds (d = 1e-5)");

    let mut summary = Table::new(&["mu", "b", "max k @ (ln 2, 1e-4)", "paper claims"]);
    let paper_claims = [70_000u64, 250_000, 500_000];
    let mut json_rows = Vec::new();
    for (&(mu, b), &claim) in configs.iter().zip(paper_claims.iter()) {
        let k = max_protected_rounds(Protocol::Conversation, mu, b, PrivacyTarget::default());
        summary.row(&[
            format!("{mu:.0}"),
            format!("{b:.0}"),
            k.to_string(),
            format!("≈{claim}"),
        ]);
        json_rows.push(serde_json::json!({
            "mu": mu, "b": b, "max_rounds": k, "paper_rounds": claim,
        }));
    }
    summary.print("Rounds supported at ε' = ln 2, δ' = 1e-4 (paper §6.4)");

    write_json(
        "fig7_conv_privacy",
        &serde_json::json!({
            "ks": ks,
            "series": configs.iter().zip(series.iter()).map(|(&(mu, b), s)| {
                serde_json::json!({
                    "mu": mu, "b": b,
                    "points": s.iter().map(|p| serde_json::json!({
                        "k": p.k, "e_eps": p.e_epsilon, "delta": p.delta
                    })).collect::<Vec<_>>(),
                })
            }).collect::<Vec<_>>(),
            "summary": json_rows,
        }),
    );
}
