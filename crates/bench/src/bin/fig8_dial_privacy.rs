//! Figure 8: ε′ and δ′ after k dialing rounds.
//!
//! Regenerates Figure 8 for the paper's three dialing noise
//! configurations (µ = 8K/13K/20K). The paper prints "b=7700" for the
//! middle configuration — an evident typo for 770 (it matches neither
//! the stated coverage nor the µ:b ratio of its neighbours); we use 770
//! and record the discrepancy in EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig8_dial_privacy`

use vuvuzela_bench::report::{write_json, Table};
use vuvuzela_dp::planner::{max_protected_rounds, privacy_series, PrivacyTarget};
use vuvuzela_dp::Protocol;

fn main() {
    let configs = [(8_000.0, 500.0), (13_000.0, 770.0), (20_000.0, 1_130.0)];
    // The paper plots k from 1,000 to 16,000.
    let ks: Vec<u64> = (0..=16)
        .map(|i| (1_000.0 * (16.0f64).powf(f64::from(i) / 16.0)) as u64)
        .collect();

    let mut table = Table::new(&[
        "k",
        "e^eps' (mu=8K)",
        "delta' (8K)",
        "e^eps' (13K)",
        "delta' (13K)",
        "e^eps' (20K)",
        "delta' (20K)",
    ]);
    let series: Vec<_> = configs
        .iter()
        .map(|&(mu, b)| privacy_series(Protocol::Dialing, mu, b, &ks, 1e-5))
        .collect();
    for (i, &k) in ks.iter().enumerate() {
        let mut cells = vec![k.to_string()];
        for s in &series {
            cells.push(format!("{:.3}", s[i].e_epsilon));
            cells.push(format!("{:.2e}", s[i].delta));
        }
        table.row(&cells);
    }
    table.print("Figure 8: privacy vs number of dialing rounds (d = 1e-5)");

    let mut summary = Table::new(&["mu", "b", "max k @ (ln 2, 1e-4)", "paper claims"]);
    let paper_claims = [1_200u64, 3_500, 8_000];
    let mut json_rows = Vec::new();
    for (&(mu, b), &claim) in configs.iter().zip(paper_claims.iter()) {
        let k = max_protected_rounds(Protocol::Dialing, mu, b, PrivacyTarget::default());
        summary.row(&[
            format!("{mu:.0}"),
            format!("{b:.0}"),
            k.to_string(),
            format!("≈{claim}"),
        ]);
        json_rows.push(serde_json::json!({
            "mu": mu, "b": b, "max_rounds": k, "paper_rounds": claim,
        }));
    }
    summary.print("Dialing rounds supported at ε' = ln 2, δ' = 1e-4 (paper §6.5)");
    println!(
        "\nnote: a user taking 5 calls/day needs k = 1800 for one year of\n\
         protection (§6.5) — covered by the µ=13K configuration."
    );

    write_json(
        "fig8_dial_privacy",
        &serde_json::json!({
            "ks": ks,
            "series": configs.iter().zip(series.iter()).map(|(&(mu, b), s)| {
                serde_json::json!({
                    "mu": mu, "b": b,
                    "points": s.iter().map(|p| serde_json::json!({
                        "k": p.k, "e_eps": p.e_epsilon, "delta": p.delta
                    })).collect::<Vec<_>>(),
                })
            }).collect::<Vec<_>>(),
            "summary": json_rows,
        }),
    );
}
