//! Figure 9: conversation-round end-to-end latency vs online users.
//!
//! The paper sweeps 10 → 2M users at µ ∈ {100K, 200K, 300K} on 36-core
//! EC2 VMs. We run the identical protocol (same crypto, same noise
//! recipe) at 1:100 scale — µ ∈ {1K, 2K, 3K}, users 10 → 20K — measure
//! real end-to-end wall-clock per round, then extrapolate to paper scale
//! with the calibrated [`CostModel`] (the same §8.2 arithmetic the paper
//! uses for its own lower bound).
//!
//! Expected shape (the claim under test): latency is **linear in users**
//! with a **noise-dominated intercept** — the 10-user round costs almost
//! as much as the 10K-user round because cover traffic is constant.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin fig9_conv_latency`
//! (pass `--quick` for a reduced grid).

use std::time::Instant;
use vuvuzela_bench::report::{secs, write_json, Table};
use vuvuzela_bench::workload::conversation_batch;
use vuvuzela_bench::CostModel;
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

const SCALE: u64 = 100;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mus_scaled: Vec<f64> = vec![1_000.0, 2_000.0, 3_000.0];
    let users_scaled: Vec<u64> = if quick {
        vec![10, 2_500, 5_000]
    } else {
        vec![10, 2_500, 5_000, 10_000, 15_000, 20_000]
    };

    let model = CostModel::calibrate();
    println!(
        "calibration: {:.0} DH ops/s/core × {} cores (paper hardware: 340,000 ops/s total)",
        model.dh_ops_per_sec_core, model.cores
    );

    let mut table = Table::new(&[
        "users (x100)",
        "mu (x100)",
        "measured",
        "model",
        "overhead",
        "paper-scale est.",
    ]);
    let mut points = Vec::new();
    let mut overheads = Vec::new();

    for &mu in &mus_scaled {
        for &users in &users_scaled {
            let config = SystemConfig {
                chain_len: 3,
                conversation_noise: NoiseDistribution::new(mu, (mu / 20.0).max(1.0)),
                dialing_noise: NoiseDistribution::new(1.0, 1.0),
                noise_mode: NoiseMode::Deterministic, // as §8.1 does for graph clarity
                workers: vuvuzela_net::parallel::default_workers(),
                conversation_slots: 1,
                retransmit_after: 2,
                exchange_shards: 4,
            };
            let mut chain = Chain::new(config, 1);
            let pks = chain.server_public_keys();
            let batch = conversation_batch(users, 0, &pks, model.cores, users ^ mu as u64);

            let start = Instant::now();
            let (_replies, timing) = chain.run_conversation_round(0, batch);
            let measured = start.elapsed().as_secs_f64();

            // Pure-DH model time at our scale (overhead 1.0), to expose
            // the end-to-end overhead factor the paper reports as ≈2×.
            let dh_only = model
                .with_overhead(1.0)
                .predict_conversation_secs(users, mu, 3);
            let overhead = measured / dh_only;
            overheads.push(overhead);

            // Paper-scale estimate: same protocol on paper hardware at
            // 100× the size, using our measured overhead.
            let paper_est = CostModel::paper_hardware()
                .with_overhead(overhead)
                .predict_conversation_secs(users * SCALE, mu * SCALE as f64, 3);

            table.row(&[
                format!("{users}"),
                format!("{mu:.0}"),
                secs(measured),
                secs(dh_only),
                format!("{overhead:.2}x"),
                secs(paper_est),
            ]);
            points.push(serde_json::json!({
                "users_scaled": users, "mu_scaled": mu,
                "measured_secs": measured, "dh_model_secs": dh_only,
                "overhead": overhead, "paper_scale_est_secs": paper_est,
                "total_forward_secs": timing.forward.iter().map(|d| d.as_secs_f64()).sum::<f64>(),
            }));
        }
    }

    table.print("Figure 9 (1:100 scale): conversation latency vs online users");
    let mean_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!(
        "\nmean end-to-end overhead over pure DH cost: {mean_overhead:.2}x \
         (paper: \"within 2x of the inevitable cryptographic operations\")"
    );

    // Headline comparisons at paper scale.
    let paper = CostModel::paper_hardware().with_overhead(mean_overhead);
    let mut headline = Table::new(&["configuration", "paper reports", "our model"]);
    headline.row(&[
        "1M users, mu=300K".into(),
        "37 s".into(),
        secs(paper.predict_conversation_secs(1_000_000, 300_000.0, 3)),
    ]);
    headline.row(&[
        "2M users, mu=300K".into(),
        "55 s".into(),
        secs(paper.predict_conversation_secs(2_000_000, 300_000.0, 3)),
    ]);
    headline.row(&[
        "10 users, mu=300K (noise floor)".into(),
        "20 s".into(),
        secs(paper.predict_conversation_secs(10, 300_000.0, 3)),
    ]);
    headline.print("Paper-scale headline latencies");

    write_json(
        "fig9_conv_latency",
        &serde_json::json!({
            "scale": SCALE,
            "points": points,
            "mean_overhead": mean_overhead,
            "calibration_dh_ops_per_sec_core": model.dh_ops_per_sec_core,
        }),
    );
}
