//! Bandwidth table (§1, §8.2, §8.3 in-text numbers).
//!
//! Reproduces every bandwidth figure the paper quotes:
//!
//! * client conversation traffic: "each client sends and downloads a
//!   256-byte message per round" (plus onion overhead);
//! * invitation-drop download: "about 7 MB per round" → "an average of
//!   12 KB/sec" with 10-minute dialing rounds;
//! * server bandwidth: "with 1M users, servers use an average of
//!   166 MB/sec";
//! * aggregate CDN bandwidth: "12 GB/sec in aggregate" for 1M users.
//!
//! Method: run a small real deployment, read the byte meters, verify
//! they match the closed-form per-message sizes, then evaluate the
//! closed forms at paper scale.
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin tab_bandwidth`

use vuvuzela_bench::report::{write_json, Table};
use vuvuzela_bench::workload::{conversation_batch, dialing_batch};
use vuvuzela_core::{Chain, SystemConfig};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_net::meter::human_bytes;
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::{EXCHANGE_REQUEST_LEN, SEALED_INVITATION_LEN, SEALED_MESSAGE_LEN};

fn main() {
    // --- Small real deployment to validate the closed forms. ---
    let users: u64 = 500;
    let mu = 200.0;
    let config = SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(mu, 10.0),
        dialing_noise: NoiseDistribution::new(50.0, 5.0),
        noise_mode: NoiseMode::Deterministic,
        workers: vuvuzela_net::parallel::default_workers(),
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    };
    let mut chain = Chain::new(config, 1);
    let pks = chain.server_public_keys();

    let batch = conversation_batch(users, 0, &pks, 2, 9);
    let request_size = batch[0].len() as u64;
    let (replies, _) = chain.run_conversation_round(0, batch);
    let reply_size = replies[0].len() as u64;

    // Closed forms for a 3-server chain.
    let expected_request = (EXCHANGE_REQUEST_LEN + 3 * 48) as u64;
    let expected_reply = (SEALED_MESSAGE_LEN + 3 * 16) as u64;
    assert_eq!(request_size, expected_request, "request closed form");
    assert_eq!(reply_size, expected_reply, "reply closed form");

    let measured_client =
        chain.client_link().forward_meter().bytes() + chain.client_link().backward_meter().bytes();
    assert_eq!(
        measured_client,
        users * (request_size + reply_size),
        "client link meter matches closed form"
    );

    // Dialing: run a round and download one drop.
    let dial_batch = dialing_batch(users, 25, 1, 0, &pks, 2, 10);
    let _ = chain.run_dialing_round(0, dial_batch, 1);
    let drop = chain
        .download_drop(InvitationDropIndex(1))
        .expect("drop exists");
    let measured_drop_bytes = (drop.len() * SEALED_INVITATION_LEN) as u64;
    // 25 real + 3 servers × 50 noise.
    assert_eq!(drop.len(), 25 + 150, "drop size closed form");

    let mut validation = Table::new(&["quantity", "measured", "closed form"]);
    validation.row(&[
        "request size (3 hops)".into(),
        format!("{request_size} B"),
        format!("{expected_request} B"),
    ]);
    validation.row(&[
        "reply size (3 hops)".into(),
        format!("{reply_size} B"),
        format!("{expected_reply} B"),
    ]);
    validation.row(&[
        "drop download (µ=50×3 + 25 real)".into(),
        human_bytes(measured_drop_bytes as f64),
        human_bytes((175 * SEALED_INVITATION_LEN) as f64),
    ]);
    validation.print("Meter validation at small scale (3-server chain)");

    // --- Paper scale (1M users, µ=300K, µ_dial=13K, 5% dialing). ---
    let n_users = 1_000_000f64;
    let conv_round_secs = 37.0; // paper's measured latency at 1M users
    let dial_round_secs = 600.0; // 10-minute dialing rounds

    // Client conversation bytes/round: one request up, one reply down.
    let client_conv = (expected_request + expected_reply) as f64;
    // Invitation drop: µ=13K × 3 servers noise + 50K real invitations
    // (1M × 5%) in m=1 drop... the paper's example uses m s.t. each user
    // downloads ~one drop of 39K noise + 50K real ⇒ ~7 MB.
    let drop_invitations = 3.0 * 13_000.0 + 0.05 * n_users;
    let drop_bytes = drop_invitations * SEALED_INVITATION_LEN as f64;
    let client_dial_rate = drop_bytes / dial_round_secs;

    // Server bytes per conversation round: each link carries
    // (users + accumulated noise) requests + equal replies; count both
    // directions across links entry→s0, s0→s1, s1→s2 like our meters do.
    let mu_paper = 300_000.0;
    let mut server_bytes_round = 0.0;
    for hop in 0..3u32 {
        let requests = n_users + 2.0 * mu_paper * f64::from(hop);
        let request_bytes = (EXCHANGE_REQUEST_LEN + (3 - hop as usize) * 48) as f64;
        let reply_bytes = (SEALED_MESSAGE_LEN + (3 - hop as usize) * 16) as f64;
        server_bytes_round += requests * (request_bytes + reply_bytes);
    }
    let server_rate = server_bytes_round / conv_round_secs;

    let mut paper_table = Table::new(&["quantity", "paper reports", "our closed form"]);
    paper_table.row(&[
        "client conversation traffic".into(),
        "~256 B msg/round (negligible)".into(),
        format!("{} /round", human_bytes(client_conv)),
    ]);
    paper_table.row(&[
        "invitation drop size".into(),
        "about 7 MB".into(),
        human_bytes(drop_bytes),
    ]);
    paper_table.row(&[
        "client dialing download".into(),
        "12 KB/sec".into(),
        format!("{}/sec", human_bytes(client_dial_rate)),
    ]);
    paper_table.row(&[
        "server bandwidth @1M users".into(),
        "166 MB/sec".into(),
        format!("{}/sec", human_bytes(server_rate)),
    ]);
    paper_table.row(&[
        "aggregate CDN bandwidth".into(),
        "12 GB/sec".into(),
        format!("{}/sec", human_bytes(client_dial_rate * n_users)),
    ]);
    paper_table.row(&[
        "client monthly total".into(),
        "30 GB/month".into(),
        format!(
            "{}/month",
            human_bytes(client_dial_rate * 3600.0 * 24.0 * 30.0)
        ),
    ]);
    paper_table.print("Paper-scale bandwidth (1M users, µ=300K, µ_dial=13K, 5% dialing)");
    println!(
        "\nnote: the server figure is wire-level payload bytes (sum over links,\n\
         both directions / 37 s). The paper's 166 MB/s is a NIC measurement\n\
         including \"RPC and encoding overhead\" — ≈2× the raw payload, the\n\
         same ≈2× overhead factor it reports for CPU (§8.2)."
    );

    write_json(
        "tab_bandwidth",
        &serde_json::json!({
            "request_bytes_3hops": expected_request,
            "reply_bytes_3hops": expected_reply,
            "drop_bytes_paper_scale": drop_bytes,
            "client_dial_rate_bytes_per_sec": client_dial_rate,
            "server_rate_bytes_per_sec": server_rate,
            "paper": {
                "drop_bytes": 7e6, "client_dial_rate": 12e3, "server_rate": 166e6
            }
        }),
    );
}
