//! Throughput table (§1, §8.2 headline numbers) and the baseline
//! comparison.
//!
//! * "a throughput of 68,000 messages per second for 1 million users
//!   with a 37-second end-to-end latency";
//! * 2M users → 84,000 msgs/sec at 55 s;
//! * the §8.2 lower bound: ≈28 s at 2M users from DH arithmetic alone;
//! * Vuvuzela's O(n) total bytes against the Dissent-style broadcast
//!   baseline's O(n²), locating the crossover that caps broadcast
//!   systems at a few thousand users (§1: "100× higher than prior
//!   systems").
//!
//! Run: `cargo run --release -p vuvuzela-bench --bin tab_throughput`

use vuvuzela_baseline::broadcast;
use vuvuzela_bench::report::{secs, write_json, Table};
use vuvuzela_bench::CostModel;
use vuvuzela_net::meter::human_bytes;
use vuvuzela_wire::{EXCHANGE_REQUEST_LEN, SEALED_MESSAGE_LEN};

fn main() {
    let local = CostModel::calibrate();
    let paper = CostModel::paper_hardware(); // 340K DH ops/s, overhead 2×

    let mut headline = Table::new(&[
        "metric",
        "paper reports",
        "model (paper hw)",
        "model (this host)",
    ]);
    let rows: Vec<(&str, &str, f64, f64)> = vec![
        (
            "latency @1M users",
            "37 s",
            paper.predict_conversation_secs(1_000_000, 300_000.0, 3),
            local.predict_conversation_secs(1_000_000, 300_000.0, 3),
        ),
        (
            "latency @2M users",
            "55 s",
            paper.predict_conversation_secs(2_000_000, 300_000.0, 3),
            local.predict_conversation_secs(2_000_000, 300_000.0, 3),
        ),
        (
            "latency @10 users (noise floor)",
            "20 s",
            paper.predict_conversation_secs(10, 300_000.0, 3),
            local.predict_conversation_secs(10, 300_000.0, 3),
        ),
    ];
    let mut json_rows = Vec::new();
    for (name, claim, hw, host) in rows {
        headline.row(&[name.into(), claim.into(), secs(hw), secs(host)]);
        json_rows.push(serde_json::json!({
            "metric": name, "paper": claim, "paper_hw_secs": hw, "this_host_secs": host,
        }));
    }
    headline.print("Headline latencies (overhead 2x, as the paper observes)");

    let mut tp = Table::new(&["users", "paper msgs/sec", "model msgs/sec"]);
    tp.row(&[
        "1M".into(),
        "68,000".into(),
        format!(
            "{:.0}",
            paper.throughput_msgs_per_sec(1_000_000, 300_000.0, 3)
        ),
    ]);
    tp.row(&[
        "2M".into(),
        "84,000".into(),
        format!(
            "{:.0}",
            paper.throughput_msgs_per_sec(2_000_000, 300_000.0, 3)
        ),
    ]);
    tp.print("Conversation throughput");

    // §8.2 lower bound.
    println!(
        "\n§8.2 DH lower bound @2M users: paper ≈28 s, our arithmetic {} \
         (3.2M msgs × 3 servers / 340K ops/s)",
        secs(paper.paper_lower_bound_secs(2_000_000, 300_000.0, 3))
    );

    // --- Vuvuzela O(n) vs broadcast O(n²) total bytes per round. ---
    let vuvuzela_bytes = |n: u64| -> u64 {
        let mut total = 0u64;
        for hop in 0..3u64 {
            let requests = n + 2 * 300_000 * hop;
            let request_bytes = (EXCHANGE_REQUEST_LEN + (3 - hop as usize) * 48) as u64;
            let reply_bytes = (SEALED_MESSAGE_LEN + (3 - hop as usize) * 16) as u64;
            total += requests * (request_bytes + reply_bytes);
        }
        total
    };

    let mut scaling = Table::new(&[
        "users",
        "Vuvuzela bytes/round (O(n))",
        "broadcast bytes/round (O(n^2))",
        "winner",
    ]);
    let mut crossover: Option<u64> = None;
    let mut scaling_json = Vec::new();
    for exp in 1..=7u32 {
        let n = 10u64.pow(exp);
        let v = vuvuzela_bytes(n);
        let b = broadcast::bytes_per_round(n);
        if b > v && crossover.is_none() {
            crossover = Some(n);
        }
        scaling.row(&[
            n.to_string(),
            human_bytes(v as f64),
            human_bytes(b as f64),
            if v <= b {
                "Vuvuzela".into()
            } else {
                "broadcast".into()
            },
        ]);
        scaling_json.push(serde_json::json!({
            "users": n, "vuvuzela_bytes": v, "broadcast_bytes": b,
        }));
    }
    scaling.print("Total bytes per round: Vuvuzela vs Dissent-style broadcast");
    if let Some(n) = crossover {
        println!(
            "\ncrossover ≤ {n} users: beyond it broadcast loses and keeps losing \
             quadratically — why prior systems stop at ~5,000 users (§1) while \
             Vuvuzela reaches 2M (\"about 100× higher\")."
        );
    }

    write_json(
        "tab_throughput",
        &serde_json::json!({
            "headlines": json_rows,
            "scaling": scaling_json,
            "crossover_users": crossover,
            "local_dh_ops_per_sec_core": local.dh_ops_per_sec_core,
        }),
    );
}
