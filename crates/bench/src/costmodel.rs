//! Calibrated cost model for paper-scale extrapolation.
//!
//! §8.2 of the paper derives a latency lower bound from first principles:
//! "with two million users, each server must perform one Diffie-Hellman
//! operation for each of the 3.2 million messages … the best-case
//! end-to-end conversation round latency would be
//! (3.2·10⁶ × 3)/(3.4·10⁵) ≈ 28 seconds", and reports the full system
//! "within 2× of the cost of the inevitable cryptographic operations".
//!
//! [`CostModel`] reproduces exactly that arithmetic with *our* measured
//! X25519 throughput, plus a finer per-stage count that also bills the
//! noise-wrapping DH work. The figure binaries calibrate the model's
//! overhead factor against real scaled rounds and then extrapolate.

use std::time::Instant;
use vuvuzela_crypto::x25519;

/// A machine's cryptographic capability for Vuvuzela purposes.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// X25519 operations per second on one core.
    pub dh_ops_per_sec_core: f64,
    /// Cores assumed per server.
    pub cores: usize,
    /// Multiplier for everything that is not DH (serialization, AEAD,
    /// shuffling, allocation). The paper observes ≈2× end to end;
    /// calibrate with [`CostModel::with_overhead`] against measured
    /// rounds.
    pub overhead: f64,
}

impl CostModel {
    /// Measures this machine's single-core X25519 throughput.
    #[must_use]
    pub fn calibrate() -> CostModel {
        let scalar = [7u8; 32];
        let mut u = [9u8; 32];
        for _ in 0..20 {
            u = x25519::x25519(&scalar, &u);
        }
        let iterations = 300u32;
        let start = Instant::now();
        for _ in 0..iterations {
            u = x25519::x25519(&scalar, &u);
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(u);
        CostModel {
            dh_ops_per_sec_core: f64::from(iterations) / elapsed,
            cores: vuvuzela_net::parallel::default_workers(),
            overhead: 2.0, // paper's observed factor until calibrated
        }
    }

    /// The paper's reference hardware: 340,000 DH ops/sec on a 36-core
    /// c4.8xlarge (§8.2).
    #[must_use]
    pub fn paper_hardware() -> CostModel {
        CostModel {
            dh_ops_per_sec_core: 340_000.0 / 36.0,
            cores: 36,
            overhead: 2.0,
        }
    }

    /// Returns the model with a different overhead factor.
    #[must_use]
    pub fn with_overhead(self, overhead: f64) -> CostModel {
        CostModel { overhead, ..self }
    }

    /// Total DH throughput of one server.
    #[must_use]
    pub fn dh_ops_per_sec(&self) -> f64 {
        self.dh_ops_per_sec_core * self.cores as f64
    }

    /// Messages reaching the last server in a conversation round:
    /// `users + 2µ·(servers − 1)` (§8.2's "3.2 million messages").
    #[must_use]
    pub fn round_messages(users: u64, mu: f64, servers: usize) -> f64 {
        users as f64 + 2.0 * mu * (servers.saturating_sub(1)) as f64
    }

    /// The paper's §8.2 lower-bound arithmetic: every server performs one
    /// DH per message of the round, servers run strictly in sequence.
    #[must_use]
    pub fn paper_lower_bound_secs(&self, users: u64, mu: f64, servers: usize) -> f64 {
        Self::round_messages(users, mu, servers) * servers as f64 / self.dh_ops_per_sec()
    }

    /// Detailed DH count across the whole chain for one conversation
    /// round, including the wrapping of noise onions that the paper's
    /// coarse bound folds into its "one op per message":
    ///
    /// * server `i` peels `users + 2µ·i` onions,
    /// * server `i < n−1` wraps `2µ` noise onions with `n−1−i` layers.
    #[must_use]
    pub fn conversation_dh_ops(users: u64, mu: f64, servers: usize) -> f64 {
        let n = servers;
        let mut ops = 0.0;
        for i in 0..n {
            ops += users as f64 + 2.0 * mu * i as f64; // peels
            if i + 1 < n {
                ops += 2.0 * mu * (n - 1 - i) as f64; // noise wraps
            }
        }
        ops
    }

    /// Predicted end-to-end conversation latency: detailed DH work,
    /// sequential servers, times the overhead factor.
    #[must_use]
    pub fn predict_conversation_secs(&self, users: u64, mu: f64, servers: usize) -> f64 {
        Self::conversation_dh_ops(users, mu, servers) / self.dh_ops_per_sec() * self.overhead
    }

    /// Predicted dialing-round latency: each server peels
    /// `users + m·µ·i` invitations and wraps `m·µ` noise each
    /// (`m` = drops).
    #[must_use]
    pub fn predict_dialing_secs(&self, users: u64, mu: f64, drops: u32, servers: usize) -> f64 {
        let per_server_noise = f64::from(drops) * mu;
        let n = servers;
        let mut ops = 0.0;
        for i in 0..n {
            ops += users as f64 + per_server_noise * i as f64;
            if i + 1 < n {
                ops += per_server_noise * (n - 1 - i) as f64;
            }
        }
        ops / self.dh_ops_per_sec() * self.overhead
    }

    /// Messages per second at a given scale (§1's "68,000 messages per
    /// second for 1 million users").
    ///
    /// The paper's counting is reverse-engineered from its two data
    /// points: `(2·users + 2µ) / latency` reproduces both 68,000 msgs/s
    /// (1M users, 37 s) and 84,000 msgs/s (2M users, 55 s) to within 3%
    /// — each user both sends and receives a message per round, plus one
    /// server's worth of noise requests.
    #[must_use]
    pub fn throughput_msgs_per_sec(&self, users: u64, mu: f64, servers: usize) -> f64 {
        (2.0 * users as f64 + 2.0 * mu) / self.predict_conversation_secs(users, mu, servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lower_bound_reproduces_28_seconds() {
        // §8.2: 2M users, µ=300K, 3 servers, 340K ops/sec → ≈28 s.
        let model = CostModel::paper_hardware();
        let bound = model.paper_lower_bound_secs(2_000_000, 300_000.0, 3);
        assert!(
            (bound - 28.2).abs() < 0.5,
            "lower bound {bound} should be ≈28 s"
        );
    }

    #[test]
    fn round_messages_match_paper() {
        // "we get 3.2 million messages" at 2M users;
        // "1.2 million requests when there are no users".
        assert_eq!(
            CostModel::round_messages(2_000_000, 300_000.0, 3),
            3_200_000.0
        );
        assert_eq!(CostModel::round_messages(0, 300_000.0, 3), 1_200_000.0);
    }

    #[test]
    fn paper_scale_prediction_brackets_measured_37s() {
        // The paper measured 37 s at 1M users (within 2× of the 22 s
        // lower bound there). With the ≈2× overhead our prediction
        // should land in the right decade.
        let model = CostModel::paper_hardware();
        let secs = model.predict_conversation_secs(1_000_000, 300_000.0, 3);
        assert!(
            (20.0..=60.0).contains(&secs),
            "predicted {secs}s should bracket the measured 37 s"
        );
    }

    #[test]
    fn latency_is_linear_in_users() {
        let model = CostModel::paper_hardware();
        let at_1m = model.predict_conversation_secs(1_000_000, 300_000.0, 3);
        let at_2m = model.predict_conversation_secs(2_000_000, 300_000.0, 3);
        let marginal = at_2m - at_1m;
        let per_user = marginal / 1_000_000.0;
        // Marginal cost per added user ≈ servers × overhead / rate.
        let want = 3.0 * 2.0 / model.dh_ops_per_sec();
        assert!((per_user - want).abs() / want < 1e-9);
    }

    #[test]
    fn chain_scaling_is_superlinear() {
        // Figure 11: roughly quadratic in servers (O(s²) work).
        let model = CostModel::paper_hardware();
        let at_2 = model.predict_conversation_secs(1_000_000, 300_000.0, 2);
        let at_4 = model.predict_conversation_secs(1_000_000, 300_000.0, 4);
        let at_6 = model.predict_conversation_secs(1_000_000, 300_000.0, 6);
        assert!(at_4 / at_2 > 1.8, "4 vs 2 servers: {}", at_4 / at_2);
        assert!(at_6 / at_2 > 3.0, "6 vs 2 servers: {}", at_6 / at_2);
    }

    #[test]
    fn throughput_reproduces_headline_numbers() {
        // §1: 68,000 msgs/s at 1M users; §8.2: 84,000 msgs/s at 2M.
        let model = CostModel::paper_hardware();
        let at_1m = model.throughput_msgs_per_sec(1_000_000, 300_000.0, 3);
        let at_2m = model.throughput_msgs_per_sec(2_000_000, 300_000.0, 3);
        assert!((55_000.0..=80_000.0).contains(&at_1m), "1M: {at_1m}");
        assert!((70_000.0..=95_000.0).contains(&at_2m), "2M: {at_2m}");
    }

    #[test]
    fn calibration_measures_something_sane() {
        let model = CostModel::calibrate();
        assert!(
            model.dh_ops_per_sec_core > 100.0,
            "implausibly slow: {} ops/s",
            model.dh_ops_per_sec_core
        );
    }
}
