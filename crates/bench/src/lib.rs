//! Shared machinery for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§8); see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results. This library provides:
//!
//! * [`costmodel`] — a calibrated Diffie-Hellman cost model implementing
//!   the paper's own §8.2 arithmetic, used to extrapolate laptop-scale
//!   measurements to the paper's 36-core/EC2 scale;
//! * [`report`] — table printing and JSON dumping so every run leaves a
//!   machine-readable artefact under `bench_results/`;
//! * [`workload`] — synthetic client-batch generators shared by the
//!   latency sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costmodel;
pub mod report;
pub mod workload;

pub use costmodel::CostModel;
