//! Shared machinery for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§8); see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results. This library provides:
//!
//! * [`costmodel`] — a calibrated Diffie-Hellman cost model implementing
//!   the paper's own §8.2 arithmetic, used to extrapolate laptop-scale
//!   measurements to the paper's 36-core/EC2 scale;
//! * [`report`] — table printing and JSON dumping so every run leaves a
//!   machine-readable artefact under `bench_results/`;
//! * [`workload`] — synthetic client-batch generators shared by the
//!   latency sweeps.
//!
//! # Round-pipeline benchmark methodology
//!
//! The zero-copy refactor is measured two ways, both at **10,000 onions,
//! chain length 3**:
//!
//! * `benches/round.rs` (`cargo bench -p vuvuzela-bench --bench round`)
//!   — criterion timings of the first (noising) server's forward pass,
//!   `forward_pass/flat_10k` vs `forward_pass/per_vec_reference_10k`;
//! * `src/bin/bench_round_pipeline.rs` (`cargo run --release -p
//!   vuvuzela-bench --bin bench_round_pipeline`) — the committed
//!   machine-readable artefact `BENCH_round_pipeline.json` at the repo
//!   root: onions/sec and allocations/onion for both paths (allocation
//!   counts via a counting global allocator), best of three passes, with
//!   a byte-identity assertion between the paths before any timing.
//!
//! Shared choices, and why:
//!
//! * **the reference path is the seed implementation**, preserved as
//!   `MixServer::forward_reference` (allocating peel, per-`Vec` noise
//!   with ladder keygen and ladder DH, shuffle by cloning). It consumes
//!   the server RNG identically to the flat path, so its outputs are
//!   asserted byte-identical — the comparison isolates implementation
//!   cost, not behaviour;
//! * **µ = 5,000 deterministic** — the paper's µ = 300,000 (§8.1) scaled
//!   1:60. µ is a fixed privacy parameter (it does *not* shrink with the
//!   user count), which is why cover traffic dominates server cost at
//!   small scale (§8.2); cover ≈ 1× real traffic here is the modest end
//!   of that regime;
//! * **the noising hop is the headline number** because it carries every
//!   cost the refactor targets (peel + noise generation + shuffle); the
//!   full three-hop pass is also reported — later hops are peel-bound
//!   (variable-base DH, which no precomputation can accelerate), so its
//!   ratio is structurally lower.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costmodel;
pub mod peelstage;
pub mod report;
pub mod workload;

pub use costmodel::CostModel;
