//! Isolated peel-stage micro-benchmark, shared by
//! `bench_round_pipeline` and `bench_streaming_chain`.
//!
//! Times one server peeling a fixed arena of single-layer onions
//! through up to three implementations over identical input bytes:
//!
//! * **per-slot** (`onion::peel_in_place` per onion): the seed-era
//!   reference — one scalar ladder *and one full field inversion* per
//!   onion;
//! * **chunk reference** (`onion::peel_chunk_in_place_reference`): the
//!   PR 2/PR 3 committed hot path — scalar ladders, inversions batched
//!   across each chunk;
//! * **batched** (`onion::peel_chunk_in_place`): the 4-wide
//!   [`vuvuzela_crypto::fe4::Fe4`] Montgomery ladder plus the same
//!   batched inversions — what every mix hop runs per worker chunk.
//!
//! All paths are asserted byte-identical before any timing; best-of-N
//! wall-clock is reported. `speedup_peel_batched` (batched ÷ chunk
//! reference) prices the 4-wide ladder against the previously committed
//! implementation and rides the `bench_diff` regression gate;
//! `speedup_peel_vs_per_slot` prices the whole batching stack against
//! the seed path.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::Keypair;

/// Payload size wrapped into each benchmark onion (a realistic
/// conversation-message scale; the exact value only shifts the AEAD
/// share of the timings).
const PAYLOAD_LEN: usize = 240;

/// Runs the peel-stage comparison over `onions` onions, best of
/// `iterations` passes per implementation. When `include_per_slot` is
/// false the seed-era per-slot pass (the slowest) is skipped and the
/// JSON omits its metrics — the compact form the streaming smoke uses.
///
/// # Panics
///
/// Panics if the three implementations disagree on any output byte,
/// layer key, or error classification — a correctness gate, not a
/// benchmark condition.
#[must_use]
pub fn run(onions: usize, iterations: usize, include_per_slot: bool) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(4242);
    let server = Keypair::generate(&mut rng);
    let payload = vec![0u8; PAYLOAD_LEN];
    let width = onion::wrapped_len(payload.len(), 1);
    let stride = width;
    let round = 1u64;
    println!("\npeel stage: wrapping {onions} single-layer onions ({width}B)...");
    let mut arena = vec![0u8; onions * stride];
    for i in 0..onions {
        let (o, _) = onion::wrap(&mut rng, &[server.public], round, &payload);
        arena[i * stride..(i + 1) * stride].copy_from_slice(&o);
    }

    // Correctness gate: all peel paths must agree bytewise before
    // timing (the per-slot path is checked even when not timed).
    let mut a_batched = arena.clone();
    let mut a_reference = arena.clone();
    let mut a_per_slot = arena.clone();
    let r_batched = onion::peel_chunk_in_place(
        &server.secret,
        &server.public,
        round,
        &mut a_batched,
        stride,
        width,
    );
    let r_reference = onion::peel_chunk_in_place_reference(
        &server.secret,
        &server.public,
        round,
        &mut a_reference,
        stride,
        width,
    );
    assert_eq!(a_batched, a_reference, "ladder modes diverged");
    for (i, (a, b)) in r_batched.iter().zip(&r_reference).enumerate() {
        let (ka, la) = a.as_ref().expect("valid onion");
        let (kb, lb) = b.as_ref().expect("valid onion");
        assert_eq!((ka.0, la), (kb.0, lb), "slot {i}");
        let slot = &mut a_per_slot[i * stride..(i + 1) * stride];
        let (kc, lc) = onion::peel_in_place(&server.secret, &server.public, round, slot, width)
            .expect("valid onion");
        assert_eq!((ka.0, *la), (kc.0, lc), "slot {i} vs per-slot");
    }
    println!("peel outputs byte-identical across all paths");

    // The variants are timed *interleaved* — each iteration measures
    // every implementation once, back to back — so a load spike on a
    // shared box degrades all of them in the same window instead of
    // silently biasing the ratio; best-of-N then discards the noisy
    // windows entirely.
    let time = |peel: &dyn Fn(&mut [u8])| -> f64 {
        let mut a = arena.clone();
        let start = Instant::now();
        peel(&mut a);
        start.elapsed().as_secs_f64()
    };
    let mut best = [f64::INFINITY; 3];
    for _ in 0..iterations {
        best[0] = best[0].min(time(&|a| {
            let _ = onion::peel_chunk_in_place_reference(
                &server.secret,
                &server.public,
                round,
                a,
                stride,
                width,
            );
        }));
        best[1] = best[1].min(time(&|a| {
            let _ =
                onion::peel_chunk_in_place(&server.secret, &server.public, round, a, stride, width);
        }));
        if include_per_slot {
            best[2] = best[2].min(time(&|a| {
                for i in 0..onions {
                    let _ = onion::peel_in_place(
                        &server.secret,
                        &server.public,
                        round,
                        &mut a[i * stride..(i + 1) * stride],
                        width,
                    );
                }
            }));
        }
    }
    let reference = onions as f64 / best[0];
    let batched = onions as f64 / best[1];

    if include_per_slot {
        let per_slot = onions as f64 / best[2];
        println!(
            "peel: per-slot {per_slot:>8.0} onions/s   chunk-ref {reference:>8.0} onions/s   \
             batched {batched:>8.0} onions/s"
        );
        println!(
            "peel speedups: batched vs chunk-ref {:.2}x, vs per-slot {:.2}x",
            batched / reference,
            batched / per_slot
        );
        serde_json::json!({
            "onions": onions,
            "layer_width_bytes": width,
            "iterations": iterations,
            "per_slot_onions_per_sec": per_slot,
            "chunk_reference_onions_per_sec": reference,
            "batched_onions_per_sec": batched,
            "speedup_peel_batched": batched / reference,
            "speedup_peel_vs_per_slot": batched / per_slot,
        })
    } else {
        println!(
            "peel ({onions} onions): chunk-ref {reference:.0}/s, batched {batched:.0}/s ({:.2}x)",
            batched / reference
        );
        serde_json::json!({
            "onions": onions,
            "layer_width_bytes": width,
            "iterations": iterations,
            "chunk_reference_onions_per_sec": reference,
            "batched_onions_per_sec": batched,
            "speedup_peel_batched": batched / reference,
        })
    }
}
