//! Table printing, JSON artefacts, and shared timing helpers for the
//! figure/bench binaries.

use std::io::Write as _;
use std::path::PathBuf;
use vuvuzela_core::chain::RoundTiming;

/// A simple fixed-width table printer for figure/table output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout under a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Writes a JSON artefact to `bench_results/<name>.json` (relative to the
/// workspace root when run via cargo, else the current directory).
///
/// # Panics
///
/// Panics if the directory or file cannot be written — the harness treats
/// unrecordable results as a hard failure.
pub fn write_json(name: &str, value: &serde_json::Value) -> PathBuf {
    let dir = workspace_root().join("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path).expect("create artefact file");
    file.write_all(
        serde_json::to_string_pretty(value)
            .expect("serialize")
            .as_bytes(),
    )
    .expect("write artefact");
    println!("[artefact] {}", path.display());
    path
}

/// The workspace root (resolved via `CARGO_MANIFEST_DIR` when run via
/// cargo, else the current directory) — where the committed `BENCH_*`
/// artefacts live.
#[must_use]
pub fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Per-stage busy time implied by one round's timings: forward pass,
/// plus the matching backward pass where one exists (`timing.backward`
/// is recorded last-server first and stays empty for forward-only
/// dialing rounds), plus the tail's exchange/deposit. This is the input
/// to the sustained-pipeline model the bench artefacts report — one
/// shared definition so every artefact derives its speedup from the
/// same formula.
#[must_use]
pub fn stage_busy_secs(timing: &RoundTiming) -> Vec<f64> {
    let n = timing.forward.len();
    (0..n)
        .map(|i| {
            let mut busy = timing.forward[i].as_secs_f64();
            if let Some(b) = timing.backward.get(n - 1 - i) {
                busy += b.as_secs_f64();
            }
            if i == n - 1 {
                busy += timing.exchange.as_secs_f64();
            }
            busy
        })
        .collect()
}

/// Formats seconds the way the paper's figures label them.
#[must_use]
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.0} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["users", "latency"]);
        t.row(&["10".into(), "20 s".into()]);
        t.row(&["2000000".into(), "55 s".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("users"));
        assert!(lines[3].contains("2000000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(37.0), "37.0 s");
        assert_eq!(secs(0.5), "500 ms");
    }
}
