//! Synthetic client workloads for the latency sweeps.
//!
//! §8.1: "Every simulated user sends a message each conversation round to
//! another user (although Vuvuzela's performance is the same regardless
//! of whether users are actively communicating or are idle)." We generate
//! user request batches the same way: paired users exchanging on shared
//! dead drops, onion-wrapped in parallel.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use vuvuzela_core::noise::wrap_payloads_precomputed;
use vuvuzela_crypto::x25519::PublicKey;
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::deaddrop::{DeadDropId, InvitationDropIndex};
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};

/// Builds a conversation-round batch for `users` clients: consecutive
/// pairs share a dead drop (everyone is talking, as in §8.1), with an
/// odd user left lone. Returns onions ready for the chain.
#[must_use]
pub fn conversation_batch(
    users: u64,
    round: u64,
    server_pks: &[PublicKey],
    workers: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut payloads = Vec::with_capacity(users as usize);
    let mut pair_drop = DeadDropId([0u8; 16]);
    for i in 0..users {
        if i % 2 == 0 {
            pair_drop = DeadDropId::random(&mut rng);
        }
        let mut request = ExchangeRequest::noise(&mut rng);
        request.drop = pair_drop;
        payloads.push(request.encode());
    }
    wrap_payloads_precomputed(&mut rng, payloads, server_pks, round, workers)
}

/// Builds a dialing-round batch: `dialers` real invitations spread over
/// `num_drops` drops, the rest no-ops (§8.1 uses 5% dialers).
#[must_use]
pub fn dialing_batch(
    users: u64,
    dialers: u64,
    num_drops: u32,
    round: u64,
    server_pks: &[PublicKey],
    workers: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    assert!(dialers <= users);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut payloads = Vec::with_capacity(users as usize);
    for i in 0..users {
        let request = if i < dialers {
            // A random-byte "invitation" is indistinguishable from a real
            // sealed one and costs the same everywhere.
            DialRequest {
                drop: InvitationDropIndex(1 + (i % u64::from(num_drops)) as u32),
                invitation: SealedInvitation::noise(&mut rng),
            }
        } else {
            DialRequest::noop(&mut rng)
        };
        payloads.push(request.encode());
    }
    wrap_payloads_precomputed(&mut rng, payloads, server_pks, round, workers)
}

/// A deterministic jumble of bytes for adversarial-input fuzzing.
#[must_use]
pub fn garbage_batch(count: usize, max_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let len = i * 7919 % (max_len + 1);
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            bytes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_crypto::x25519::Keypair;

    fn pks(n: usize) -> Vec<PublicKey> {
        let mut rng = StdRng::seed_from_u64(0);
        (0..n).map(|_| Keypair::generate(&mut rng).public).collect()
    }

    #[test]
    fn conversation_batch_pairs_users() {
        // Without wrapping (empty chain) we can inspect the payloads.
        let batch = conversation_batch(6, 0, &[], 1, 1);
        let drops: Vec<DeadDropId> = batch
            .iter()
            .map(|b| ExchangeRequest::decode(b).expect("valid").drop)
            .collect();
        assert_eq!(drops[0], drops[1]);
        assert_eq!(drops[2], drops[3]);
        assert_eq!(drops[4], drops[5]);
        assert_ne!(drops[0], drops[2]);
    }

    #[test]
    fn odd_user_is_lone() {
        let batch = conversation_batch(3, 0, &[], 1, 2);
        let drops: Vec<DeadDropId> = batch
            .iter()
            .map(|b| ExchangeRequest::decode(b).expect("valid").drop)
            .collect();
        assert_eq!(drops[0], drops[1]);
        assert_ne!(drops[2], drops[0]);
    }

    #[test]
    fn wrapped_batch_has_uniform_size() {
        let server_pks = pks(3);
        let batch = conversation_batch(4, 0, &server_pks, 2, 3);
        let sizes: std::collections::HashSet<usize> = batch.iter().map(Vec::len).collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn dialing_batch_mixes_real_and_noop() {
        let batch = dialing_batch(10, 2, 4, 0, &[], 1, 4);
        let mut real = 0;
        let mut noop = 0;
        for b in &batch {
            let request = DialRequest::decode(b).expect("valid");
            if request.drop.is_noop() {
                noop += 1;
            } else {
                real += 1;
            }
        }
        assert_eq!((real, noop), (2, 8));
    }

    #[test]
    fn garbage_is_varied() {
        let batch = garbage_batch(10, 100, 5);
        let lens: std::collections::HashSet<usize> = batch.iter().map(Vec::len).collect();
        assert!(lens.len() > 3);
    }
}
