//! A complete Vuvuzela deployment: entry, chain, links, dead drops.
//!
//! [`Chain`] wires the [`crate::server::MixServer`]s together with
//! byte-metered, tappable [`vuvuzela_net::Link`]s and drives whole rounds
//! synchronously — mirroring the paper's observation that "one server
//! cannot start processing a round until the previous server finishes"
//! (§8.2), which makes end-to-end latency the sum of per-hop processing.
//! [`crate::pipeline::StreamingChain`] lifts exactly that restriction
//! for *throughput* (hops overlap across in-flight rounds) while
//! producing byte-identical per-round results; the synchronous chain
//! stays as the reference path it is verified against.
//!
//! All of a round's harness-level randomness (noise substitutes for
//! undecodable exchange payloads, the dead-drop store's coin flips) is
//! drawn from a per-round RNG derived from the chain seed, so the two
//! schedulers agree no matter how rounds interleave.

use crate::config::SystemConfig;
use crate::deaddrops::{ConversationDrops, InvitationDrops};
use crate::observables::{ConversationObservables, DialingObservables};
use crate::roundbuf::RoundBuffer;
use crate::server::{round_rng, MixServer, RoundKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_net::link::{Direction, Link};
use vuvuzela_net::LinkId;
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};

/// Domain separator distinguishing the chain-level per-round RNG (drop
/// exchange, undecodable-payload substitutes) from the servers' own.
pub(crate) const CHAIN_RNG_DOMAIN: u64 = 0x5EED_C4A1_4000_0000;

/// Moves a flat round buffer across a link: meters it, and only pays the
/// per-message conversion when an adversary tap is actually attached
/// (taps see and mutate `Vec<Vec<u8>>` batches, as the threat model's
/// "monitor, block, delay, or inject" interface always has).
///
/// Returns the buffer that arrives at the far end plus the number of
/// entries the tap resized: those can no longer be valid onions, so the
/// rebuild zero-fills their slots (downstream peeling replaces them with
/// noise) and the count is surfaced on [`Chain::tap_resized`].
pub(crate) fn transmit_buf(
    link: &Link,
    round: u64,
    direction: Direction,
    buf: RoundBuffer,
) -> (RoundBuffer, u64) {
    link.record(
        round,
        direction,
        buf.len() as u64,
        (buf.len() * buf.width()) as u64,
    );
    if !link.has_tap() {
        return (buf, 0);
    }
    let mut batch = buf.to_vecs();
    link.tap_intercept(round, direction, &mut batch);
    let (rebuilt, mismatched) = RoundBuffer::from_vecs(&batch, buf.stride(), buf.width());
    (rebuilt, mismatched.len() as u64)
}

/// The client batch feeding one round, in either of the two shapes the
/// entry accepts: per-message vectors (individual clients, adversary
/// injection tests) or one flat [`RoundBuffer`] arena straight from a
/// [`crate::cohort::ClientCohort`] builder — at a million clients the
/// per-message boundary would cost one heap allocation per onion, so
/// cohort batches stay flat end to end.
#[derive(Clone, Debug)]
pub enum Batch {
    /// Per-message onion vectors, already multiplexed by the entry.
    Vecs(Vec<Vec<u8>>),
    /// A flat arena whose width must equal the round's full onion
    /// width ([`onion::wrapped_len`] of the round kind's payload).
    Flat(RoundBuffer),
}

impl Batch {
    /// Number of client requests in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Batch::Vecs(batch) => batch.len(),
            Batch::Flat(buf) => buf.len(),
        }
    }

    /// Whether the batch holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<Vec<u8>>> for Batch {
    fn from(batch: Vec<Vec<u8>>) -> Batch {
        Batch::Vecs(batch)
    }
}

impl From<RoundBuffer> for Batch {
    fn from(buf: RoundBuffer) -> Batch {
        Batch::Flat(buf)
    }
}

/// Admits one round's client batch at the entry: meters the aggregated
/// clients→entry link, runs any attached tap, and produces the flat
/// forward arena at the round's full onion width. Per-message batches
/// pay the `Vec<Vec<u8>>` boundary exactly as before; flat cohort
/// batches only pay it when a tap is actually attached. On this leg a
/// size-mismatch count is dropped in both shapes: entry sizes are
/// client-controlled, so a mismatch cannot be attributed to a tap (see
/// [`Chain::tap_resized`]).
///
/// # Panics
///
/// Panics if a flat batch's width is not the round's onion width — a
/// cohort builder bug, not client-controlled input.
pub(crate) fn admit_batch(
    client_link: &Link,
    round: u64,
    kind: RoundKind,
    chain_len: usize,
    batch: Batch,
) -> RoundBuffer {
    let width = onion::wrapped_len(kind.payload_len(), chain_len);
    match batch {
        Batch::Vecs(batch) => {
            let batch = client_link.transmit(round, Direction::Forward, batch);
            let (buf, _mismatched) = RoundBuffer::from_vecs(&batch, width, width);
            buf
        }
        Batch::Flat(buf) => {
            assert_eq!(
                buf.width(),
                width,
                "flat batch width must equal the round's onion width"
            );
            let (buf, _resized) = transmit_buf(client_link, round, Direction::Forward, buf);
            buf
        }
    }
}

/// One round of a (possibly mixed) schedule: which protocol it runs,
/// its round number, and the client batch feeding it. This is the unit
/// both schedulers consume — [`Chain::run_round`] sequentially,
/// [`crate::pipeline::StreamingChain::run_mixed_schedule`] overlapped.
#[derive(Clone, Debug)]
pub enum RoundSpec {
    /// A conversation round (Algorithm 2): forward and backward passes.
    Conversation {
        /// Protocol round number (unique within a schedule).
        round: u64,
        /// Client request onions, already multiplexed by the entry.
        batch: Batch,
    },
    /// A forward-only dialing round (§5).
    Dialing {
        /// Protocol round number (unique within a schedule).
        round: u64,
        /// Client dial-request onions.
        batch: Batch,
        /// Real invitation drops this round (§5.4's `m`).
        num_drops: u32,
    },
}

impl RoundSpec {
    /// The round number this spec describes.
    #[must_use]
    pub fn round(&self) -> u64 {
        match self {
            RoundSpec::Conversation { round, .. } | RoundSpec::Dialing { round, .. } => *round,
        }
    }

    /// The server-side round kind (noise recipe, payload size).
    #[must_use]
    pub fn kind(&self) -> RoundKind {
        match self {
            RoundSpec::Conversation { .. } => RoundKind::Conversation,
            RoundSpec::Dialing { num_drops, .. } => RoundKind::Dialing {
                num_drops: *num_drops,
            },
        }
    }

    /// The wire-level protocol tag ([`vuvuzela_wire::RoundType`]).
    #[must_use]
    pub fn round_type(&self) -> vuvuzela_wire::RoundType {
        self.kind().round_type()
    }

    /// Number of client requests feeding the round.
    #[must_use]
    pub fn batch_len(&self) -> usize {
        match self {
            RoundSpec::Conversation { batch, .. } | RoundSpec::Dialing { batch, .. } => batch.len(),
        }
    }

    /// Decomposes into `(round, kind, batch)`.
    #[must_use]
    pub fn into_parts(self) -> (u64, RoundKind, Batch) {
        match self {
            RoundSpec::Conversation { round, batch } => (round, RoundKind::Conversation, batch),
            RoundSpec::Dialing {
                round,
                batch,
                num_drops,
            } => (round, RoundKind::Dialing { num_drops }, batch),
        }
    }
}

/// The per-round result of a (possibly mixed) schedule; the variant
/// always matches the [`RoundSpec`] that produced it.
#[derive(Clone, Debug)]
pub enum RoundOutcome {
    /// A completed conversation round.
    Conversation {
        /// Per-request replies, in batch order.
        replies: Vec<Vec<u8>>,
        /// Stage timings.
        timing: RoundTiming,
    },
    /// A completed (forward-only) dialing round; the resulting drops are
    /// downloadable via [`Chain::download_drop`].
    Dialing {
        /// Stage timings (`backward` stays empty).
        timing: RoundTiming,
    },
}

impl RoundOutcome {
    /// The round's stage timings.
    #[must_use]
    pub fn timing(&self) -> &RoundTiming {
        match self {
            RoundOutcome::Conversation { timing, .. } | RoundOutcome::Dialing { timing } => timing,
        }
    }

    /// The replies of a conversation round; `None` for dialing rounds.
    #[must_use]
    pub fn replies(&self) -> Option<&[Vec<u8>]> {
        match self {
            RoundOutcome::Conversation { replies, .. } => Some(replies),
            RoundOutcome::Dialing { .. } => None,
        }
    }
}

/// Wall-clock timing of one conversation round, per stage.
#[derive(Clone, Debug, Default)]
pub struct RoundTiming {
    /// Per-server forward-pass time (peel + noise + shuffle), in chain
    /// order.
    pub forward: Vec<Duration>,
    /// Dead-drop matching at the last server.
    pub exchange: Duration,
    /// Per-server backward-pass time (unshuffle + strip + wrap), in
    /// *reverse* chain order (last server first).
    pub backward: Vec<Duration>,
    /// Total end-to-end time for the round.
    pub total: Duration,
}

/// A full deployment: entry link, server chain, dead-drop stores, meters.
///
/// Fields are `pub(crate)` so [`crate::pipeline::StreamingChain`] can
/// drive the *same* deployment (same servers, links, seeds) through an
/// overlapped schedule.
pub struct Chain {
    pub(crate) config: SystemConfig,
    pub(crate) servers: Vec<MixServer>,
    /// `links[0]` connects entry→server 0; `links[i]` connects
    /// server i−1 → server i.
    pub(crate) links: Vec<Link>,
    /// Aggregated clients→entry link.
    pub(crate) client_link: Link,
    /// Meter standing in for the CDN that serves invitation-drop
    /// downloads (§5.5).
    pub(crate) cdn_link: Link,
    /// Base seed for the chain-level per-round RNG.
    pub(crate) seed: u64,
    pub(crate) conversation_log: Vec<(u64, ConversationObservables)>,
    pub(crate) dialing_log: Vec<(u64, DialingObservables)>,
    /// The most recent dialing round's drops, downloadable by clients.
    pub(crate) invitation_drops: Option<(u64, InvitationDrops)>,
    /// Total entries adversary taps resized across flat-buffer
    /// transfers — every hop link plus the entry→clients reply leg
    /// (their slots were zero-filled on rebuild; see [`transmit_buf`]).
    /// The clients→entry request leg is excluded: its entry sizes are
    /// client-controlled, so a mismatch there cannot be attributed to a
    /// tap.
    pub(crate) tap_resized: u64,
}

impl Chain {
    /// Builds a chain per `config`, with deterministic server keys and
    /// RNGs derived from `seed`.
    #[must_use]
    pub fn new(config: SystemConfig, seed: u64) -> Chain {
        config.validate();
        let servers = build_servers(&config, seed);
        let links = (0..config.chain_len)
            .map(|i| Link::new(LinkId::Hop(i as u32)))
            .collect();

        Chain {
            config,
            servers,
            links,
            client_link: Link::new(LinkId::Clients),
            cdn_link: Link::new(LinkId::Cdn),
            seed,
            conversation_log: Vec::new(),
            dialing_log: Vec::new(),
            invitation_drops: None,
            tap_resized: 0,
        }
    }

    /// The RNG for one round's chain-level randomness; a pure function
    /// of `(seed, round)`, shared with the streaming scheduler.
    pub(crate) fn chain_round_rng(seed: u64, round: u64) -> StdRng {
        round_rng(seed ^ CHAIN_RNG_DOMAIN, round)
    }

    /// The chain's public keys, in onion-wrapping order (server 0 first).
    #[must_use]
    pub fn server_public_keys(&self) -> Vec<PublicKey> {
        self.servers.iter().map(MixServer::public_key).collect()
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs one conversation round over an already-multiplexed batch of
    /// client onions. Returns per-request replies (in batch order) and
    /// stage timings.
    ///
    /// The round runs end-to-end on a flat [`RoundBuffer`] arena — the
    /// per-message vectors exist only at this client boundary.
    pub fn run_conversation_round(
        &mut self,
        round: u64,
        batch: impl Into<Batch>,
    ) -> (Vec<Vec<u8>>, RoundTiming) {
        let start = Instant::now();
        let mut timing = RoundTiming::default();
        let kind = RoundKind::Conversation;

        // Clients → entry (aggregate): per-message batches stay vectors
        // through the entry, so a tap on the client link observes
        // clients' raw bytes (including any malformed sizes) and the
        // meter counts true lengths, exactly as pre-refactor; cohort
        // batches arrive flat and stay flat.
        let mut buf = admit_batch(
            &self.client_link,
            round,
            kind,
            self.config.chain_len,
            batch.into(),
        );
        for (i, server) in self.servers.iter_mut().enumerate() {
            let (arrived, resized) = transmit_buf(&self.links[i], round, Direction::Forward, buf);
            self.tap_resized += resized;
            buf = arrived;
            let t = Instant::now();
            buf = server.forward_buf(round, kind, buf);
            timing.forward.push(t.elapsed());
        }

        // Dead-drop exchange at the last server (Algorithm 2 step 3b).
        let t = Instant::now();
        let mut rng = Chain::chain_round_rng(self.seed, round);
        let (mut replies, observables) = exchange_conversation(
            &mut rng,
            self.config.chain_len,
            self.config.exchange_shards,
            self.config.workers,
            &buf,
        );
        self.conversation_log.push((round, observables));
        timing.exchange = t.elapsed();

        // Backward through the chain (step 4), then entry → clients.
        for i in (0..self.servers.len()).rev() {
            let t = Instant::now();
            replies = self.servers[i].backward_buf(round, replies);
            timing.backward.push(t.elapsed());
            let (arrived, resized) =
                transmit_buf(&self.links[i], round, Direction::Backward, replies);
            self.tap_resized += resized;
            replies = arrived;
        }
        let (replies, resized) =
            transmit_buf(&self.client_link, round, Direction::Backward, replies);
        self.tap_resized += resized;

        timing.total = start.elapsed();
        (replies.to_vecs(), timing)
    }

    /// Runs one dialing round (forward-only; §5). The resulting
    /// invitation drops are retained for [`Chain::download_drop`].
    pub fn run_dialing_round(
        &mut self,
        round: u64,
        batch: impl Into<Batch>,
        num_drops: u32,
    ) -> RoundTiming {
        let start = Instant::now();
        let mut timing = RoundTiming::default();
        let kind = RoundKind::Dialing { num_drops };

        // Client link first (see run_conversation_round).
        let mut buf = admit_batch(
            &self.client_link,
            round,
            kind,
            self.config.chain_len,
            batch.into(),
        );
        for (i, server) in self.servers.iter_mut().enumerate() {
            let (arrived, resized) = transmit_buf(&self.links[i], round, Direction::Forward, buf);
            self.tap_resized += resized;
            buf = arrived;
            let t = Instant::now();
            buf = server.forward_buf(round, kind, buf);
            timing.forward.push(t.elapsed());
        }

        // Deposit into the invitation drops; add the last server's own
        // per-drop noise; publish for download.
        let t = Instant::now();
        let last = self.servers.len() - 1;
        let mut rng = Chain::chain_round_rng(self.seed, round);
        let drops = deposit_dialing(&mut rng, &mut self.servers[last], round, num_drops, &buf);
        self.dialing_log.push((round, drops.observables()));
        // Dialing rounds are forward-only, so the per-server round state
        // retained for a reply pass must be discarded explicitly.
        for server in &mut self.servers {
            server.abort_round(round);
        }
        self.invitation_drops = Some((round, drops));
        timing.exchange = t.elapsed();

        timing.total = start.elapsed();
        timing
    }

    /// Runs one round of a mixed schedule, dispatching on the spec's
    /// protocol — the strictly sequential reference the streaming
    /// scheduler's interleaved execution is verified against, round
    /// descriptor by round descriptor.
    pub fn run_round(&mut self, spec: RoundSpec) -> RoundOutcome {
        match spec {
            RoundSpec::Conversation { round, batch } => {
                let (replies, timing) = self.run_conversation_round(round, batch);
                RoundOutcome::Conversation { replies, timing }
            }
            RoundSpec::Dialing {
                round,
                batch,
                num_drops,
            } => {
                let timing = self.run_dialing_round(round, batch, num_drops);
                RoundOutcome::Dialing { timing }
            }
        }
    }

    /// Downloads one invitation drop from the most recent dialing round,
    /// metering the transfer on the CDN link (§5.5). Returns `None` if no
    /// dialing round has completed or the index is invalid.
    pub fn download_drop(&mut self, index: InvitationDropIndex) -> Option<Vec<SealedInvitation>> {
        let (round, drops) = self.invitation_drops.as_ref()?;
        let contents = drops.download(index)?.to_vec();
        let batch: Vec<Vec<u8>> = contents.iter().map(|inv| inv.0.clone()).collect();
        let _ = self.cdn_link.transmit(*round, Direction::Backward, batch);
        Some(contents)
    }

    /// Number of real drops in the most recent dialing round.
    #[must_use]
    pub fn current_num_drops(&self) -> Option<u32> {
        self.invitation_drops.as_ref().map(|(_, d)| d.num_drops())
    }

    /// Everything a compromised last server would have recorded about
    /// conversation rounds: per-round (m1, m2) histograms.
    #[must_use]
    pub fn conversation_observables(&self) -> &[(u64, ConversationObservables)] {
        &self.conversation_log
    }

    /// Per-round dialing observables (per-drop invitation counts).
    #[must_use]
    pub fn dialing_observables(&self) -> &[(u64, DialingObservables)] {
        &self.dialing_log
    }

    /// Mutable access to an inter-server link (0 = entry→server 0) for
    /// attaching adversary taps.
    pub fn link_mut(&mut self, index: usize) -> &mut Link {
        &mut self.links[index]
    }

    /// Mutable access to the aggregated clients→entry link.
    pub fn client_link_mut(&mut self) -> &mut Link {
        &mut self.client_link
    }

    /// The clients→entry link (metering).
    #[must_use]
    pub fn client_link(&self) -> &Link {
        &self.client_link
    }

    /// The inter-server links (metering).
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The CDN link serving invitation downloads (metering).
    #[must_use]
    pub fn cdn_link(&self) -> &Link {
        &self.cdn_link
    }

    /// Total bytes moved across all chain links (both directions),
    /// excluding CDN downloads — the "server bandwidth" of §8.2.
    #[must_use]
    pub fn total_server_bytes(&self) -> u64 {
        self.client_link.total_bytes() + self.links.iter().map(Link::total_bytes).sum::<u64>()
    }

    /// Diagnostic access to a server (e.g. malformed-request counters).
    #[must_use]
    pub fn server(&self, index: usize) -> &MixServer {
        &self.servers[index]
    }

    /// Discards every server's in-flight round state, returning the
    /// total number of `(server, round)` states dropped.
    ///
    /// This defines the deployment's **round-abort semantics** after a
    /// failed schedule: when a streaming schedule panics mid-flight
    /// (server fault, adversary tap), the rounds it admitted are dead —
    /// no replies will ever reach clients, and which servers still hold
    /// forward state for which rounds depends on where the pipeline
    /// stopped. A recovering deployment calls this, has its clients
    /// expire the dead rounds' reply keys
    /// ([`crate::client::Client::expire_pending`]), and schedules fresh
    /// round numbers; client-level retransmission (§3.1) then re-carries
    /// any data the aborted rounds lost.
    pub fn abort_in_flight_rounds(&mut self) -> usize {
        self.servers
            .iter_mut()
            .map(MixServer::abort_all_rounds)
            .sum()
    }

    /// Total in-flight entries adversary taps resized (truncated,
    /// extended, or injected with a non-onion size) on flat-buffer
    /// transfers: every inter-hop link plus the entry→clients reply
    /// leg. Each such entry's slot was rebuilt zero-filled, which
    /// downstream peeling replaces with noise. Tampering on the
    /// clients→entry request leg is *not* counted — entry sizes there
    /// are client-controlled, so a size mismatch cannot be attributed
    /// to the tap (the entries are still zero-filled and replaced
    /// downstream all the same).
    #[must_use]
    pub fn tap_resized(&self) -> u64 {
        self.tap_resized
    }
}

/// The chain's server keypairs as a pure function of `(chain_len,
/// seed)` — one sequential `StdRng` stream, exactly as [`Chain::new`]
/// has always drawn them. Factored out so a distributed deployment
/// (every server its own OS process) derives byte-identical keys from
/// the shared config without ever holding the whole chain: clients use
/// the public halves, server *i* keeps only its own secret.
#[must_use]
pub fn server_keypairs(chain_len: usize, seed: u64) -> Vec<Keypair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..chain_len)
        .map(|_| Keypair::generate(&mut rng))
        .collect()
}

/// Builds the mix server at `position` with the deterministic key and
/// per-server seed scheme shared by every execution mode (sequential
/// chain, streaming pipeline, transport-backed node).
#[must_use]
pub fn build_server(config: &SystemConfig, seed: u64, position: usize) -> MixServer {
    let keypairs = server_keypairs(config.chain_len, seed);
    let publics: Vec<PublicKey> = keypairs.iter().map(|kp| kp.public).collect();
    let keypair = keypairs
        .into_iter()
        .nth(position)
        .expect("position in range");
    MixServer::new(
        position,
        config.chain_len,
        keypair,
        publics[position + 1..].to_vec(),
        config.clone(),
        seed.wrapping_add(1 + position as u64),
    )
}

/// Replays the round RNG of the server at `position` in a chain seeded
/// with `seed` — the same `(seed, position, round)` derivation
/// [`build_server`] wires into every [`MixServer`]. In an honest
/// conversation round the first two 64-bit words this RNG yields are
/// exactly the uniforms behind that server's `n1`/`n2` Laplace noise
/// draws, which lets cross-validation tests and attack harnesses replay
/// a deployment's noise streams without running the chain.
#[must_use]
pub fn server_round_rng(seed: u64, position: usize, round: u64) -> StdRng {
    crate::server::round_rng(seed.wrapping_add(1 + position as u64), round)
}

/// All of a chain's servers (the in-process deployments).
fn build_servers(config: &SystemConfig, seed: u64) -> Vec<MixServer> {
    let keypairs = server_keypairs(config.chain_len, seed);
    let publics: Vec<PublicKey> = keypairs.iter().map(|kp| kp.public).collect();
    keypairs
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            MixServer::new(
                i,
                config.chain_len,
                kp,
                publics[i + 1..].to_vec(),
                config.clone(),
                seed.wrapping_add(1 + i as u64),
            )
        })
        .collect()
}

/// The last server's dead-drop exchange for one conversation round
/// (Algorithm 2 step 3b): decodes the fully peeled requests (undecodable
/// payloads become locally generated noise), exchanges through the drop
/// table, and packs the responses into a reply buffer that reserves the
/// whole chain's reply-layer overhead up front so every hop's in-place
/// wrap fits in its slot. Shared verbatim by the sequential chain and
/// the streaming scheduler's tail stage.
pub(crate) fn exchange_conversation(
    rng: &mut StdRng,
    chain_len: usize,
    shards: usize,
    workers: usize,
    buf: &RoundBuffer,
) -> (RoundBuffer, ConversationObservables) {
    let requests: Vec<ExchangeRequest> = (0..buf.len())
        .map(|i| {
            ExchangeRequest::decode(buf.slot(i)).unwrap_or_else(|_| ExchangeRequest::noise(rng))
        })
        .collect();
    let (responses, observables) =
        ConversationDrops::exchange_sharded(rng, &requests, shards, workers);
    let reply_stride =
        vuvuzela_wire::EXCHANGE_RESPONSE_LEN + chain_len * onion::REPLY_LAYER_OVERHEAD;
    let mut replies = RoundBuffer::with_capacity(
        reply_stride,
        vuvuzela_wire::EXCHANGE_RESPONSE_LEN,
        responses.len(),
    );
    for response in &responses {
        replies.push_with(|slot| slot.copy_from_slice(&response.sealed_message));
    }
    (replies, observables)
}

/// The tail of one dialing round: deposits every peeled request into a
/// fresh invitation-drop table (undecodable payloads become no-op
/// writes) and adds the last server's direct per-drop noise. Shared by
/// the sequential chain and the streaming scheduler.
pub(crate) fn deposit_dialing(
    rng: &mut StdRng,
    last_server: &mut MixServer,
    round: u64,
    num_drops: u32,
    buf: &RoundBuffer,
) -> InvitationDrops {
    let mut drops = InvitationDrops::new(num_drops);
    for i in 0..buf.len() {
        let request = DialRequest::decode(buf.slot(i)).unwrap_or_else(|_| DialRequest::noop(rng));
        drops.deposit(request);
    }
    let counts = last_server.dialing_noise_counts(round, num_drops);
    drops.add_noise(rng, &counts);
    drops
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use vuvuzela_crypto::onion;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    use vuvuzela_wire::{EXCHANGE_RESPONSE_LEN, SEALED_MESSAGE_LEN};

    fn tiny_config(chain_len: usize) -> SystemConfig {
        SystemConfig {
            chain_len,
            conversation_noise: NoiseDistribution::new(4.0, 1.0),
            dialing_noise: NoiseDistribution::new(2.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    #[test]
    fn conversation_round_roundtrips_an_exchange() {
        let mut chain = Chain::new(tiny_config(3), 1);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(99);

        // Two clients agree (out of band) on a dead drop and deposit
        // distinguishable messages.
        let drop = vuvuzela_wire::deaddrop::DeadDropId([9u8; 16]);
        let make = |fill: u8, rng: &mut StdRng| {
            let request = ExchangeRequest {
                drop,
                sealed_message: vec![fill; SEALED_MESSAGE_LEN],
            };
            onion::wrap(rng, &pks, 0, &request.encode())
        };
        let (onion_a, keys_a) = make(0xAA, &mut rng);
        let (onion_b, keys_b) = make(0xBB, &mut rng);

        let (replies, timing) = chain.run_conversation_round(0, vec![onion_a, onion_b]);
        assert_eq!(replies.len(), 2);
        assert_eq!(timing.forward.len(), 3);
        assert_eq!(timing.backward.len(), 3);

        let a_reply = onion::unwrap_reply_layers(&keys_a, 0, &replies[0]).expect("a unwraps");
        let b_reply = onion::unwrap_reply_layers(&keys_b, 0, &replies[1]).expect("b unwraps");
        assert_eq!(a_reply, vec![0xBB; EXCHANGE_RESPONSE_LEN]);
        assert_eq!(b_reply, vec![0xAA; EXCHANGE_RESPONSE_LEN]);

        // Observables: one drop accessed twice, noise singles/pairs from
        // two noising servers (µ=4 → 4 singles + 2 pairs each).
        let (_, obs) = chain.conversation_observables()[0];
        assert_eq!(obs.total_requests, 2 + 2 * 8);
        assert_eq!(obs.m2 as i64, 1 + 2 * 2, "real pair + 2 noise pairs/server");
        assert_eq!(obs.m1, 2 * 4);
    }

    #[test]
    fn lone_exchange_gets_undecryptable_filler() {
        let mut chain = Chain::new(tiny_config(2), 2);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(5);
        let request = ExchangeRequest {
            drop: vuvuzela_wire::deaddrop::DeadDropId([1u8; 16]),
            sealed_message: vec![0x77; SEALED_MESSAGE_LEN],
        };
        let (onion0, keys) = onion::wrap(&mut rng, &pks, 3, &request.encode());
        let (replies, _) = chain.run_conversation_round(3, vec![onion0]);
        let reply = onion::unwrap_reply_layers(&keys, 3, &replies[0]).expect("unwraps");
        assert_eq!(reply.len(), EXCHANGE_RESPONSE_LEN);
        assert_ne!(reply, vec![0x77; EXCHANGE_RESPONSE_LEN], "not an echo");
    }

    #[test]
    fn empty_round_still_carries_noise() {
        let mut chain = Chain::new(tiny_config(3), 3);
        let (replies, _) = chain.run_conversation_round(0, vec![]);
        assert!(replies.is_empty());
        let (_, obs) = chain.conversation_observables()[0];
        // Two noising servers × (4 singles + 2 pairs × 2 requests) = 16.
        assert_eq!(obs.total_requests, 16);
    }

    #[test]
    fn single_server_chain_works() {
        // chain_len = 1: the one server is the last server; no noise, no
        // mixing — degenerate but must function (Figure 11's x = 1).
        let mut chain = Chain::new(tiny_config(1), 4);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(6);
        let request = ExchangeRequest::noise(&mut rng);
        let (onion0, keys) = onion::wrap(&mut rng, &pks, 0, &request.encode());
        let (replies, _) = chain.run_conversation_round(0, vec![onion0]);
        let reply = onion::unwrap_reply_layers(&keys, 0, &replies[0]).expect("unwraps");
        assert_eq!(reply.len(), EXCHANGE_RESPONSE_LEN);
    }

    #[test]
    fn dialing_round_delivers_invitations() {
        let mut chain = Chain::new(tiny_config(3), 7);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(8);

        let caller = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let callee = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let num_drops = 2;
        let target = InvitationDropIndex::for_recipient(&callee.public, num_drops);
        let request = DialRequest {
            drop: target,
            invitation: vuvuzela_wire::dialing::SealedInvitation::seal(
                &mut rng,
                &caller.public,
                &callee.public,
            ),
        };
        let (onion0, _) = onion::wrap(&mut rng, &pks, 10, &request.encode());

        let timing = chain.run_dialing_round(10, vec![onion0], num_drops);
        assert_eq!(timing.forward.len(), 3);

        let contents = chain.download_drop(target).expect("drop exists");
        // 1 real + 3 servers × µ_dial(=2) noise.
        assert_eq!(contents.len(), 1 + 6);
        let mine: Vec<_> = contents
            .iter()
            .filter_map(|inv| inv.try_open(&callee.secret, &callee.public))
            .collect();
        assert_eq!(mine, vec![caller.public]);

        // Observables: every drop got 3µ noise; the target also got the
        // real invitation.
        let (_, obs) = &chain.dialing_observables()[0];
        assert_eq!(obs.counts.len(), 2);
        assert_eq!(obs.counts.iter().sum::<u64>(), 2 * 6 + 1);

        // CDN metering saw the download.
        assert_eq!(
            chain.cdn_link().backward_meter().bytes(),
            (contents.len() * vuvuzela_wire::SEALED_INVITATION_LEN) as u64
        );
    }

    #[test]
    fn garbage_batch_does_not_crash_the_chain() {
        let mut chain = Chain::new(tiny_config(2), 9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut garbage = vec![0u8; 500];
        rng.fill_bytes(&mut garbage);
        let (replies, _) = chain.run_conversation_round(0, vec![garbage, vec![], vec![1, 2, 3]]);
        assert_eq!(replies.len(), 3, "alignment preserved under garbage");
        assert_eq!(chain.server(0).malformed_replaced, 3);
    }

    #[test]
    fn bandwidth_meters_accumulate() {
        let mut chain = Chain::new(tiny_config(2), 11);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(12);
        let payload = ExchangeRequest::noise(&mut rng).encode();
        let (onion0, _) = onion::wrap(&mut rng, &pks, 0, &payload);
        let before = chain.total_server_bytes();
        let _ = chain.run_conversation_round(0, vec![onion0]);
        assert!(chain.total_server_bytes() > before);
        // The server0→server1 link carries real + server0 noise.
        assert!(chain.links()[1].forward_meter().messages() > 1);
    }
}
