//! The Vuvuzela client (paper Algorithm 1, §3, §5).
//!
//! A [`Client`] holds a fixed number of *conversation slots* (§9
//! "Multiple conversations": the count is fixed a priori so it leaks
//! nothing; the paper's prototype uses one). Every conversation round the
//! client emits exactly one request per slot:
//!
//! * an **active** slot performs a real dead-drop exchange with its
//!   partner (Algorithm 1 step 1a), carrying either a data message from
//!   the send queue, a retransmission, or a keep-alive;
//! * an **idle** slot performs a fake exchange against a random dead drop
//!   (step 1b).
//!
//! On the wire the two are indistinguishable. Likewise every dialing
//! round the client sends exactly one invitation — real or a write to the
//! no-op drop (§5.2).
//!
//! Reliability: Vuvuzela "deals with these issues through retransmission
//! at a higher level (in the client itself)" (§3.1). The framing in
//! [`vuvuzela_wire::message`] carries sequence numbers and cumulative
//! acks; unacknowledged messages are re-sent after
//! [`crate::config::SystemConfig::retransmit_after`] rounds.

use crate::config::SystemConfig;
use rand::{CryptoRng, RngCore};
use std::collections::{BTreeMap, HashMap, VecDeque};
use vuvuzela_crypto::onion::{self, LayerKey};
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_wire::conversation::{ConversationKeys, ExchangeRequest};
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};
use vuvuzela_wire::message::{FramedMessage, MessageKind, MAX_BODY_LEN};
use vuvuzela_wire::{DIAL_REQUEST_LEN, EXCHANGE_REQUEST_LEN, EXCHANGE_RESPONSE_LEN, MESSAGE_LEN};

/// Client-facing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// All conversation slots are occupied (§5: "users can have a fixed
    /// number of conversations per round, so a user may end one
    /// conversation to make room for another").
    AllSlotsBusy,
    /// No active conversation with the given partner.
    NoConversationWith,
    /// Message body exceeds [`MAX_BODY_LEN`]; split it across rounds.
    MessageTooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::AllSlotsBusy => write!(f, "all conversation slots are busy"),
            ClientError::NoConversationWith => write!(f, "no active conversation with that user"),
            ClientError::MessageTooLong { limit } => {
                write!(f, "message exceeds the {limit}-byte per-round limit")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// An in-flight (sent, unacknowledged) data message.
#[derive(Clone, Debug)]
pub(crate) struct Inflight {
    pub(crate) body: Vec<u8>,
    pub(crate) last_sent_round: u64,
}

/// One active conversation's reliability state.
pub(crate) struct Conversation {
    pub(crate) peer: PublicKey,
    pub(crate) keys: ConversationKeys,
    /// Next sequence number to assign to a fresh outgoing message.
    next_seq: u64,
    /// Bodies queued by the user but not yet assigned a round.
    pub(crate) send_queue: VecDeque<Vec<u8>>,
    /// Sent but unacknowledged messages, keyed by sequence number.
    inflight: BTreeMap<u64, Inflight>,
    /// The next sequence number expected from the peer (everything below
    /// has been delivered); doubles as the cumulative ack we send.
    next_expected: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    out_of_order: BTreeMap<u64, Vec<u8>>,
    /// In-order messages delivered to the user.
    pub(crate) delivered: Vec<Vec<u8>>,
    /// Everything below this peer sequence number has been acked by the
    /// peer.
    peer_acked: u64,
}

impl Conversation {
    pub(crate) fn new(peer: PublicKey, keys: ConversationKeys) -> Conversation {
        Conversation {
            peer,
            keys,
            next_seq: 0,
            send_queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            next_expected: 0,
            out_of_order: BTreeMap::new(),
            delivered: Vec::new(),
            peer_acked: 0,
        }
    }

    /// Picks the frame to send this round: retransmission first, then a
    /// fresh message (window permitting), else a keep-alive.
    pub(crate) fn next_frame(
        &mut self,
        round: u64,
        retransmit_after: u64,
        window: usize,
    ) -> FramedMessage {
        // Retransmit the oldest overdue in-flight message.
        let overdue = self
            .inflight
            .iter()
            .find(|(_, m)| round >= m.last_sent_round + retransmit_after)
            .map(|(&seq, m)| (seq, m.body.clone()));
        if let Some((seq, body)) = overdue {
            self.inflight
                .get_mut(&seq)
                .expect("just found")
                .last_sent_round = round;
            return FramedMessage::data(seq, self.next_expected, &body);
        }
        // Fresh data message, if the pipeline window allows.
        if self.inflight.len() < window {
            if let Some(body) = self.send_queue.pop_front() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.inflight.insert(
                    seq,
                    Inflight {
                        body: body.clone(),
                        last_sent_round: round,
                    },
                );
                return FramedMessage::data(seq, self.next_expected, &body);
            }
        }
        FramedMessage::keep_alive(self.next_seq, self.next_expected)
    }

    /// Processes a frame received from the peer.
    pub(crate) fn receive_frame(&mut self, frame: FramedMessage) {
        // Cumulative ack: drop everything the peer has seen.
        self.peer_acked = self.peer_acked.max(frame.ack);
        let acked: Vec<u64> = self
            .inflight
            .range(..frame.ack)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in acked {
            self.inflight.remove(&seq);
        }

        if frame.kind == MessageKind::Data {
            match frame.seq.cmp(&self.next_expected) {
                core::cmp::Ordering::Equal => {
                    self.delivered.push(frame.body);
                    self.next_expected += 1;
                    // Drain any consecutive out-of-order arrivals.
                    while let Some(body) = self.out_of_order.remove(&self.next_expected) {
                        self.delivered.push(body);
                        self.next_expected += 1;
                    }
                }
                core::cmp::Ordering::Greater => {
                    self.out_of_order.insert(frame.seq, frame.body);
                }
                core::cmp::Ordering::Less => {
                    // Duplicate of an already-delivered message; ignore.
                }
            }
        }
    }

    /// Whether every queued and sent message has been delivered and acked.
    pub(crate) fn fully_acked(&self) -> bool {
        self.send_queue.is_empty() && self.inflight.is_empty() && self.peer_acked >= self.next_seq
    }
}

/// Keys needed to decrypt the replies of one in-flight round, per slot.
struct PendingRound {
    /// `(slot index, layer keys, had_real_exchange)` per request sent.
    slots: Vec<(usize, Vec<LayerKey>)>,
}

/// A Vuvuzela client.
pub struct Client {
    name: String,
    keypair: Keypair,
    config: SystemConfig,
    slots: Vec<Option<Conversation>>,
    dial_queue: VecDeque<PublicKey>,
    invitations: Vec<PublicKey>,
    pending: HashMap<u64, PendingRound>,
    /// Precomputed DH tables for the chain the client talks to, built
    /// lazily for the `server_pks` it is actually handed (or installed
    /// shared via [`Client::set_chain_tables`]) and reused every round —
    /// request wrapping runs on [`onion::wrap_into_with`] (comb keygen,
    /// table DH, zero per-layer allocations) instead of the allocating
    /// [`onion::wrap`]. The `Arc` lets a harness population share one
    /// table set per chain instead of paying ~35 KB + ~1 ms per server
    /// per client.
    chain_precomp: std::sync::Arc<Vec<onion::PrecomputedServer>>,
    /// The chain keys `chain_precomp` was built for.
    chain_precomp_for: Vec<PublicKey>,
    /// Pipeline window: how many unacked messages a conversation may have
    /// in flight ("Clients can pipeline conversation messages", §8.3).
    pub window: usize,
}

impl Client {
    /// Creates a client with the given diagnostic name and long-term
    /// keypair.
    #[must_use]
    pub fn new(name: impl Into<String>, keypair: Keypair, config: SystemConfig) -> Client {
        config.validate();
        let slots = (0..config.conversation_slots).map(|_| None).collect();
        Client {
            name: name.into(),
            keypair,
            config,
            slots,
            dial_queue: VecDeque::new(),
            invitations: Vec::new(),
            pending: HashMap::new(),
            chain_precomp: std::sync::Arc::new(Vec::new()),
            chain_precomp_for: Vec::new(),
            window: 4,
        }
    }

    /// Builds one shareable set of per-server DH tables for a chain.
    /// Install the same `Arc` into every client of a population with
    /// [`Client::set_chain_tables`] so the tables are built (and held)
    /// once per chain rather than once per client.
    #[must_use]
    pub fn chain_tables(server_pks: &[PublicKey]) -> std::sync::Arc<Vec<onion::PrecomputedServer>> {
        std::sync::Arc::new(
            server_pks
                .iter()
                .map(|pk| onion::PrecomputedServer::new(*pk))
                .collect(),
        )
    }

    /// Installs a shared table set previously built by
    /// [`Client::chain_tables`] for exactly `server_pks`.
    ///
    /// # Panics
    ///
    /// Panics if `tables` does not have one entry per server key.
    pub fn set_chain_tables(
        &mut self,
        tables: std::sync::Arc<Vec<onion::PrecomputedServer>>,
        server_pks: &[PublicKey],
    ) {
        assert_eq!(tables.len(), server_pks.len(), "one table per server");
        self.chain_precomp = tables;
        self.chain_precomp_for = server_pks.to_vec();
    }

    /// (Re)builds the cached per-server DH tables when the chain
    /// changes; a no-op on the hot path once warmed or shared in.
    fn ensure_chain_precomp(&mut self, server_pks: &[PublicKey]) {
        if self.chain_precomp_for != server_pks {
            self.chain_precomp = Client::chain_tables(server_pks);
            self.chain_precomp_for = server_pks.to_vec();
        }
    }

    /// The client's long-term public key (its identity, §2.3).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Conversation management
    // ------------------------------------------------------------------

    /// Enters a conversation with `peer` in the first free slot.
    ///
    /// # Errors
    ///
    /// [`ClientError::AllSlotsBusy`] when every slot is taken.
    pub fn start_conversation(&mut self, peer: PublicKey) -> Result<usize, ClientError> {
        if let Some(slot) = self.slot_of(&peer) {
            return Ok(slot); // already talking; idempotent
        }
        let free = self
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(ClientError::AllSlotsBusy)?;
        let keys = ConversationKeys::derive(&self.keypair.secret, &self.keypair.public, &peer);
        self.slots[free] = Some(Conversation::new(peer, keys));
        Ok(free)
    }

    /// Leaves the conversation with `peer`, freeing its slot.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoConversationWith`] if there is none.
    pub fn end_conversation(&mut self, peer: &PublicKey) -> Result<(), ClientError> {
        let slot = self.slot_of(peer).ok_or(ClientError::NoConversationWith)?;
        self.slots[slot] = None;
        Ok(())
    }

    /// Queues a message for an active conversation partner.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoConversationWith`] without an active conversation;
    /// [`ClientError::MessageTooLong`] if the body exceeds one round's
    /// capacity.
    pub fn queue_message(&mut self, peer: &PublicKey, body: &[u8]) -> Result<(), ClientError> {
        if body.len() > MAX_BODY_LEN {
            return Err(ClientError::MessageTooLong {
                limit: MAX_BODY_LEN,
            });
        }
        let slot = self.slot_of(peer).ok_or(ClientError::NoConversationWith)?;
        self.slots[slot]
            .as_mut()
            .expect("slot_of returned an occupied slot")
            .send_queue
            .push_back(body.to_vec());
        Ok(())
    }

    /// Queues arbitrary-length text, transparently split into
    /// [`MAX_BODY_LEN`]-byte segments delivered over consecutive rounds.
    /// (Fixed message sizes are load-bearing for privacy, so long texts
    /// cost proportionally many rounds — the paper's §9 "Message size"
    /// limitation.)
    ///
    /// # Errors
    ///
    /// [`ClientError::NoConversationWith`] without an active
    /// conversation.
    pub fn queue_text(&mut self, peer: &PublicKey, text: &[u8]) -> Result<usize, ClientError> {
        let slot = self.slot_of(peer).ok_or(ClientError::NoConversationWith)?;
        let conversation = self.slots[slot]
            .as_mut()
            .expect("slot_of returned an occupied slot");
        let mut segments = 0;
        if text.is_empty() {
            conversation.send_queue.push_back(Vec::new());
            return Ok(1);
        }
        for chunk in text.chunks(MAX_BODY_LEN) {
            conversation.send_queue.push_back(chunk.to_vec());
            segments += 1;
        }
        Ok(segments)
    }

    /// All messages delivered so far by the conversation with `peer`, in
    /// order.
    #[must_use]
    pub fn delivered_from(&self, peer: &PublicKey) -> Vec<Vec<u8>> {
        self.slot_of(peer)
            .and_then(|s| self.slots[s].as_ref())
            .map(|c| c.delivered.clone())
            .unwrap_or_default()
    }

    /// All delivered messages across every conversation (slot order).
    #[must_use]
    pub fn all_delivered(&self) -> Vec<Vec<u8>> {
        self.slots
            .iter()
            .flatten()
            .flat_map(|c| c.delivered.iter().cloned())
            .collect()
    }

    /// Whether the conversation with `peer` has nothing outstanding.
    #[must_use]
    pub fn conversation_idle(&self, peer: &PublicKey) -> bool {
        self.slot_of(peer)
            .and_then(|s| self.slots[s].as_ref())
            .is_some_and(Conversation::fully_acked)
    }

    /// The peers of all active conversations.
    #[must_use]
    pub fn active_peers(&self) -> Vec<PublicKey> {
        self.slots.iter().flatten().map(|c| c.peer).collect()
    }

    fn slot_of(&self, peer: &PublicKey) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|c| c.peer == *peer))
    }

    // ------------------------------------------------------------------
    // Conversation rounds (Algorithm 1)
    // ------------------------------------------------------------------

    /// Builds this round's onion-wrapped exchange requests — exactly one
    /// per slot, real or fake — and records the layer keys for the reply.
    ///
    /// Wrapping runs zero-copy: the request is encoded straight into the
    /// outgoing onion's buffer and sealed in place via
    /// [`onion::wrap_into_with`] over the client's cached per-server DH
    /// tables (byte-identical output to the allocating [`onion::wrap`]
    /// for equal RNG states).
    pub fn build_conversation_requests<R: RngCore + CryptoRng>(
        &mut self,
        rng: &mut R,
        round: u64,
        server_pks: &[PublicKey],
    ) -> Vec<Vec<u8>> {
        self.ensure_chain_precomp(server_pks);
        let retransmit_after = self.config.retransmit_after;
        let window = self.window;
        let chain_len = server_pks.len();
        let width = onion::wrapped_len(EXCHANGE_REQUEST_LEN, chain_len);
        let mut onions = Vec::with_capacity(self.slots.len());
        let mut pending = PendingRound { slots: Vec::new() };

        for slot_index in 0..self.slots.len() {
            let mut onion_bytes = vec![0u8; width];
            let payload = &mut onion_bytes[32 * chain_len..];
            match &mut self.slots[slot_index] {
                Some(conversation) => {
                    // Step 1a: real exchange.
                    let frame = conversation.next_frame(round, retransmit_after, window);
                    let sealed = conversation.keys.seal_message(round, &frame.encode());
                    ExchangeRequest {
                        drop: conversation.keys.drop_id(round),
                        sealed_message: sealed,
                    }
                    .encode_into(payload);
                }
                None => {
                    // Step 1b: fake request against a random partner.
                    let fake =
                        ConversationKeys::fake(rng, &self.keypair.secret, &self.keypair.public);
                    let sealed = fake.seal_message(round, &[0u8; MESSAGE_LEN]);
                    ExchangeRequest {
                        drop: fake.drop_id(round),
                        sealed_message: sealed,
                    }
                    .encode_into(payload);
                }
            }
            // Step 2: onion wrap, in place.
            let keys = onion::wrap_into_with(
                rng,
                &self.chain_precomp,
                round,
                &mut onion_bytes,
                EXCHANGE_REQUEST_LEN,
            );
            onions.push(onion_bytes);
            pending.slots.push((slot_index, keys));
        }
        self.pending.insert(round, pending);
        onions
    }

    /// Processes this round's replies (step 3), one per request sent, in
    /// the same order. `None` entries model replies lost to an adversary.
    pub fn handle_conversation_replies(&mut self, round: u64, replies: Vec<Option<Vec<u8>>>) {
        let Some(pending) = self.pending.remove(&round) else {
            return; // a round we never participated in (or already expired)
        };
        for ((slot_index, keys), reply) in pending.slots.into_iter().zip(replies) {
            let Some(reply) = reply else { continue };
            let Ok(sealed) = onion::unwrap_reply_layers(&keys, round, &reply) else {
                continue; // tampered or misrouted reply
            };
            if sealed.len() != EXCHANGE_RESPONSE_LEN {
                continue;
            }
            if let Some(conversation) = &mut self.slots[slot_index] {
                // A decrypt failure means the partner was absent this
                // round (we got the server's random filler) — that is
                // normal, not an error.
                if let Ok(padded) = conversation.keys.open_message(round, &sealed) {
                    if let Ok(frame) = FramedMessage::decode(&padded) {
                        conversation.receive_frame(frame);
                    }
                }
            }
        }
    }

    /// Discards reply keys for rounds older than `round` (e.g. when an
    /// adversary blackholed them); bounds memory under sustained DoS.
    pub fn expire_pending(&mut self, round: u64) {
        self.pending.retain(|&r, _| r >= round);
    }

    // ------------------------------------------------------------------
    // Dialing rounds (§5)
    // ------------------------------------------------------------------

    /// Queues an invitation to `peer` for the next dialing round and
    /// preemptively enters the conversation (§3: the caller enters "in
    /// anticipation that user will reciprocate").
    ///
    /// # Errors
    ///
    /// [`ClientError::AllSlotsBusy`] if no slot is free for the
    /// anticipated conversation.
    pub fn dial(&mut self, peer: PublicKey) -> Result<(), ClientError> {
        self.start_conversation(peer)?;
        self.dial_queue.push_back(peer);
        Ok(())
    }

    /// Builds this dialing round's onion-wrapped request: a real
    /// invitation if one is queued, otherwise a no-op write (§5.2).
    /// Zero-copy, like [`Client::build_conversation_requests`].
    pub fn build_dial_request<R: RngCore + CryptoRng>(
        &mut self,
        rng: &mut R,
        round: u64,
        num_drops: u32,
        server_pks: &[PublicKey],
    ) -> Vec<u8> {
        self.ensure_chain_precomp(server_pks);
        let request = match self.dial_queue.pop_front() {
            Some(peer) => DialRequest {
                drop: InvitationDropIndex::for_recipient(&peer, num_drops),
                invitation: SealedInvitation::seal(rng, &self.keypair.public, &peer),
            },
            None => DialRequest::noop(rng),
        };
        let chain_len = server_pks.len();
        let mut onion_bytes = vec![0u8; onion::wrapped_len(DIAL_REQUEST_LEN, chain_len)];
        request.encode_into(&mut onion_bytes[32 * chain_len..]);
        let _ = onion::wrap_into_with(
            rng,
            &self.chain_precomp,
            round,
            &mut onion_bytes,
            DIAL_REQUEST_LEN,
        );
        onion_bytes
    }

    /// The invitation drop this client must download (derived from its
    /// public key, §5.1 — the adversary knows it too).
    #[must_use]
    pub fn invitation_drop(&self, num_drops: u32) -> InvitationDropIndex {
        InvitationDropIndex::for_recipient(&self.keypair.public, num_drops)
    }

    /// Scans a downloaded invitation drop, trial-decrypting every entry
    /// (§5.1), and stores the discovered callers.
    ///
    /// Returns the callers found in this batch.
    pub fn scan_invitation_drop(&mut self, contents: &[SealedInvitation]) -> Vec<PublicKey> {
        let mine: Vec<PublicKey> = contents
            .iter()
            .filter_map(|inv| inv.try_open(&self.keypair.secret, &self.keypair.public))
            .collect();
        self.invitations.extend(mine.iter().copied());
        mine
    }

    /// Invitations received so far and not yet accepted or declined.
    #[must_use]
    pub fn pending_invitations(&self) -> &[PublicKey] {
        &self.invitations
    }

    /// Accepts an invitation: enters a conversation with the caller.
    ///
    /// # Errors
    ///
    /// [`ClientError::AllSlotsBusy`] when no slot is free.
    pub fn accept_invitation(&mut self, caller: PublicKey) -> Result<usize, ClientError> {
        self.invitations.retain(|pk| *pk != caller);
        self.start_conversation(caller)
    }

    /// Declines (discards) an invitation.
    pub fn decline_invitation(&mut self, caller: &PublicKey) {
        self.invitations.retain(|pk| pk != caller);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};

    fn cfg(slots: usize) -> SystemConfig {
        SystemConfig {
            chain_len: 2,
            conversation_noise: NoiseDistribution::new(1.0, 1.0),
            dialing_noise: NoiseDistribution::new(1.0, 1.0),
            noise_mode: NoiseMode::Off,
            workers: 1,
            conversation_slots: slots,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    fn client(name: &str, seed: u64, slots: usize) -> Client {
        let mut rng = StdRng::seed_from_u64(seed);
        Client::new(name, Keypair::generate(&mut rng), cfg(slots))
    }

    #[test]
    fn slot_management() {
        let mut alice = client("alice", 1, 2);
        let bob = client("bob", 2, 1);
        let carol = client("carol", 3, 1);
        let dave = client("dave", 4, 1);

        let s1 = alice.start_conversation(bob.public_key()).expect("slot 0");
        assert_eq!(s1, 0);
        // Idempotent for the same peer.
        assert_eq!(alice.start_conversation(bob.public_key()), Ok(0));
        let s2 = alice
            .start_conversation(carol.public_key())
            .expect("slot 1");
        assert_eq!(s2, 1);
        assert_eq!(
            alice.start_conversation(dave.public_key()),
            Err(ClientError::AllSlotsBusy)
        );
        alice.end_conversation(&bob.public_key()).expect("end");
        assert_eq!(alice.start_conversation(dave.public_key()), Ok(0));
        assert_eq!(
            alice.end_conversation(&bob.public_key()),
            Err(ClientError::NoConversationWith)
        );
    }

    #[test]
    fn queue_message_validation() {
        let mut alice = client("alice", 5, 1);
        let bob = client("bob", 6, 1);
        assert_eq!(
            alice.queue_message(&bob.public_key(), b"hi"),
            Err(ClientError::NoConversationWith)
        );
        alice.start_conversation(bob.public_key()).expect("start");
        assert!(alice.queue_message(&bob.public_key(), b"hi").is_ok());
        assert_eq!(
            alice.queue_message(&bob.public_key(), &vec![0u8; MAX_BODY_LEN + 1]),
            Err(ClientError::MessageTooLong {
                limit: MAX_BODY_LEN
            })
        );
    }

    #[test]
    fn requests_are_uniform_regardless_of_activity() {
        // An idle client and a talking client must emit identically
        // shaped requests.
        let mut rng = StdRng::seed_from_u64(7);
        let server_pks: Vec<PublicKey> =
            (0..3).map(|_| Keypair::generate(&mut rng).public).collect();
        let mut idle = client("idle", 8, 1);
        let mut talker = client("talker", 9, 1);
        let peer = client("peer", 10, 1);
        talker.start_conversation(peer.public_key()).expect("start");
        talker
            .queue_message(&peer.public_key(), b"secret")
            .expect("queue");

        let idle_reqs = idle.build_conversation_requests(&mut rng, 0, &server_pks);
        let talk_reqs = talker.build_conversation_requests(&mut rng, 0, &server_pks);
        assert_eq!(idle_reqs.len(), 1);
        assert_eq!(talk_reqs.len(), 1);
        assert_eq!(idle_reqs[0].len(), talk_reqs[0].len());
    }

    #[test]
    fn frame_selection_prefers_retransmission() {
        let mut alice = client("alice", 11, 1);
        let bob = client("bob", 12, 1);
        alice.start_conversation(bob.public_key()).expect("start");
        alice.queue_message(&bob.public_key(), b"first").expect("q");

        let slot = alice.slots[0].as_mut().expect("conversation");
        // Round 0: sends "first" (seq 0).
        let f0 = slot.next_frame(0, 2, 4);
        assert_eq!(f0.kind, MessageKind::Data);
        assert_eq!(f0.seq, 0);
        // Round 1: nothing new, not yet overdue → keep-alive.
        let f1 = slot.next_frame(1, 2, 4);
        assert_eq!(f1.kind, MessageKind::KeepAlive);
        // Round 2: overdue → retransmit seq 0.
        let f2 = slot.next_frame(2, 2, 4);
        assert_eq!(f2.kind, MessageKind::Data);
        assert_eq!(f2.seq, 0);
        assert_eq!(f2.body, b"first");
    }

    #[test]
    fn receive_frame_handles_order_and_dups() {
        let mut alice = client("alice", 13, 1);
        let bob = client("bob", 14, 1);
        alice.start_conversation(bob.public_key()).expect("start");
        let conv = alice.slots[0].as_mut().expect("conversation");

        // Out of order: seq 1 before seq 0.
        conv.receive_frame(FramedMessage::data(1, 0, b"second"));
        assert!(conv.delivered.is_empty());
        conv.receive_frame(FramedMessage::data(0, 0, b"first"));
        assert_eq!(conv.delivered, vec![b"first".to_vec(), b"second".to_vec()]);
        // Duplicate ignored.
        conv.receive_frame(FramedMessage::data(0, 0, b"first"));
        assert_eq!(conv.delivered.len(), 2);
        assert_eq!(conv.next_expected, 2);
    }

    #[test]
    fn acks_clear_inflight() {
        let mut alice = client("alice", 15, 1);
        let bob = client("bob", 16, 1);
        alice.start_conversation(bob.public_key()).expect("start");
        let conv = alice.slots[0].as_mut().expect("conversation");
        conv.send_queue.push_back(b"a".to_vec());
        conv.send_queue.push_back(b"b".to_vec());
        let _ = conv.next_frame(0, 2, 4);
        let _ = conv.next_frame(1, 2, 4);
        assert_eq!(conv.inflight.len(), 2);
        // Peer acks everything below 2.
        conv.receive_frame(FramedMessage::keep_alive(0, 2));
        assert!(conv.inflight.is_empty());
        assert!(conv.fully_acked());
    }

    #[test]
    fn queue_text_splits_long_messages() {
        let mut alice = client("alice", 40, 1);
        let bob = client("bob", 41, 1);
        alice.start_conversation(bob.public_key()).expect("start");

        let long = vec![b'x'; MAX_BODY_LEN * 2 + 10];
        let segments = alice.queue_text(&bob.public_key(), &long).expect("queues");
        assert_eq!(segments, 3);
        let conv = alice.slots[0].as_ref().expect("conversation");
        assert_eq!(conv.send_queue.len(), 3);
        assert_eq!(conv.send_queue[0].len(), MAX_BODY_LEN);
        assert_eq!(conv.send_queue[2].len(), 10);

        // Empty text still queues one (empty) message.
        let mut alice2 = client("alice2", 42, 1);
        alice2.start_conversation(bob.public_key()).expect("start");
        assert_eq!(alice2.queue_text(&bob.public_key(), b""), Ok(1));
    }

    #[test]
    fn dialing_queue_and_noop() {
        let mut rng = StdRng::seed_from_u64(17);
        let server_pks: Vec<PublicKey> =
            (0..2).map(|_| Keypair::generate(&mut rng).public).collect();
        let mut alice = client("alice", 18, 1);
        let bob = client("bob", 19, 1);

        alice.dial(bob.public_key()).expect("dial");
        // One queued invitation, then no-ops; all requests identical size.
        let r1 = alice.build_dial_request(&mut rng, 0, 4, &server_pks);
        let r2 = alice.build_dial_request(&mut rng, 1, 4, &server_pks);
        assert_eq!(r1.len(), r2.len());
        // The dial also preemptively started the conversation.
        assert_eq!(alice.active_peers(), vec![bob.public_key()]);
    }

    #[test]
    fn invitation_scan_and_accept() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut alice = client("alice", 21, 1);
        let mut bob = client("bob", 22, 1);

        let drop_contents = vec![
            SealedInvitation::noise(&mut rng),
            SealedInvitation::seal(&mut rng, &alice.public_key(), &bob.public_key()),
            SealedInvitation::noise(&mut rng),
        ];
        let found = bob.scan_invitation_drop(&drop_contents);
        assert_eq!(found, vec![alice.public_key()]);
        assert_eq!(bob.pending_invitations(), &[alice.public_key()]);
        bob.accept_invitation(alice.public_key()).expect("accept");
        assert!(bob.pending_invitations().is_empty());
        assert_eq!(bob.active_peers(), vec![alice.public_key()]);
        let _ = &mut alice;
    }

    #[test]
    fn decline_invitation_discards() {
        let mut rng = StdRng::seed_from_u64(23);
        let alice = client("alice", 24, 1);
        let mut bob = client("bob", 25, 1);
        let inv = SealedInvitation::seal(&mut rng, &alice.public_key(), &bob.public_key());
        bob.scan_invitation_drop(&[inv]);
        bob.decline_invitation(&alice.public_key());
        assert!(bob.pending_invitations().is_empty());
        assert!(bob.active_peers().is_empty());
    }

    #[test]
    fn expire_pending_bounds_memory() {
        let mut rng = StdRng::seed_from_u64(26);
        let server_pks: Vec<PublicKey> =
            (0..2).map(|_| Keypair::generate(&mut rng).public).collect();
        let mut alice = client("alice", 27, 1);
        for round in 0..10 {
            let _ = alice.build_conversation_requests(&mut rng, round, &server_pks);
        }
        assert_eq!(alice.pending.len(), 10);
        alice.expire_pending(8);
        assert_eq!(alice.pending.len(), 2);
    }

    #[test]
    fn replies_for_unknown_rounds_are_ignored() {
        let mut alice = client("alice", 28, 1);
        alice.handle_conversation_replies(99, vec![Some(vec![0u8; 300])]);
        // No panic, no state change.
        assert!(alice.pending.is_empty());
    }

    #[test]
    fn queue_message_to_ended_conversation_fails() {
        let mut alice = client("alice", 30, 1);
        let bob = client("bob", 31, 1);
        alice.start_conversation(bob.public_key()).expect("start");
        alice
            .queue_message(&bob.public_key(), b"hi")
            .expect("queue");
        alice.end_conversation(&bob.public_key()).expect("end");
        // The slot is gone: further queues are rejected, not silently
        // dropped into a dead send queue.
        assert_eq!(
            alice.queue_message(&bob.public_key(), b"too late"),
            Err(ClientError::NoConversationWith)
        );
        assert!(alice.delivered_from(&bob.public_key()).is_empty());
        // Restarting yields a fresh conversation with no stale state.
        alice.start_conversation(bob.public_key()).expect("restart");
        assert!(alice.queue_message(&bob.public_key(), b"fresh").is_ok());
        assert!(!alice.conversation_idle(&bob.public_key()));
    }

    #[test]
    fn start_conversation_twice_occupies_one_slot() {
        // Starting twice with the same peer is idempotent — it must not
        // burn a second slot, and one `end` fully clears it.
        let mut alice = client("alice", 32, 2);
        let bob = client("bob", 33, 1);
        let carol = client("carol", 34, 1);
        assert_eq!(alice.start_conversation(bob.public_key()), Ok(0));
        assert_eq!(alice.start_conversation(bob.public_key()), Ok(0));
        assert_eq!(alice.active_peers(), vec![bob.public_key()]);
        // The second slot is still free for Carol.
        assert_eq!(alice.start_conversation(carol.public_key()), Ok(1));
        alice.end_conversation(&bob.public_key()).expect("end");
        // No phantom second entry for Bob.
        assert_eq!(
            alice.end_conversation(&bob.public_key()),
            Err(ClientError::NoConversationWith)
        );
        assert_eq!(alice.active_peers(), vec![carol.public_key()]);
    }

    #[test]
    fn redial_after_missed_dialing_round_resends_invitation() {
        // A caller whose invitation the callee never downloaded (the
        // drop was overwritten by a later dialing round) re-dials: the
        // same-peer slot is reused without error and a second *real*
        // invitation goes out. With an empty chain suffix the dial
        // request is observable in plaintext, so the test can tell real
        // invitations from no-op writes.
        let mut rng = StdRng::seed_from_u64(35);
        let mut alice = client("alice", 36, 1);
        let bob = client("bob", 37, 1);
        let target = InvitationDropIndex::for_recipient(&bob.public_key(), 4);

        alice.dial(bob.public_key()).expect("first dial");
        let r0 = DialRequest::decode(&alice.build_dial_request(&mut rng, 0, 4, &[]))
            .expect("plain request");
        assert_eq!(r0.drop, target, "first dial sends a real invitation");
        assert!(
            r0.invitation
                .try_open(&bob.keypair.secret, &bob.public_key())
                .is_some(),
            "the invitation opens for the callee"
        );

        // Nothing queued: the next dialing round is a no-op write.
        let r1 = DialRequest::decode(&alice.build_dial_request(&mut rng, 1, 4, &[]))
            .expect("plain request");
        assert!(
            r1.drop.is_noop(),
            "idle dialing rounds write to the no-op drop"
        );

        // Re-dial the same peer: the occupied slot is *not* an error
        // (the conversation is already entered) and a fresh real
        // invitation is queued.
        alice.dial(bob.public_key()).expect("re-dial same peer");
        assert_eq!(alice.active_peers(), vec![bob.public_key()]);
        let r2 = DialRequest::decode(&alice.build_dial_request(&mut rng, 2, 4, &[]))
            .expect("plain request");
        assert_eq!(r2.drop, target, "re-dial sends a second real invitation");
        assert!(r2
            .invitation
            .try_open(&bob.keypair.secret, &bob.public_key())
            .is_some());
    }

    #[test]
    fn dial_with_busy_slots_queues_nothing() {
        let mut rng = StdRng::seed_from_u64(38);
        let mut alice = client("alice", 39, 1);
        let bob = client("bob", 43, 1);
        let carol = client("carol", 44, 1);
        alice.dial(bob.public_key()).expect("dial bob");
        // The only slot is Bob's: dialing Carol fails...
        assert_eq!(
            alice.dial(carol.public_key()),
            Err(ClientError::AllSlotsBusy)
        );
        // ...and must not have queued an invitation for her: after
        // Bob's invitation drains, the next request is a no-op.
        let r0 = DialRequest::decode(&alice.build_dial_request(&mut rng, 0, 2, &[]))
            .expect("plain request");
        assert!(!r0.drop.is_noop(), "bob's invitation goes first");
        let r1 = DialRequest::decode(&alice.build_dial_request(&mut rng, 1, 2, &[]))
            .expect("plain request");
        assert!(r1.drop.is_noop(), "no phantom invitation for carol");
    }
}
