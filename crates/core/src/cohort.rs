//! Struct-of-arrays client cohorts for million-client rounds.
//!
//! A [`ClientCohort`] holds N clients' long-term keys, conversation
//! state and reply keys in flat parallel arrays instead of N
//! [`Client`](crate::client::Client) objects. Each round it builds all
//! requests directly into one [`RoundBuffer`] arena — no per-onion
//! `Vec`, no per-client request list — parallelised over
//! [`vuvuzela_net::WorkerPool`] strides, and ingests the round's
//! replies the same way. One shared set of per-server DH tables serves
//! the whole cohort.
//!
//! The cohort is **byte-identical** to N individual `Client`s driven
//! over the same derived RNG schedule: client `i`'s round randomness is
//! [`client_round_rng`]`(seed, round, i)` and its keypair comes from
//! the shared [`key_rng`]`(seed)` stream in join order. The
//! `cohort_equivalence` integration test pins this, which is what makes
//! the per-object `Client` the proptested reference and the cohort a
//! pure representation change.
//!
//! Cohort identities never dial: every dialing round each member writes
//! to the no-op drop (§5.2), so the cohort is pure cover traffic for
//! the dialing protocol while still supporting real cohort-internal
//! conversations (see [`ClientCohort::start_conversation`]).

use crate::client::{Client, ClientError, Conversation};
use crate::config::SystemConfig;
use crate::roundbuf::RoundBuffer;
use crate::server::round_rng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use vuvuzela_crypto::onion::{self, LayerKey};
use vuvuzela_crypto::x25519::{Keypair, PublicKey, SecretKey};
use vuvuzela_net::WorkerPool;
use vuvuzela_wire::conversation::{ConversationKeys, ExchangeRequest};
use vuvuzela_wire::dialing::DialRequest;
use vuvuzela_wire::message::FramedMessage;
use vuvuzela_wire::{DIAL_REQUEST_LEN, EXCHANGE_REQUEST_LEN, EXCHANGE_RESPONSE_LEN, MESSAGE_LEN};

/// splitmix64 finalisation, the same mixer [`round_rng`] uses.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for client `index`'s requests in `round`, as a pure function
/// of `(seed, round, index)`. Worker count and scheduling order
/// therefore cannot change any client's randomness — the foundation of
/// the cohort's byte-equivalence with per-object clients, and usable
/// directly by harnesses that drive individual [`Client`]s on the same
/// schedule.
#[must_use]
pub fn client_round_rng(seed: u64, round: u64, index: u64) -> StdRng {
    let client_seed = splitmix64(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    round_rng(client_seed, round)
}

/// The keypair-generation RNG for a cohort with the given seed. Client
/// `i`'s keypair is the `i`-th [`Keypair::generate`] drawn from this
/// stream, regardless of how many [`ClientCohort::join`] calls grew the
/// cohort.
#[must_use]
pub fn key_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ 0x6A09_E667_F3BC_C909))
}

/// Layer keys for one in-flight conversation round, flattened
/// client-major: request `f`'s keys live at
/// `[f * chain_len .. (f + 1) * chain_len]`.
struct PendingBatch {
    keys: Vec<LayerKey>,
}

/// One client's build-stage work item: its index, its conversation
/// slots, and its stretch of the round arena.
type BuildItem<'a> = (usize, &'a mut [Option<Box<Conversation>>], &'a mut [u8]);

/// One client's reply-ingestion work item: its conversation slots, its
/// replies, and the layer keys recorded at build time.
type IngestItem<'a> = (
    &'a mut [Option<Box<Conversation>>],
    &'a [Vec<u8>],
    &'a [LayerKey],
);

/// A struct-of-arrays population of Vuvuzela clients; see the module
/// docs.
pub struct ClientCohort {
    config: SystemConfig,
    seed: u64,
    server_pks: Vec<PublicKey>,
    tables: Arc<Vec<onion::PrecomputedServer>>,
    /// Persisted across [`ClientCohort::join`] calls so growth order
    /// does not change anyone's identity.
    key_rng: StdRng,
    secrets: Vec<SecretKey>,
    publics: Vec<PublicKey>,
    by_key: HashMap<PublicKey, usize>,
    /// `conversation_slots` entries per client, client-major. Boxed so
    /// the idle (overwhelmingly common) case costs one pointer per
    /// slot.
    slots: Vec<Option<Box<Conversation>>>,
    pending: HashMap<u64, PendingBatch>,
    /// Pipeline window, mirroring [`Client::window`].
    pub window: usize,
}

impl ClientCohort {
    /// Creates an empty cohort for a chain. `tables` must be the shared
    /// per-server DH tables for exactly `server_pks` (see
    /// [`Client::chain_tables`]).
    ///
    /// # Panics
    ///
    /// Panics if `tables` does not have one entry per server key or the
    /// config is invalid.
    #[must_use]
    pub fn new(
        config: SystemConfig,
        seed: u64,
        server_pks: &[PublicKey],
        tables: Arc<Vec<onion::PrecomputedServer>>,
    ) -> ClientCohort {
        config.validate();
        assert_eq!(tables.len(), server_pks.len(), "one table per server");
        ClientCohort {
            config,
            seed,
            server_pks: server_pks.to_vec(),
            tables,
            key_rng: key_rng(seed),
            secrets: Vec::new(),
            publics: Vec::new(),
            by_key: HashMap::new(),
            slots: Vec::new(),
            pending: HashMap::new(),
            window: 4,
        }
    }

    /// Like [`ClientCohort::new`], building the DH tables itself.
    #[must_use]
    pub fn with_own_tables(
        config: SystemConfig,
        seed: u64,
        server_pks: &[PublicKey],
    ) -> ClientCohort {
        let tables = Client::chain_tables(server_pks);
        ClientCohort::new(config, seed, server_pks, tables)
    }

    /// Adds `count` fresh clients (idle, no conversations) to the
    /// cohort. Keypairs continue the cohort's [`key_rng`] stream.
    pub fn join(&mut self, count: usize) {
        self.secrets.reserve(count);
        self.publics.reserve(count);
        self.slots.reserve(count * self.config.conversation_slots);
        for _ in 0..count {
            let keypair = Keypair::generate(&mut self.key_rng);
            self.by_key.insert(keypair.public, self.publics.len());
            self.secrets.push(keypair.secret);
            self.publics.push(keypair.public);
            for _ in 0..self.config.conversation_slots {
                self.slots.push(None);
            }
        }
    }

    /// Number of clients in the cohort.
    #[must_use]
    pub fn len(&self) -> usize {
        self.publics.len()
    }

    /// Whether the cohort holds no clients.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.publics.is_empty()
    }

    /// The system config the cohort was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Client `index`'s long-term public key (its identity, §2.3).
    #[must_use]
    pub fn public_key(&self, index: usize) -> PublicKey {
        self.publics[index]
    }

    fn slot_range(&self, index: usize) -> core::ops::Range<usize> {
        let per = self.config.conversation_slots;
        index * per..(index + 1) * per
    }

    fn slot_of(&self, index: usize, peer: &PublicKey) -> Option<usize> {
        self.slots[self.slot_range(index)]
            .iter()
            .position(|s| s.as_ref().is_some_and(|c| c.peer == *peer))
            .map(|p| index * self.config.conversation_slots + p)
    }

    /// Enters client `index` into a conversation with `peer` in its
    /// first free slot (mirrors [`Client::start_conversation`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::AllSlotsBusy`] when every slot is taken.
    pub fn start_conversation(&mut self, index: usize, peer: PublicKey) -> Result<(), ClientError> {
        if self.slot_of(index, &peer).is_some() {
            return Ok(()); // already talking; idempotent
        }
        let range = self.slot_range(index);
        let free = self.slots[range.clone()]
            .iter()
            .position(Option::is_none)
            .ok_or(ClientError::AllSlotsBusy)?;
        let keys = ConversationKeys::derive(&self.secrets[index], &self.publics[index], &peer);
        self.slots[range.start + free] = Some(Box::new(Conversation::new(peer, keys)));
        Ok(())
    }

    /// Starts a mutual conversation between cohort clients `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`ClientError::AllSlotsBusy`] if either side has no free slot
    /// (side `a` may keep the half-open slot, exactly as two individual
    /// clients would).
    pub fn pair(&mut self, a: usize, b: usize) -> Result<(), ClientError> {
        self.start_conversation(a, self.publics[b])?;
        self.start_conversation(b, self.publics[a])
    }

    /// Queues a message from client `index` to its partner `peer`
    /// (mirrors [`Client::queue_message`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::NoConversationWith`] without an active
    /// conversation; [`ClientError::MessageTooLong`] for oversized
    /// bodies.
    pub fn queue_message(
        &mut self,
        index: usize,
        peer: &PublicKey,
        body: &[u8],
    ) -> Result<(), ClientError> {
        if body.len() > vuvuzela_wire::message::MAX_BODY_LEN {
            return Err(ClientError::MessageTooLong {
                limit: vuvuzela_wire::message::MAX_BODY_LEN,
            });
        }
        let slot = self
            .slot_of(index, peer)
            .ok_or(ClientError::NoConversationWith)?;
        self.slots[slot]
            .as_mut()
            .expect("slot_of returned an occupied slot")
            .send_queue
            .push_back(body.to_vec());
        Ok(())
    }

    /// Messages delivered so far to client `index` by its conversation
    /// with `peer`, in order.
    #[must_use]
    pub fn delivered_from(&self, index: usize, peer: &PublicKey) -> Vec<Vec<u8>> {
        self.slot_of(index, peer)
            .and_then(|s| self.slots[s].as_ref())
            .map(|c| c.delivered.clone())
            .unwrap_or_default()
    }

    /// Cohort-internal mutual conversation pairs: unordered client
    /// pairs `{i, j}` where each currently holds the other as a
    /// partner. This is the cohort's contribution to a round's real
    /// `m2` (§5.4); conversations with non-cohort keys are not counted.
    #[must_use]
    pub fn mutual_pairs(&self) -> u64 {
        let per = self.config.conversation_slots;
        let mut pairs = 0;
        for (i, chunk) in self.slots.chunks(per).enumerate() {
            for conversation in chunk.iter().flatten() {
                if let Some(&j) = self.by_key.get(&conversation.peer) {
                    if j > i && self.slot_of(j, &self.publics[i]).is_some() {
                        pairs += 1;
                    }
                }
            }
        }
        pairs
    }

    /// Builds one conversation round's requests for the whole cohort —
    /// exactly one onion per slot per client, real or fake, written
    /// straight into a flat [`RoundBuffer`] (stride = onion width, no
    /// per-onion allocation) in client-major slot order. Work is split
    /// across `config.workers` pool workers by client stripe; layer
    /// keys are recorded for [`ClientCohort::handle_conversation_replies`].
    ///
    /// Byte-identical to each client running
    /// [`Client::build_conversation_requests`] with
    /// [`client_round_rng`]`(seed, round, index)`.
    pub fn build_conversation_round(&mut self, round: u64) -> RoundBuffer {
        let chain_len = self.server_pks.len();
        let slots_per = self.config.conversation_slots;
        let width = onion::wrapped_len(EXCHANGE_REQUEST_LEN, chain_len);
        let n = self.publics.len();
        let mut buf = RoundBuffer::with_capacity(width, width, n * slots_per);
        for _ in 0..n * slots_per {
            buf.push_with(|_| {});
        }

        let retransmit_after = self.config.retransmit_after;
        let window = self.window;
        let seed = self.seed;
        let tables: &[onion::PrecomputedServer] = &self.tables;
        let secrets = &self.secrets;
        let publics = &self.publics;
        let items: Vec<BuildItem<'_>> = self
            .slots
            .chunks_mut(slots_per)
            .zip(buf.arena_mut().chunks_mut(width * slots_per))
            .enumerate()
            .map(|(i, (slots, arena))| (i, slots, arena))
            .collect();

        let keys: Vec<Vec<LayerKey>> =
            WorkerPool::shared().map_vec(items, self.config.workers, |(i, slots, arena)| {
                let mut rng = client_round_rng(seed, round, i as u64);
                let mut keys = Vec::with_capacity(slots_per * chain_len);
                for (slot, onion_bytes) in slots.iter_mut().zip(arena.chunks_mut(width)) {
                    let payload = &mut onion_bytes[32 * chain_len..];
                    match slot {
                        Some(conversation) => {
                            // Algorithm 1 step 1a: real exchange.
                            let frame = conversation.next_frame(round, retransmit_after, window);
                            let sealed = conversation.keys.seal_message(round, &frame.encode());
                            ExchangeRequest {
                                drop: conversation.keys.drop_id(round),
                                sealed_message: sealed,
                            }
                            .encode_into(payload);
                        }
                        None => {
                            // Step 1b: fake request against a random partner.
                            let fake = ConversationKeys::fake(&mut rng, &secrets[i], &publics[i]);
                            let sealed = fake.seal_message(round, &[0u8; MESSAGE_LEN]);
                            ExchangeRequest {
                                drop: fake.drop_id(round),
                                sealed_message: sealed,
                            }
                            .encode_into(payload);
                        }
                    }
                    // Step 2: onion wrap, in place.
                    keys.extend(onion::wrap_into_with(
                        &mut rng,
                        tables,
                        round,
                        onion_bytes,
                        EXCHANGE_REQUEST_LEN,
                    ));
                }
                keys
            });
        self.pending.insert(
            round,
            PendingBatch {
                keys: keys.into_iter().flatten().collect(),
            },
        );
        buf
    }

    /// Processes one completed round's replies (Algorithm 1 step 3), in
    /// the same client-major slot order the requests were built in,
    /// parallelised by client stripe.
    ///
    /// # Panics
    ///
    /// Panics if `replies` does not hold exactly one reply per request
    /// the cohort sent for `round`; a no-op for unknown rounds.
    pub fn handle_conversation_replies(&mut self, round: u64, replies: &[Vec<u8>]) {
        let Some(PendingBatch { keys }) = self.pending.remove(&round) else {
            return; // a round we never participated in (or already expired)
        };
        let chain_len = self.server_pks.len();
        let slots_per = self.config.conversation_slots;
        assert_eq!(
            replies.len(),
            self.publics.len() * slots_per,
            "one reply per cohort request"
        );

        let items: Vec<IngestItem<'_>> = self
            .slots
            .chunks_mut(slots_per)
            .zip(replies.chunks(slots_per))
            .zip(keys.chunks(slots_per * chain_len))
            .map(|((slots, replies), keys)| (slots, replies, keys))
            .collect();

        WorkerPool::shared().map_vec(items, self.config.workers, |(slots, replies, keys)| {
            for (f, (slot, reply)) in slots.iter_mut().zip(replies).enumerate() {
                let keys = &keys[f * chain_len..(f + 1) * chain_len];
                let Ok(sealed) = onion::unwrap_reply_layers(keys, round, reply) else {
                    continue; // tampered or misrouted reply
                };
                if sealed.len() != EXCHANGE_RESPONSE_LEN {
                    continue;
                }
                if let Some(conversation) = slot {
                    // A decrypt failure means the partner was absent
                    // this round (server filler) — normal, not an error.
                    if let Ok(padded) = conversation.keys.open_message(round, &sealed) {
                        if let Ok(frame) = FramedMessage::decode(&padded) {
                            conversation.receive_frame(frame);
                        }
                    }
                }
            }
        });
    }

    /// Discards reply keys for rounds older than `round`; bounds memory
    /// when an adversary blackholes replies.
    pub fn expire_pending(&mut self, round: u64) {
        self.pending.retain(|&r, _| r >= round);
    }

    /// Builds one dialing round's requests: every cohort client writes
    /// to the no-op drop (§5.2 — the cohort never dials, so its dialing
    /// traffic is pure cover). One onion per client, straight into a
    /// flat [`RoundBuffer`]; byte-identical to each client running
    /// [`Client::build_dial_request`] with an empty dial queue over
    /// [`client_round_rng`].
    pub fn build_dialing_round(&mut self, round: u64) -> RoundBuffer {
        let chain_len = self.server_pks.len();
        let width = onion::wrapped_len(DIAL_REQUEST_LEN, chain_len);
        let n = self.publics.len();
        let mut buf = RoundBuffer::with_capacity(width, width, n);
        for _ in 0..n {
            buf.push_with(|_| {});
        }
        let seed = self.seed;
        let tables: &[onion::PrecomputedServer] = &self.tables;
        let items: Vec<(usize, &mut [u8])> =
            buf.arena_mut().chunks_mut(width).enumerate().collect();
        WorkerPool::shared().map_vec(items, self.config.workers, |(i, onion_bytes)| {
            let mut rng = client_round_rng(seed, round, i as u64);
            let request = DialRequest::noop(&mut rng);
            request.encode_into(&mut onion_bytes[32 * chain_len..]);
            // Same bytes and RNG consumption as `wrap_into_with`; the
            // cover path never sees a reply, so the keys are dropped.
            onion::wrap_noise_into(&mut rng, tables, round, onion_bytes, DIAL_REQUEST_LEN);
        });
        buf
    }
}

/// Builds one conversation round's requests for a batch of individual
/// [`Client`]s in parallel, each client `i` (by position in `clients`)
/// drawing its randomness from [`client_round_rng`]`(seed, round, i)`.
/// Returns each client's request list in input order — feed to
/// [`crate::entry::multiplex`]. This is the harness-side sibling of
/// [`ClientCohort::build_conversation_round`] for populations that need
/// per-object clients (churn, dialing scripts) but not a serial build
/// loop.
pub fn build_client_requests_parallel(
    clients: Vec<&mut Client>,
    seed: u64,
    round: u64,
    server_pks: &[PublicKey],
    workers: usize,
) -> Vec<Vec<Vec<u8>>> {
    let items: Vec<(usize, &mut Client)> = clients.into_iter().enumerate().collect();
    WorkerPool::shared().map_vec(items, workers, |(i, client)| {
        let mut rng = client_round_rng(seed, round, i as u64);
        client.build_conversation_requests(&mut rng, round, server_pks)
    })
}

/// Dialing-round sibling of [`build_client_requests_parallel`]: one
/// dial request per client (real if queued, else a no-op write), built
/// in parallel over the same per-client RNG schedule.
pub fn build_dial_requests_parallel(
    clients: Vec<&mut Client>,
    seed: u64,
    round: u64,
    num_drops: u32,
    server_pks: &[PublicKey],
    workers: usize,
) -> Vec<Vec<u8>> {
    let items: Vec<(usize, &mut Client)> = clients.into_iter().enumerate().collect();
    WorkerPool::shared().map_vec(items, workers, |(i, client)| {
        let mut rng = client_round_rng(seed, round, i as u64);
        client.build_dial_request(&mut rng, round, num_drops, server_pks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};

    fn cfg(slots: usize, workers: usize) -> SystemConfig {
        SystemConfig {
            chain_len: 2,
            conversation_noise: NoiseDistribution::new(1.0, 1.0),
            dialing_noise: NoiseDistribution::new(1.0, 1.0),
            noise_mode: NoiseMode::Off,
            workers,
            conversation_slots: slots,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    fn server_pks(n: usize) -> Vec<PublicKey> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n).map(|_| Keypair::generate(&mut rng).public).collect()
    }

    #[test]
    fn cohort_requests_match_individual_clients() {
        let pks = server_pks(2);
        for workers in [1, 3] {
            let mut cohort = ClientCohort::with_own_tables(cfg(2, workers), 7, &pks);
            cohort.join(3);
            cohort.join(2); // growth continues the same key stream
            cohort.pair(0, 4).expect("pair");
            cohort
                .queue_message(0, &cohort.public_key(4), b"hello")
                .expect("queue");

            // The per-object reference population on the same schedule.
            let mut krng = key_rng(7);
            let tables = Client::chain_tables(&pks);
            let mut clients: Vec<Client> = (0..5)
                .map(|i| {
                    let mut c = Client::new(
                        format!("c{i}"),
                        Keypair::generate(&mut krng),
                        cfg(2, workers),
                    );
                    c.set_chain_tables(tables.clone(), &pks);
                    c
                })
                .collect();
            let pk4 = clients[4].public_key();
            let pk0 = clients[0].public_key();
            clients[0].start_conversation(pk4).expect("start");
            clients[4].start_conversation(pk0).expect("start");
            clients[0].queue_message(&pk4, b"hello").expect("queue");

            assert_eq!(cohort.mutual_pairs(), 1);
            for round in 0..2u64 {
                let buf = cohort.build_conversation_round(round);
                let mut reference = Vec::new();
                for (i, client) in clients.iter_mut().enumerate() {
                    let mut rng = client_round_rng(7, round, i as u64);
                    reference.extend(client.build_conversation_requests(&mut rng, round, &pks));
                }
                assert_eq!(buf.to_vecs(), reference, "workers = {workers}");
            }
        }
    }

    #[test]
    fn dialing_round_is_all_noops_and_matches_clients() {
        let pks = server_pks(2);
        let mut cohort = ClientCohort::with_own_tables(cfg(1, 2), 11, &pks);
        cohort.join(4);
        let buf = cohort.build_dialing_round(3);
        assert_eq!(buf.len(), 4);

        let mut krng = key_rng(11);
        let tables = Client::chain_tables(&pks);
        for i in 0..4u64 {
            let mut client = Client::new("c", Keypair::generate(&mut krng), cfg(1, 2));
            client.set_chain_tables(tables.clone(), &pks);
            let mut rng = client_round_rng(11, 3, i);
            let reference = client.build_dial_request(&mut rng, 3, 16, &pks);
            assert_eq!(buf.slot(i as usize), &reference[..], "client {i}");
        }
    }

    #[test]
    fn parallel_builders_match_serial_loop() {
        let pks = server_pks(2);
        let tables = Client::chain_tables(&pks);
        let make = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Client::new("c", Keypair::generate(&mut rng), cfg(1, 4));
            c.set_chain_tables(tables.clone(), &pks);
            c
        };
        let mut a: Vec<Client> = (0..6).map(|i| make(100 + i)).collect();
        let mut b: Vec<Client> = (0..6).map(|i| make(100 + i)).collect();

        let parallel = build_client_requests_parallel(a.iter_mut().collect(), 5, 2, &pks, 4);
        let serial: Vec<Vec<Vec<u8>>> = b
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                let mut rng = client_round_rng(5, 2, i as u64);
                c.build_conversation_requests(&mut rng, 2, &pks)
            })
            .collect();
        assert_eq!(parallel, serial);

        let parallel = build_dial_requests_parallel(a.iter_mut().collect(), 5, 3, 8, &pks, 4);
        let serial: Vec<Vec<u8>> = b
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                let mut rng = client_round_rng(5, 3, i as u64);
                c.build_dial_request(&mut rng, 3, 8, &pks)
            })
            .collect();
        assert_eq!(parallel, serial);
    }
}
