//! Deployment-wide configuration.
//!
//! [`SystemConfig`] is the one config surface every execution mode
//! shares: the in-process chain, the streaming pipeline, the simulator,
//! and the deployment bins. The bins read it from a JSON deployment
//! file, so the struct round-trips through `serde_json` values with
//! **strict** field checking — an unknown key is a config-file typo and
//! must be rejected, not silently ignored.

use serde_json::{json, Value};
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// Configuration shared by every component of a Vuvuzela deployment.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of mix servers in the chain (the paper evaluates 1–6,
    /// default 3 as in §8.1).
    pub chain_len: usize,
    /// Conversation cover-traffic distribution per noising server
    /// (paper default µ = 300,000, b = 13,800 at production scale).
    pub conversation_noise: NoiseDistribution,
    /// Dialing cover-traffic distribution per server per invitation drop
    /// (paper default µ = 13,000, b = 770).
    pub dialing_noise: NoiseDistribution,
    /// How noise counts are drawn. The paper's evaluation uses
    /// deterministic noise "to not let noise affect the clarity of the
    /// graphs" (§8.1); production uses sampling.
    pub noise_mode: NoiseMode,
    /// Worker threads per server for parallel cryptography.
    pub workers: usize,
    /// Conversation slots per client per round (§9 "Multiple
    /// conversations": a fixed a-priori maximum; the paper's prototype
    /// uses 1).
    pub conversation_slots: usize,
    /// Rounds a client waits for an ack before re-sending a message.
    pub retransmit_after: u64,
    /// Dead-drop shards at the last server: the conversation exchange
    /// partitions its drop map by ID range into this many independent
    /// shards, paired on worker strands. Output is byte-identical for
    /// every shard count (the merge is deterministic); the knob only
    /// controls parallelism and is the seam for Atom-style scale-out of
    /// a single logical round.
    pub exchange_shards: usize,
}

impl Default for SystemConfig {
    /// A laptop-scale configuration: 3 servers, deterministic noise with
    /// a small µ, one conversation slot.
    fn default() -> Self {
        SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(50.0, 10.0),
            dialing_noise: NoiseDistribution::new(10.0, 2.0),
            noise_mode: NoiseMode::Deterministic,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }
}

impl SystemConfig {
    /// The paper's production parameters (§8.1): 3 servers,
    /// µ=300,000/b=13,800 conversation noise, µ=13,000/b=770 dialing
    /// noise, sampled. Running a full round at this scale takes minutes
    /// of CPU on a laptop — used by the extrapolating benchmarks, not by
    /// tests.
    #[must_use]
    pub fn paper_scale() -> Self {
        SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(300_000.0, 13_800.0),
            dialing_noise: NoiseDistribution::new(13_000.0, 770.0),
            noise_mode: NoiseMode::Sampled,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    /// Serializes to a JSON value ([`SystemConfig::from_json`] inverts
    /// it exactly; object keys render sorted, so the canonical pretty
    /// form is deterministic and digestable).
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "chain_len": self.chain_len,
            "conversation_noise": noise_to_json(self.conversation_noise),
            "dialing_noise": noise_to_json(self.dialing_noise),
            "noise_mode": noise_mode_str(self.noise_mode),
            "workers": self.workers,
            "conversation_slots": self.conversation_slots,
            "retransmit_after": self.retransmit_after,
            "exchange_shards": self.exchange_shards,
        })
    }

    /// Deserializes from a JSON value, rejecting unknown fields.
    ///
    /// # Errors
    ///
    /// A description of the first missing, unknown, or ill-typed field.
    pub fn from_json(value: &Value) -> Result<SystemConfig, String> {
        let map = expect_object(value, "system config")?;
        reject_unknown(
            map,
            &[
                "chain_len",
                "conversation_noise",
                "dialing_noise",
                "noise_mode",
                "workers",
                "conversation_slots",
                "retransmit_after",
                "exchange_shards",
            ],
            "system config",
        )?;
        Ok(SystemConfig {
            chain_len: get_usize(map, "chain_len")?,
            conversation_noise: noise_from_json(require(map, "conversation_noise")?)?,
            dialing_noise: noise_from_json(require(map, "dialing_noise")?)?,
            noise_mode: noise_mode_from_str(
                require(map, "noise_mode")?
                    .as_str()
                    .ok_or("noise_mode must be a string")?,
            )?,
            workers: get_usize(map, "workers")?,
            conversation_slots: get_usize(map, "conversation_slots")?,
            retransmit_after: get_u64(map, "retransmit_after")?,
            exchange_shards: get_usize(map, "exchange_shards")?,
        })
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length chain or zero conversation slots, which
    /// have no meaningful protocol interpretation.
    pub fn validate(&self) {
        assert!(self.chain_len >= 1, "chain must have at least one server");
        assert!(
            self.conversation_slots >= 1,
            "clients need at least one conversation slot"
        );
        assert!(self.workers >= 1, "need at least one worker");
        assert!(
            self.exchange_shards >= 1,
            "need at least one dead-drop shard"
        );
    }
}

fn noise_to_json(noise: NoiseDistribution) -> Value {
    json!({ "mu": noise.mu, "b": noise.b })
}

fn noise_from_json(value: &Value) -> Result<NoiseDistribution, String> {
    let map = expect_object(value, "noise distribution")?;
    reject_unknown(map, &["mu", "b"], "noise distribution")?;
    let mu = require(map, "mu")?.as_f64().ok_or("mu must be a number")?;
    let b = require(map, "b")?.as_f64().ok_or("b must be a number")?;
    Ok(NoiseDistribution::new(mu, b))
}

fn noise_mode_str(mode: NoiseMode) -> &'static str {
    match mode {
        NoiseMode::Sampled => "sampled",
        NoiseMode::Deterministic => "deterministic",
        NoiseMode::Off => "off",
    }
}

fn noise_mode_from_str(s: &str) -> Result<NoiseMode, String> {
    match s {
        "sampled" => Ok(NoiseMode::Sampled),
        "deterministic" => Ok(NoiseMode::Deterministic),
        "off" => Ok(NoiseMode::Off),
        other => Err(format!(
            "unknown noise_mode {other:?} (expected sampled / deterministic / off)"
        )),
    }
}

/// The object map inside `value`, or an error naming `what`.
///
/// These small helpers are shared with the deployment-file parser in
/// the umbrella crate, which layers its own strict object on top of
/// [`SystemConfig`].
pub fn expect_object<'v>(
    value: &'v Value,
    what: &str,
) -> Result<&'v std::collections::BTreeMap<String, Value>, String> {
    match value {
        Value::Object(map) => Ok(map),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

/// Fails on any key of `map` not listed in `known` — a config-file typo
/// must be an error, never silently ignored.
pub fn reject_unknown(
    map: &std::collections::BTreeMap<String, Value>,
    known: &[&str],
    what: &str,
) -> Result<(), String> {
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?} in {what}"));
        }
    }
    Ok(())
}

/// The value at `key`, or an error naming the missing field.
pub fn require<'v>(
    map: &'v std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<&'v Value, String> {
    map.get(key).ok_or(format!("missing field {key:?}"))
}

/// A required `u64` field.
pub fn get_u64(map: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    require(map, key)?
        .as_u64()
        .ok_or(format!("field {key:?} must be a non-negative integer"))
}

/// A required `usize` field.
pub fn get_usize(
    map: &std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<usize, String> {
    get_u64(map, key).map(|v| v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SystemConfig::default().validate();
    }

    #[test]
    fn json_roundtrip_is_exact() {
        for cfg in [
            SystemConfig::default(),
            SystemConfig::paper_scale(),
            SystemConfig {
                noise_mode: NoiseMode::Off,
                chain_len: 5,
                ..SystemConfig::default()
            },
        ] {
            let value = cfg.to_json();
            let back = SystemConfig::from_json(&value).expect("round-trips");
            assert_eq!(back.chain_len, cfg.chain_len);
            assert_eq!(back.conversation_noise, cfg.conversation_noise);
            assert_eq!(back.dialing_noise, cfg.dialing_noise);
            assert_eq!(back.noise_mode, cfg.noise_mode);
            assert_eq!(back.workers, cfg.workers);
            assert_eq!(back.conversation_slots, cfg.conversation_slots);
            assert_eq!(back.retransmit_after, cfg.retransmit_after);
            assert_eq!(back.exchange_shards, cfg.exchange_shards);
            // The canonical pretty rendering is stable through the trip.
            assert_eq!(
                serde_json::to_string_pretty(&back.to_json()).expect("render"),
                serde_json::to_string_pretty(&value).expect("render"),
            );
        }
    }

    #[test]
    fn unknown_field_rejected() {
        let mut value = SystemConfig::default().to_json();
        if let Value::Object(map) = &mut value {
            map.insert("chain_length".to_string(), Value::from(3u64));
        }
        let err = SystemConfig::from_json(&value).expect_err("typo must fail");
        assert!(err.contains("chain_length"), "error names the field: {err}");

        let mut nested = SystemConfig::default().to_json();
        if let Value::Object(map) = &mut nested {
            map.insert(
                "conversation_noise".to_string(),
                json!({"mu": 1.0, "sigma": 2.0}),
            );
        }
        let err = SystemConfig::from_json(&nested).expect_err("nested typo must fail");
        assert!(err.contains("sigma"), "error names the field: {err}");
    }

    #[test]
    fn missing_and_mistyped_fields_rejected() {
        let mut value = SystemConfig::default().to_json();
        if let Value::Object(map) = &mut value {
            map.remove("workers");
        }
        assert!(SystemConfig::from_json(&value)
            .expect_err("missing field")
            .contains("workers"));

        let mut value = SystemConfig::default().to_json();
        if let Value::Object(map) = &mut value {
            map.insert("noise_mode".to_string(), Value::from(3u64));
        }
        assert!(SystemConfig::from_json(&value).is_err());
    }

    #[test]
    fn paper_scale_matches_section_8_1() {
        let cfg = SystemConfig::paper_scale();
        cfg.validate();
        assert_eq!(cfg.chain_len, 3);
        assert_eq!(cfg.conversation_noise.mu, 300_000.0);
        assert_eq!(cfg.dialing_noise.mu, 13_000.0);
        assert_eq!(cfg.noise_mode, NoiseMode::Sampled);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_chain_rejected() {
        let cfg = SystemConfig {
            chain_len: 0,
            ..SystemConfig::default()
        };
        cfg.validate();
    }
}
