//! Deployment-wide configuration.

use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// Configuration shared by every component of a Vuvuzela deployment.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of mix servers in the chain (the paper evaluates 1–6,
    /// default 3 as in §8.1).
    pub chain_len: usize,
    /// Conversation cover-traffic distribution per noising server
    /// (paper default µ = 300,000, b = 13,800 at production scale).
    pub conversation_noise: NoiseDistribution,
    /// Dialing cover-traffic distribution per server per invitation drop
    /// (paper default µ = 13,000, b = 770).
    pub dialing_noise: NoiseDistribution,
    /// How noise counts are drawn. The paper's evaluation uses
    /// deterministic noise "to not let noise affect the clarity of the
    /// graphs" (§8.1); production uses sampling.
    pub noise_mode: NoiseMode,
    /// Worker threads per server for parallel cryptography.
    pub workers: usize,
    /// Conversation slots per client per round (§9 "Multiple
    /// conversations": a fixed a-priori maximum; the paper's prototype
    /// uses 1).
    pub conversation_slots: usize,
    /// Rounds a client waits for an ack before re-sending a message.
    pub retransmit_after: u64,
    /// Dead-drop shards at the last server: the conversation exchange
    /// partitions its drop map by ID range into this many independent
    /// shards, paired on worker strands. Output is byte-identical for
    /// every shard count (the merge is deterministic); the knob only
    /// controls parallelism and is the seam for Atom-style scale-out of
    /// a single logical round.
    pub exchange_shards: usize,
}

impl Default for SystemConfig {
    /// A laptop-scale configuration: 3 servers, deterministic noise with
    /// a small µ, one conversation slot.
    fn default() -> Self {
        SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(50.0, 10.0),
            dialing_noise: NoiseDistribution::new(10.0, 2.0),
            noise_mode: NoiseMode::Deterministic,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }
}

impl SystemConfig {
    /// The paper's production parameters (§8.1): 3 servers,
    /// µ=300,000/b=13,800 conversation noise, µ=13,000/b=770 dialing
    /// noise, sampled. Running a full round at this scale takes minutes
    /// of CPU on a laptop — used by the extrapolating benchmarks, not by
    /// tests.
    #[must_use]
    pub fn paper_scale() -> Self {
        SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(300_000.0, 13_800.0),
            dialing_noise: NoiseDistribution::new(13_000.0, 770.0),
            noise_mode: NoiseMode::Sampled,
            workers: vuvuzela_net::parallel::default_workers(),
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length chain or zero conversation slots, which
    /// have no meaningful protocol interpretation.
    pub fn validate(&self) {
        assert!(self.chain_len >= 1, "chain must have at least one server");
        assert!(
            self.conversation_slots >= 1,
            "clients need at least one conversation slot"
        );
        assert!(self.workers >= 1, "need at least one worker");
        assert!(
            self.exchange_shards >= 1,
            "need at least one dead-drop shard"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SystemConfig::default().validate();
    }

    #[test]
    fn paper_scale_matches_section_8_1() {
        let cfg = SystemConfig::paper_scale();
        cfg.validate();
        assert_eq!(cfg.chain_len, 3);
        assert_eq!(cfg.conversation_noise.mu, 300_000.0);
        assert_eq!(cfg.dialing_noise.mu, 13_000.0);
        assert_eq!(cfg.noise_mode, NoiseMode::Sampled);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_chain_rejected() {
        let cfg = SystemConfig {
            chain_len: 0,
            ..SystemConfig::default()
        };
        cfg.validate();
    }
}
