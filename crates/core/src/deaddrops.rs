//! The last server's dead-drop stores.
//!
//! [`ConversationDrops`] implements Algorithm 2 step 3b: match up the
//! round's exchange requests per dead drop; pairs swap their sealed
//! messages, singletons get indistinguishable random filler. Drops are
//! ephemeral — the table lives for exactly one round (§3.1).
//!
//! [`InvitationDrops`] implements the dialing side (§5): `m` large drops
//! accumulating sealed invitations (real + noise), downloadable in bulk.

use crate::observables::{ConversationObservables, DialingObservables};
use rand::{CryptoRng, RngCore};
use std::collections::HashMap;
use vuvuzela_net::parallel::WorkerPool;
use vuvuzela_wire::conversation::{ExchangeRequest, ExchangeResponse};
use vuvuzela_wire::deaddrop::{DeadDropId, InvitationDropIndex};
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};

/// The shard (out of `shards`) owning `drop`: a range partition over the
/// ID's leading 64 bits, `shard = ⌊key · shards / 2⁶⁴⌋`. Shard boundaries
/// sit at fixed fractions of the ID space, every ID lands in exactly one
/// shard, ID `0…0` in shard 0 and `FF…F` in shard `shards − 1`. Dead-drop
/// IDs are outputs of a keyed hash ([`DeadDropId::for_round`]), so honest
/// load is uniform across shards.
///
/// # Panics
///
/// Panics when `shards == 0`.
#[must_use]
pub fn shard_of_drop(drop: &DeadDropId, shards: usize) -> usize {
    assert!(shards >= 1, "need at least one shard");
    let key = u64::from_be_bytes(drop.0[..8].try_into().expect("16-byte id"));
    ((u128::from(key) * shards as u128) >> 64) as usize
}

/// One round's conversation dead drops.
#[derive(Default)]
pub struct ConversationDrops;

impl ConversationDrops {
    /// Performs all exchanges for a round (Algorithm 2 step 3b).
    ///
    /// Returns one response per request, **in request order**, plus the
    /// observables the adversary would read off the table.
    ///
    /// For a drop with exactly two accesses the responses carry each
    /// other's deposited message. Any other access count yields random
    /// filler for every accessor beyond the pairing rule: one access →
    /// filler; three or more (only possible under adversarial injection)
    /// → the first two exchange, the rest get filler, and the drop is
    /// counted in `m_many`.
    pub fn exchange<R: RngCore + CryptoRng>(
        rng: &mut R,
        requests: &[ExchangeRequest],
    ) -> (Vec<ExchangeResponse>, ConversationObservables) {
        let mut by_drop: HashMap<DeadDropId, Vec<usize>> = HashMap::with_capacity(requests.len());
        for (index, request) in requests.iter().enumerate() {
            by_drop.entry(request.drop).or_default().push(index);
        }

        let mut observables = ConversationObservables {
            total_requests: requests.len() as u64,
            ..Default::default()
        };

        // Start with filler everywhere; overwrite the paired slots.
        let mut responses: Vec<ExchangeResponse> = (0..requests.len())
            .map(|_| ExchangeResponse::empty(rng))
            .collect();

        for accessors in by_drop.values() {
            match accessors.len() {
                1 => observables.m1 += 1,
                2 => {
                    observables.m2 += 1;
                    let (a, b) = (accessors[0], accessors[1]);
                    responses[a] = ExchangeResponse {
                        sealed_message: requests[b].sealed_message.clone(),
                    };
                    responses[b] = ExchangeResponse {
                        sealed_message: requests[a].sealed_message.clone(),
                    };
                }
                _ => {
                    observables.m_many += 1;
                    let (a, b) = (accessors[0], accessors[1]);
                    responses[a] = ExchangeResponse {
                        sealed_message: requests[b].sealed_message.clone(),
                    };
                    responses[b] = ExchangeResponse {
                        sealed_message: requests[a].sealed_message.clone(),
                    };
                }
            }
        }

        (responses, observables)
    }

    /// [`ConversationDrops::exchange`] over `shards` independent drop-map
    /// shards, pairing each shard on a worker strand. Byte-identical
    /// output and RNG consumption for every `(shards, workers)` choice —
    /// including to the unsharded reference — because:
    ///
    /// * the filler pre-fill draws from `rng` in canonical request order
    ///   **before** any shard runs (identical consumption to the
    ///   reference, whose pairing loop never touches the RNG);
    /// * each drop lives in exactly one shard ([`shard_of_drop`]), so the
    ///   shards' pairing overwrites touch disjoint response slots and the
    ///   per-shard histograms merge by plain summation;
    /// * within a shard, a drop's response content depends only on its
    ///   own accessor list (in request order), never on map iteration
    ///   order — the same argument that already makes the reference
    ///   deterministic.
    pub fn exchange_sharded<R: RngCore + CryptoRng>(
        rng: &mut R,
        requests: &[ExchangeRequest],
        shards: usize,
        workers: usize,
    ) -> (Vec<ExchangeResponse>, ConversationObservables) {
        assert!(shards >= 1, "need at least one shard");
        // Filler everywhere first, in canonical order (see above).
        let mut responses: Vec<ExchangeResponse> = (0..requests.len())
            .map(|_| ExchangeResponse::empty(rng))
            .collect();

        // Partition request indices by the shard owning their drop;
        // within a shard, indices stay in request order.
        let mut shard_indices: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (index, request) in requests.iter().enumerate() {
            shard_indices[shard_of_drop(&request.drop, shards)].push(index);
        }

        // Pair up each shard's drops on the pool: the heavy part (hash
        // map build + accessor grouping) runs in parallel; the outputs —
        // a histogram and a swap list over disjoint slots — merge
        // deterministically below.
        let per_shard = WorkerPool::shared().map_vec(shard_indices, workers, |indices| {
            let mut by_drop: HashMap<DeadDropId, Vec<usize>> =
                HashMap::with_capacity(indices.len());
            for &index in &indices {
                by_drop.entry(requests[index].drop).or_default().push(index);
            }
            let mut histogram = ConversationObservables::default();
            let mut swaps: Vec<(usize, usize)> = Vec::new();
            for accessors in by_drop.values() {
                match accessors.len() {
                    1 => histogram.m1 += 1,
                    2 => {
                        histogram.m2 += 1;
                        swaps.push((accessors[0], accessors[1]));
                    }
                    _ => {
                        histogram.m_many += 1;
                        swaps.push((accessors[0], accessors[1]));
                    }
                }
            }
            (histogram, swaps)
        });

        let mut observables = ConversationObservables {
            total_requests: requests.len() as u64,
            ..Default::default()
        };
        for (histogram, swaps) in per_shard {
            observables.m1 += histogram.m1;
            observables.m2 += histogram.m2;
            observables.m_many += histogram.m_many;
            for (a, b) in swaps {
                responses[a] = ExchangeResponse {
                    sealed_message: requests[b].sealed_message.clone(),
                };
                responses[b] = ExchangeResponse {
                    sealed_message: requests[a].sealed_message.clone(),
                };
            }
        }
        (responses, observables)
    }
}

/// One dialing round's invitation dead drops.
pub struct InvitationDrops {
    /// `drops[i]` holds real drop `i + 1`'s invitations.
    drops: Vec<Vec<SealedInvitation>>,
    noop_writes: u64,
}

impl InvitationDrops {
    /// Creates `num_drops` empty invitation drops.
    ///
    /// # Panics
    ///
    /// Panics when `num_drops == 0` — a dialing round always has at least
    /// one real drop.
    #[must_use]
    pub fn new(num_drops: u32) -> InvitationDrops {
        assert!(num_drops > 0, "a dialing round needs at least one drop");
        InvitationDrops {
            drops: vec![Vec::new(); num_drops as usize],
            noop_writes: 0,
        }
    }

    /// Number of real drops.
    #[must_use]
    pub fn num_drops(&self) -> u32 {
        self.drops.len() as u32
    }

    /// Deposits one dialing request. Writes to the no-op drop are counted
    /// and discarded (§5.2); out-of-range drop indices (malformed or
    /// adversarial) are treated as no-ops as well.
    pub fn deposit(&mut self, request: DialRequest) {
        let index = request.drop;
        if index.is_noop() || index.0 as usize > self.drops.len() {
            self.noop_writes += 1;
            return;
        }
        self.drops[(index.0 - 1) as usize].push(request.invitation);
    }

    /// Adds `count` noise invitations to every real drop — the last
    /// server's own cover traffic (§5.3: "every server (including the
    /// last one) must add a random number of noise invitations to every
    /// invitation dead drop").
    pub fn add_noise<R: RngCore + CryptoRng>(&mut self, rng: &mut R, counts: &[u64]) {
        assert_eq!(counts.len(), self.drops.len(), "one count per drop");
        for (drop, &count) in self.drops.iter_mut().zip(counts.iter()) {
            for _ in 0..count {
                drop.push(SealedInvitation::noise(rng));
            }
        }
    }

    /// The published contents of one real drop (1-based index), i.e. what
    /// a client downloads from the CDN. Returns `None` for the no-op drop
    /// or out-of-range indices.
    #[must_use]
    pub fn download(&self, index: InvitationDropIndex) -> Option<&[SealedInvitation]> {
        if index.is_noop() || index.0 as usize > self.drops.len() {
            return None;
        }
        Some(&self.drops[(index.0 - 1) as usize])
    }

    /// The adversary's view: per-drop invitation counts.
    #[must_use]
    pub fn observables(&self) -> DialingObservables {
        DialingObservables {
            counts: self.drops.iter().map(|d| d.len() as u64).collect(),
            noop_writes: self.noop_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_wire::SEALED_MESSAGE_LEN;

    fn request(drop_byte: u8, fill: u8) -> ExchangeRequest {
        ExchangeRequest {
            drop: DeadDropId([drop_byte; 16]),
            sealed_message: vec![fill; SEALED_MESSAGE_LEN],
        }
    }

    #[test]
    fn paired_requests_swap_messages() {
        let mut rng = StdRng::seed_from_u64(1);
        let requests = vec![request(1, 0xAA), request(1, 0xBB)];
        let (responses, obs) = ConversationDrops::exchange(&mut rng, &requests);
        assert_eq!(responses[0].sealed_message, vec![0xBB; SEALED_MESSAGE_LEN]);
        assert_eq!(responses[1].sealed_message, vec![0xAA; SEALED_MESSAGE_LEN]);
        assert_eq!(obs.m1, 0);
        assert_eq!(obs.m2, 1);
        assert_eq!(obs.total_requests, 2);
    }

    #[test]
    fn single_access_gets_filler() {
        let mut rng = StdRng::seed_from_u64(2);
        let requests = vec![request(1, 0xAA)];
        let (responses, obs) = ConversationDrops::exchange(&mut rng, &requests);
        assert_ne!(responses[0].sealed_message, vec![0xAA; SEALED_MESSAGE_LEN]);
        assert_eq!(responses[0].sealed_message.len(), SEALED_MESSAGE_LEN);
        assert_eq!(obs.m1, 1);
        assert_eq!(obs.m2, 0);
    }

    #[test]
    fn mixed_round_histogram() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two pairs, three singles.
        let requests = vec![
            request(1, 1),
            request(1, 2),
            request(2, 3),
            request(3, 4),
            request(3, 5),
            request(4, 6),
            request(5, 7),
        ];
        let (_, obs) = ConversationDrops::exchange(&mut rng, &requests);
        assert_eq!(obs.m1, 3);
        assert_eq!(obs.m2, 2);
        assert_eq!(obs.m_many, 0);
        assert_eq!(obs.drops_touched(), 5);
    }

    #[test]
    fn adversarial_triple_access() {
        let mut rng = StdRng::seed_from_u64(4);
        let requests = vec![request(9, 1), request(9, 2), request(9, 3)];
        let (responses, obs) = ConversationDrops::exchange(&mut rng, &requests);
        assert_eq!(obs.m_many, 1);
        // First two exchange; third gets filler.
        assert_eq!(responses[0].sealed_message, vec![2; SEALED_MESSAGE_LEN]);
        assert_eq!(responses[1].sealed_message, vec![1; SEALED_MESSAGE_LEN]);
        assert_ne!(responses[2].sealed_message, vec![1; SEALED_MESSAGE_LEN]);
        assert_ne!(responses[2].sealed_message, vec![2; SEALED_MESSAGE_LEN]);
    }

    #[test]
    fn empty_round() {
        let mut rng = StdRng::seed_from_u64(5);
        let (responses, obs) = ConversationDrops::exchange(&mut rng, &[]);
        assert!(responses.is_empty());
        assert_eq!(obs, ConversationObservables::default());
    }

    /// A request whose drop ID starts with the given 8 leading bytes.
    fn request_with_key(key: u64, fill: u8) -> ExchangeRequest {
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&key.to_be_bytes());
        id[8] = fill; // distinguish drops sharing a leading key
        ExchangeRequest {
            drop: DeadDropId(id),
            sealed_message: vec![fill; SEALED_MESSAGE_LEN],
        }
    }

    #[test]
    fn shard_of_drop_covers_boundaries() {
        for shards in [1usize, 2, 3, 7, 64] {
            // Extremes land in the first and last shard.
            assert_eq!(shard_of_drop(&DeadDropId([0; 16]), shards), 0);
            assert_eq!(shard_of_drop(&DeadDropId([0xFF; 16]), shards), shards - 1);
            // Keys sitting exactly on every shard edge (the smallest key
            // of shard s is ⌈s · 2⁶⁴ / shards⌉) map into shard s, and the
            // key just below maps into shard s − 1.
            for s in 1..shards {
                let edge = ((s as u128) << 64).div_ceil(shards as u128) as u64;
                assert_eq!(
                    shard_of_drop(&request_with_key(edge, 0).drop, shards),
                    s,
                    "edge of shard {s}/{shards}"
                );
                assert_eq!(
                    shard_of_drop(&request_with_key(edge - 1, 0).drop, shards),
                    s - 1,
                    "below the edge of shard {s}/{shards}"
                );
            }
        }
    }

    #[test]
    fn every_id_lands_in_exactly_one_shard() {
        let mut rng = StdRng::seed_from_u64(11);
        for shards in [1usize, 2, 3, 7] {
            for _ in 0..64 {
                let id = DeadDropId::random(&mut rng);
                let shard = shard_of_drop(&id, shards);
                assert!(shard < shards);
                // Membership is a pure function of the ID: re-asking gives
                // the same shard, and no other shard claims it.
                assert_eq!(shard_of_drop(&id, shards), shard);
            }
        }
    }

    #[test]
    fn sharded_exchange_matches_reference_for_every_shard_count() {
        // A mixed round: pairs, singles, an adversarial triple, plus
        // drops pinned to the extremes of the ID space so shard 0 and
        // shard `shards - 1` are always exercised.
        let mut requests = vec![
            request(1, 1),
            request(1, 2),
            request(2, 3),
            request(3, 4),
            request(3, 5),
            request(9, 6),
            request(9, 7),
            request(9, 8),
        ];
        requests.push(request_with_key(0, 9));
        requests.push(request_with_key(u64::MAX, 10));
        requests.push(request_with_key(u64::MAX, 10)); // pairs with the previous

        let (want_responses, want_obs) = {
            let mut rng = StdRng::seed_from_u64(21);
            ConversationDrops::exchange(&mut rng, &requests)
        };
        for shards in [1usize, 2, 3, 7] {
            for workers in [1usize, 2, 4] {
                let mut rng = StdRng::seed_from_u64(21);
                let (responses, obs) =
                    ConversationDrops::exchange_sharded(&mut rng, &requests, shards, workers);
                assert_eq!(
                    responses, want_responses,
                    "shards {shards} workers {workers}"
                );
                assert_eq!(obs, want_obs, "shards {shards} workers {workers}");
            }
        }
    }

    #[test]
    fn in_shard_collision_keeps_the_pairing_rule() {
        // Three accessors forced onto one drop (hence one shard): the
        // first two exchange, the third gets filler, m_many flags the
        // drop — the reference guarantees, under sharding.
        let mut rng = StdRng::seed_from_u64(31);
        let requests = vec![
            request_with_key(7, 1),
            request_with_key(7, 1),
            request_with_key(7, 1),
        ];
        // All three share one drop ID (same key, same fill byte).
        let requests: Vec<ExchangeRequest> = requests
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.sealed_message = vec![i as u8 + 1; SEALED_MESSAGE_LEN];
                r
            })
            .collect();
        let (responses, obs) = ConversationDrops::exchange_sharded(&mut rng, &requests, 7, 2);
        assert_eq!(obs.m_many, 1);
        assert_eq!(responses[0].sealed_message, vec![2; SEALED_MESSAGE_LEN]);
        assert_eq!(responses[1].sealed_message, vec![1; SEALED_MESSAGE_LEN]);
        assert_ne!(responses[2].sealed_message, vec![1; SEALED_MESSAGE_LEN]);
        assert_ne!(responses[2].sealed_message, vec![2; SEALED_MESSAGE_LEN]);
    }

    #[test]
    fn invitation_deposit_and_download() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut drops = InvitationDrops::new(3);
        drops.deposit(DialRequest {
            drop: InvitationDropIndex(2),
            invitation: SealedInvitation::noise(&mut rng),
        });
        drops.deposit(DialRequest::noop(&mut rng));
        let obs = drops.observables();
        assert_eq!(obs.counts, vec![0, 1, 0]);
        assert_eq!(obs.noop_writes, 1);
        assert_eq!(
            drops.download(InvitationDropIndex(2)).map(<[_]>::len),
            Some(1)
        );
        assert!(drops.download(InvitationDropIndex::NOOP).is_none());
        assert!(drops.download(InvitationDropIndex(4)).is_none());
    }

    #[test]
    fn out_of_range_drop_counts_as_noop() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut drops = InvitationDrops::new(2);
        drops.deposit(DialRequest {
            drop: InvitationDropIndex(99),
            invitation: SealedInvitation::noise(&mut rng),
        });
        assert_eq!(drops.observables().noop_writes, 1);
        assert_eq!(drops.observables().total_invitations(), 0);
    }

    #[test]
    fn noise_lands_in_every_drop() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut drops = InvitationDrops::new(3);
        drops.add_noise(&mut rng, &[5, 7, 2]);
        assert_eq!(drops.observables().counts, vec![5, 7, 2]);
    }
}
