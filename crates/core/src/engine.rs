//! The shared per-server **round engine**: one implementation of the
//! round state machine, two runtimes.
//!
//! Both deployment shapes — the in-process streaming pipeline
//! ([`crate::pipeline::StreamingChain`], one OS thread per server) and
//! the transport-driven wire nodes ([`crate::node`], one OS *process*
//! per server) — used to carry their own copy of the same per-server
//! round loop: peel/noise/shuffle on the forward leg, the tail's
//! dead-drop exchange or invitation deposit, the backward pass on
//! conversation replies. This module is that loop, extracted once:
//!
//! * [`RoundEngine`] wraps one [`MixServer`] (whose `rounds` table
//!   already holds per-round state for any number of in-flight rounds
//!   of both protocols) and turns each round-tagged input batch into
//!   the *step* its runtime must perform next — forward the batch,
//!   turn a conversation round around, or complete a forward-only
//!   dialing round. The engine is transport-agnostic: the pipeline
//!   routes steps onto mpsc hand-off queues, the wire nodes onto
//!   [`vuvuzela_net::Transport`] frames. Because every source of round
//!   randomness is a pure function of `(seed, round)` (see
//!   [`crate::pipeline`] module docs), the two runtimes produce
//!   byte-identical rounds by construction — there is no second copy
//!   of the recipe left to drift.
//! * [`AdmissionWindow`] is the bounded in-flight window both drivers
//!   enforce, measured in weighted slots priced by
//!   [`admission_weights`]: the streaming feeder and the wire client
//!   driver *block* on a full window, the wire entry node *rejects*
//!   (a peer pushing past the window is a protocol violation, and the
//!   rejection is deterministic — it depends only on the admitted-minus
//!   -completed ledger, never on timing).

use crate::chain::{deposit_dialing, exchange_conversation, Chain, RoundTiming};
use crate::config::SystemConfig;
use crate::deaddrops::InvitationDrops;
use crate::noise::expected_noise_per_server;
use crate::observables::ConversationObservables;
use crate::roundbuf::RoundBuffer;
use crate::server::{MixServer, RoundKind};
use std::collections::HashMap;
use std::time::Instant;

/// What a server's runtime must do with the batch the engine just
/// processed.
pub enum EngineStep {
    /// Hand the peeled/noised/shuffled batch to the downstream
    /// neighbour (every non-tail server, both protocols).
    Forward {
        /// Round the batch belongs to.
        round: u64,
        /// The round's protocol tag (carries dialing's drop count).
        kind: RoundKind,
        /// The batch to forward.
        buf: RoundBuffer,
    },
    /// Tail conversation turnaround: the dead-drop exchange ran, the
    /// tail's backward pass is applied — hand the replies to the
    /// upstream neighbour together with the round's observables.
    Turnaround {
        /// Round that turned around.
        round: u64,
        /// The replies, tail backward pass applied.
        replies: RoundBuffer,
        /// What a compromised tail observes of this round.
        observables: ConversationObservables,
    },
    /// Tail dialing completion: the invitations are deposited and the
    /// round's reply state discarded (dialing is forward-only). The
    /// runtime decides whether to retain the drops (in-process CDN
    /// download path) or only their observables (the wire completion
    /// notice's trailer).
    DialingComplete {
        /// Round that completed.
        round: u64,
        /// The round's invitation drop count (§5.4's *m*).
        num_drops: u32,
        /// The filled invitation drops.
        drops: InvitationDrops,
    },
}

/// One mix server's round state machine, shared by the streaming
/// pipeline stages and the wire node runtime.
///
/// The engine borrows the server for the duration of one schedule; the
/// server's own `rounds` table is the per-round state store, so any
/// number of rounds of both protocols may be in flight at once —
/// exactly what the windowed/pipelined wire mode needs.
pub struct RoundEngine<'a> {
    server: &'a mut MixServer,
    chain_len: usize,
    exchange_shards: usize,
    workers: usize,
    seed: u64,
}

impl<'a> RoundEngine<'a> {
    /// Wraps `server` (built by [`crate::chain::build_server`] or taken
    /// from a [`Chain`]) for one schedule. `seed` is the *chain* seed
    /// shared by the whole deployment — the tail derives each round's
    /// chain-level RNG from it.
    #[must_use]
    pub fn new(server: &'a mut MixServer, config: &SystemConfig, seed: u64) -> RoundEngine<'a> {
        RoundEngine {
            server,
            chain_len: config.chain_len,
            exchange_shards: config.exchange_shards,
            workers: config.workers,
            seed,
        }
    }

    /// Whether this server is the chain's tail (runs the exchange /
    /// deposit instead of forwarding).
    #[must_use]
    pub fn is_tail(&self) -> bool {
        self.server.is_last()
    }

    /// The onion width this server expects on its incoming forward leg
    /// for a round of `kind` — protocol validation for wire inputs.
    #[must_use]
    pub fn incoming_width(&self, kind: RoundKind) -> usize {
        self.server.incoming_width(kind)
    }

    /// Runs the forward pass for one round-tagged batch and says what
    /// to do next. Non-tail servers get [`EngineStep::Forward`] (the
    /// engine has already discarded a dialing round's reply state —
    /// dialing is forward-only); the tail gets the round's turnaround
    /// or completion. Per-stage durations accumulate into `timing`.
    pub fn forward(
        &mut self,
        round: u64,
        kind: RoundKind,
        buf: RoundBuffer,
        timing: &mut RoundTiming,
    ) -> EngineStep {
        let clock = Instant::now();
        let buf = self.server.forward_buf(round, kind, buf);
        timing.forward.push(clock.elapsed());
        if !self.is_tail() {
            if matches!(kind, RoundKind::Dialing { .. }) {
                // Forward-only: this hop keeps no reply state.
                self.server.abort_round(round);
            }
            return EngineStep::Forward { round, kind, buf };
        }
        match kind {
            RoundKind::Conversation => {
                let clock = Instant::now();
                let mut rng = Chain::chain_round_rng(self.seed, round);
                let (replies, observables) = exchange_conversation(
                    &mut rng,
                    self.chain_len,
                    self.exchange_shards,
                    self.workers,
                    &buf,
                );
                timing.exchange = clock.elapsed();
                let clock = Instant::now();
                let replies = self.server.backward_buf(round, replies);
                timing.backward.push(clock.elapsed());
                EngineStep::Turnaround {
                    round,
                    replies,
                    observables,
                }
            }
            RoundKind::Dialing { num_drops } => {
                let clock = Instant::now();
                let mut rng = Chain::chain_round_rng(self.seed, round);
                let drops = deposit_dialing(&mut rng, self.server, round, num_drops, &buf);
                timing.exchange = clock.elapsed();
                self.server.abort_round(round);
                EngineStep::DialingComplete {
                    round,
                    num_drops,
                    drops,
                }
            }
        }
    }

    /// Runs this server's backward pass on a conversation round's
    /// replies arriving from downstream (non-tail servers only — the
    /// tail's backward pass already ran inside its turnaround).
    pub fn backward(
        &mut self,
        round: u64,
        replies: RoundBuffer,
        timing: &mut RoundTiming,
    ) -> RoundBuffer {
        let clock = Instant::now();
        let replies = self.server.backward_buf(round, replies);
        timing.backward.push(clock.elapsed());
        replies
    }
}

/// A round's admission cost: the expected number of onions it puts in
/// flight across the chain — its client batch plus every noising
/// server's expected cover traffic (the dp planner's per-round-type
/// noise budget).
fn round_cost(config: &SystemConfig, kind: RoundKind, batch_len: usize) -> f64 {
    let noising_servers = config.chain_len.saturating_sub(1) as f64;
    batch_len as f64 + noising_servers * expected_noise_per_server(kind, config)
}

/// The number of window slots each `(kind, batch_len)` round of a
/// schedule occupies under weighted admission: cost relative to the
/// mean conversation round, rounded, clamped to `[1, window]`. A
/// schedule containing a single round kind collapses to weight 1 per
/// round — homogeneous schedules keep the plain round-counting window;
/// weights only throttle genuinely mixed schedules, where the two
/// protocols' per-round costs diverge by orders of magnitude. Both the
/// streaming feeder and the wire client driver price their schedules
/// with this one function, so the two runtimes throttle identically.
#[must_use]
pub fn admission_weights(
    config: &SystemConfig,
    window: usize,
    rounds: &[(RoundKind, usize)],
) -> Vec<usize> {
    let conversation_costs: Vec<f64> = rounds
        .iter()
        .filter(|(kind, _)| matches!(kind, RoundKind::Conversation))
        .map(|&(kind, batch_len)| round_cost(config, kind, batch_len))
        .collect();
    if conversation_costs.is_empty() || conversation_costs.len() == rounds.len() {
        return vec![1; rounds.len()];
    }
    let slot = (conversation_costs.iter().sum::<f64>() / conversation_costs.len() as f64).max(1.0);
    rounds
        .iter()
        .map(|&(kind, batch_len)| {
            let cost = round_cost(config, kind, batch_len);
            ((cost / slot).round() as usize).clamp(1, window.max(1))
        })
        .collect()
}

/// The bounded in-flight window, measured in weighted slots.
///
/// One ledger, three drivers: the streaming feeder and the wire client
/// driver ask [`AdmissionWindow::would_block`] and *wait* for a
/// completion when it says so; the wire entry node asks the same
/// question and *rejects* the round instead (a client pushing past the
/// window violates the wire protocol). The progress guarantee is built
/// into `would_block`: a round heavier than the whole window does not
/// block an *empty* window, so heavy dialing rounds throttle admission
/// but can never wedge it.
#[derive(Debug)]
pub struct AdmissionWindow {
    window: usize,
    occupied: usize,
    admitted: HashMap<u64, usize>,
}

impl AdmissionWindow {
    /// A window of `window` slots.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> AdmissionWindow {
        assert!(window > 0, "need at least one round in flight");
        AdmissionWindow {
            window,
            occupied: 0,
            admitted: HashMap::new(),
        }
    }

    /// Whether admitting a round of `weight` slots must wait for a
    /// completion first. An empty window never blocks (progress
    /// guarantee for rounds heavier than the whole window).
    #[must_use]
    pub fn would_block(&self, weight: usize) -> bool {
        self.occupied > 0 && self.occupied + weight > self.window
    }

    /// Records `round` as admitted at `weight` slots.
    ///
    /// # Panics
    ///
    /// Panics if the round is already in flight (duplicate round ids
    /// are a caller bug, not a runtime condition).
    pub fn admit(&mut self, round: u64, weight: usize) {
        let previous = self.admitted.insert(round, weight);
        assert!(previous.is_none(), "round {round} admitted twice");
        self.occupied += weight;
    }

    /// Releases `round`'s slots; returns the weight released, or `None`
    /// if the round was never admitted (the wire runtimes turn that
    /// into a protocol error).
    pub fn complete(&mut self, round: u64) -> Option<usize> {
        let weight = self.admitted.remove(&round)?;
        self.occupied -= weight;
        Some(weight)
    }

    /// Rounds currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.admitted.len()
    }

    /// Slots currently occupied.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_blocks_and_releases() {
        let mut window = AdmissionWindow::new(3);
        assert!(!window.would_block(5), "empty window never blocks");
        window.admit(0, 2);
        assert!(window.would_block(2), "2 + 2 > 3");
        assert!(!window.would_block(1));
        window.admit(1, 1);
        assert_eq!(window.in_flight(), 2);
        assert_eq!(window.occupied(), 3);
        assert!(window.would_block(1));
        assert_eq!(window.complete(0), Some(2));
        assert!(!window.would_block(2));
        assert_eq!(window.complete(0), None, "double completion is caught");
        assert_eq!(window.complete(7), None, "unknown rounds are caught");
    }

    #[test]
    #[should_panic(expected = "admitted twice")]
    fn duplicate_admission_panics() {
        let mut window = AdmissionWindow::new(2);
        window.admit(3, 1);
        window.admit(3, 1);
    }
}
