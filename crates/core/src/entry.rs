//! The untrusted entry server (paper §7).
//!
//! "We implement an additional entry server, whose job is to handle a
//! large number of connections from clients, multiplex client requests
//! into a single round that's sent to the chain of Vuvuzela servers, and
//! to demultiplex the results to individual clients. The entry server is
//! not trusted."
//!
//! Because every request is already onion-encrypted for the real chain,
//! the entry server handles only opaque bytes; it contributes no noise
//! and no shuffling, and a malicious entry server is just another network
//! adversary (it can drop/delay/inject, all of which the taps model).

/// Bookkeeping for demultiplexing one round's replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundLayout {
    /// Number of requests each client submitted, in client order.
    per_client: Vec<usize>,
}

impl RoundLayout {
    /// Total requests across all clients.
    #[must_use]
    pub fn total(&self) -> usize {
        self.per_client.iter().sum()
    }
}

/// Multiplexes per-client request lists into one batch for the chain,
/// preserving client order, and records the layout for demultiplexing.
#[must_use]
pub fn multiplex(client_requests: Vec<Vec<Vec<u8>>>) -> (Vec<Vec<u8>>, RoundLayout) {
    let per_client: Vec<usize> = client_requests.iter().map(Vec::len).collect();
    let batch: Vec<Vec<u8>> = client_requests.into_iter().flatten().collect();
    (batch, RoundLayout { per_client })
}

/// Splits the chain's replies back out per client.
///
/// If an adversary shrank the batch in flight, trailing clients receive
/// `None` for their missing slots (they observe a dropped round, exactly
/// as under a network-level DoS). Extra injected replies are discarded.
#[must_use]
pub fn demultiplex(layout: &RoundLayout, replies: Vec<Vec<u8>>) -> Vec<Vec<Option<Vec<u8>>>> {
    let mut iter = replies.into_iter();
    layout
        .per_client
        .iter()
        .map(|&count| {
            (0..count)
                .map(|_| iter.next())
                .collect::<Vec<Option<Vec<u8>>>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplex_preserves_order() {
        let requests = vec![
            vec![vec![1u8], vec![2]],
            vec![vec![3]],
            vec![],
            vec![vec![4], vec![5]],
        ];
        let (batch, layout) = multiplex(requests);
        assert_eq!(batch, vec![vec![1u8], vec![2], vec![3], vec![4], vec![5]]);
        assert_eq!(layout.total(), 5);
    }

    #[test]
    fn demultiplex_roundtrip() {
        let requests = vec![vec![vec![1u8], vec![2]], vec![vec![3]], vec![vec![4]]];
        let (batch, layout) = multiplex(requests);
        let out = demultiplex(&layout, batch);
        assert_eq!(
            out,
            vec![
                vec![Some(vec![1u8]), Some(vec![2])],
                vec![Some(vec![3])],
                vec![Some(vec![4])],
            ]
        );
    }

    #[test]
    fn short_reply_batch_yields_nones_at_tail() {
        let (batch, layout) = multiplex(vec![vec![vec![1u8]], vec![vec![2]], vec![vec![3]]]);
        let mut replies = batch;
        replies.truncate(1); // adversary dropped two replies
        let out = demultiplex(&layout, replies);
        assert_eq!(out[0], vec![Some(vec![1u8])]);
        assert_eq!(out[1], vec![None]);
        assert_eq!(out[2], vec![None]);
    }

    #[test]
    fn injected_extras_are_discarded() {
        let (batch, layout) = multiplex(vec![vec![vec![1u8]]]);
        let mut replies = batch;
        replies.push(vec![9]); // injected
        let out = demultiplex(&layout, replies);
        assert_eq!(out, vec![vec![Some(vec![1u8])]]);
    }

    #[test]
    fn empty_round() {
        let (batch, layout) = multiplex(vec![]);
        assert!(batch.is_empty());
        assert!(demultiplex(&layout, batch).is_empty());
    }
}
