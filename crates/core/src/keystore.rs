//! Local contact key store (paper §5.1 footnote 7, §9 "PKI for dialing").
//!
//! Vuvuzela deliberately has no online PKI: "Looking up this key
//! on-demand over the Internet via some key server would disclose who
//! the user is dialing, so Vuvuzela clients should store public keys for
//! contacts ahead of time" (§9). The client software is expected to use
//! "manually entered out-of-band verified public keys" (§5.1 fn 7).
//!
//! [`KeyStore`] is that component: a petname → public-key map with
//! human-comparable fingerprints for the out-of-band verification step,
//! and a reverse lookup for identifying incoming invitations.

use std::collections::BTreeMap;
use vuvuzela_crypto::sha256::sha256;
use vuvuzela_crypto::x25519::PublicKey;

/// Errors from contact management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyStoreError {
    /// The petname is already bound to a different key. Re-binding must
    /// be explicit ([`KeyStore::replace`]) — silent key substitution is
    /// exactly the attack out-of-band verification exists to stop.
    NameTaken {
        /// The conflicting petname.
        name: String,
    },
    /// No contact with that petname.
    UnknownName,
}

impl core::fmt::Display for KeyStoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KeyStoreError::NameTaken { name } => {
                write!(f, "petname '{name}' is already bound to a different key")
            }
            KeyStoreError::UnknownName => write!(f, "no contact with that petname"),
        }
    }
}

impl std::error::Error for KeyStoreError {}

/// A local, offline store of verified contact keys.
#[derive(Debug, Default, Clone)]
pub struct KeyStore {
    by_name: BTreeMap<String, PublicKey>,
}

impl KeyStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Adds a contact under a petname.
    ///
    /// # Errors
    ///
    /// [`KeyStoreError::NameTaken`] if the name is bound to a *different*
    /// key (re-adding the same binding is idempotent).
    pub fn add(&mut self, name: impl Into<String>, key: PublicKey) -> Result<(), KeyStoreError> {
        let name = name.into();
        match self.by_name.get(&name) {
            Some(existing) if *existing != key => Err(KeyStoreError::NameTaken { name }),
            _ => {
                self.by_name.insert(name, key);
                Ok(())
            }
        }
    }

    /// Explicitly replaces a binding (e.g. after a contact rotates keys
    /// and re-verifies out of band). Returns the previous key, if any.
    pub fn replace(&mut self, name: impl Into<String>, key: PublicKey) -> Option<PublicKey> {
        self.by_name.insert(name.into(), key)
    }

    /// Removes a contact.
    ///
    /// # Errors
    ///
    /// [`KeyStoreError::UnknownName`] when absent.
    pub fn remove(&mut self, name: &str) -> Result<PublicKey, KeyStoreError> {
        self.by_name.remove(name).ok_or(KeyStoreError::UnknownName)
    }

    /// Looks up a contact's key by petname.
    #[must_use]
    pub fn key_of(&self, name: &str) -> Option<&PublicKey> {
        self.by_name.get(name)
    }

    /// Reverse lookup: whose key is this? Used to put a name on an
    /// incoming invitation's caller key.
    #[must_use]
    pub fn name_of(&self, key: &PublicKey) -> Option<&str> {
        self.by_name
            .iter()
            .find(|(_, k)| *k == key)
            .map(|(n, _)| n.as_str())
    }

    /// All contacts, in petname order.
    pub fn contacts(&self) -> impl Iterator<Item = (&str, &PublicKey)> {
        self.by_name.iter().map(|(n, k)| (n.as_str(), k))
    }

    /// Number of contacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

/// The word list used for human-comparable fingerprints (PGP-style even
/// word list, 6 bits per word over the leading hash bytes).
const WORDS: [&str; 64] = [
    "acid", "amber", "atlas", "badge", "basil", "beach", "bison", "blaze", "brick", "cabin",
    "cedar", "chalk", "cliff", "cloud", "coral", "crane", "delta", "dune", "eagle", "ember",
    "fern", "flint", "frost", "gale", "glade", "grove", "hazel", "heron", "ivory", "jade", "kelp",
    "lark", "lotus", "lunar", "maple", "marsh", "mesa", "mint", "moss", "night", "oasis", "ocean",
    "onyx", "opal", "otter", "pearl", "pine", "plume", "quail", "quartz", "raven", "reef", "ridge",
    "river", "slate", "spruce", "stone", "swan", "thorn", "tide", "topaz", "vale", "wren",
    "zephyr",
];

/// Renders a public key as six words (36 bits of the key's SHA-256),
/// enough for humans to compare over a phone call. Collisions require
/// ~2^18 tries against a *targeted* victim — combine with the hex form
/// ([`fingerprint_hex`]) for high-stakes verification.
#[must_use]
pub fn fingerprint_words(key: &PublicKey) -> String {
    let digest = sha256(key.as_bytes());
    let mut bits: u64 = 0;
    for byte in digest.iter().take(8) {
        bits = (bits << 8) | u64::from(*byte);
    }
    (0..6)
        .map(|i| WORDS[((bits >> (58 - 6 * i)) & 0x3f) as usize])
        .collect::<Vec<_>>()
        .join("-")
}

/// The full hex SHA-256 fingerprint of a public key.
#[must_use]
pub fn fingerprint_hex(key: &PublicKey) -> String {
    sha256(key.as_bytes())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::x25519::Keypair;

    fn key(seed: u64) -> PublicKey {
        Keypair::generate(&mut StdRng::seed_from_u64(seed)).public
    }

    #[test]
    fn add_lookup_remove() {
        let mut store = KeyStore::new();
        store.add("alice", key(1)).expect("add");
        assert_eq!(store.key_of("alice"), Some(&key(1)));
        assert_eq!(store.name_of(&key(1)), Some("alice"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove("alice"), Ok(key(1)));
        assert!(store.is_empty());
        assert_eq!(store.remove("alice"), Err(KeyStoreError::UnknownName));
    }

    #[test]
    fn silent_rebinding_is_rejected() {
        let mut store = KeyStore::new();
        store.add("alice", key(1)).expect("add");
        // Same binding: idempotent.
        store.add("alice", key(1)).expect("idempotent");
        // Different key under the same name: refused.
        assert!(matches!(
            store.add("alice", key(2)),
            Err(KeyStoreError::NameTaken { .. })
        ));
        // Explicit replacement works and reports the old key.
        assert_eq!(store.replace("alice", key(2)), Some(key(1)));
        assert_eq!(store.key_of("alice"), Some(&key(2)));
    }

    #[test]
    fn contacts_iterate_in_name_order() {
        let mut store = KeyStore::new();
        store.add("carol", key(3)).expect("add");
        store.add("alice", key(1)).expect("add");
        store.add("bob", key(2)).expect("add");
        let names: Vec<&str> = store.contacts().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alice", "bob", "carol"]);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let fp1 = fingerprint_words(&key(1));
        let fp2 = fingerprint_words(&key(2));
        assert_eq!(fp1, fingerprint_words(&key(1)), "deterministic");
        assert_ne!(fp1, fp2);
        assert_eq!(fp1.split('-').count(), 6);
        for word in fp1.split('-') {
            assert!(WORDS.contains(&word));
        }
    }

    #[test]
    fn hex_fingerprint_is_full_digest() {
        let fp = fingerprint_hex(&key(1));
        assert_eq!(fp.len(), 64);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn unknown_lookups_are_none() {
        let store = KeyStore::new();
        assert!(store.key_of("nobody").is_none());
        assert!(store.name_of(&key(9)).is_none());
    }
}
