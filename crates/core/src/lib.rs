//! The Vuvuzela system: clients, the server chain, and the two protocols.
//!
//! This crate assembles the substrates ([`vuvuzela_crypto`],
//! [`vuvuzela_dp`], [`vuvuzela_wire`], [`vuvuzela_net`]) into the system
//! of the paper:
//!
//! * [`server`] — the mix servers (Algorithm 2): peel a layer, add cover
//!   traffic, shuffle, forward; unshuffle, strip noise, re-encrypt on the
//!   way back. The last server runs the dead-drop exchange instead of
//!   forwarding.
//! * [`deaddrops`] — the last server's conversation dead-drop table and
//!   the dialing invitation drops.
//! * [`noise`] — cover-traffic generation (Algorithm 2 step 2) for both
//!   protocols, including onion-wrapping noise for downstream servers.
//! * [`entry`] — the untrusted entry server (§7): multiplexes client
//!   requests into a round and demultiplexes the results.
//! * [`chain`] — a whole deployment wired together with metered,
//!   tappable links; runs conversation and dialing rounds end to end,
//!   strictly sequentially (the reference scheduler).
//! * [`pipeline`] — the streaming round scheduler: the same deployment
//!   with a weighted window of rounds in flight, hops overlapped across
//!   rounds, conversation and dialing rounds mixed in one pipeline,
//!   byte-identical per-round results.
//! * [`engine`] — the shared per-server round engine: the one
//!   implementation of the forward/turnaround/backward state machine
//!   and the weighted admission window, driven by both the streaming
//!   pipeline stages and the wire node runtimes.
//! * [`node`] — transport-driven node runtimes: one mix server or the
//!   entry as its own process behind the [`vuvuzela_net::Transport`]
//!   seam, byte-identical to the in-process chain; supports windowed
//!   (pipelined) rounds over demuxed blocking links.
//! * [`client`] — the client state machine (Algorithm 1): real/fake
//!   exchanges, message framing, retransmission, dialing and invitation
//!   scanning.
//! * [`cohort`] — struct-of-arrays client populations: N clients' state
//!   in flat arrays, requests built in parallel straight into one
//!   [`RoundBuffer`] arena, byte-identical to N individual clients.
//! * [`observables`] — exactly what a compromised last server gets to
//!   see; the interface the adversary crate consumes.
//! * [`testkit`] — a high-level harness ([`testkit::TestNet`]) used by
//!   tests, examples and benchmarks.
//!
//! ## Threat-model mapping
//!
//! | Paper capability (§2.3) | Code |
//! |---|---|
//! | observe/tamper with any link | [`vuvuzela_net::link::Tap`] on any [`chain::Chain`] link |
//! | compromise the last server | read [`chain::Chain::conversation_observables`] / [`chain::Chain::dialing_observables`] |
//! | compromise a first/mixing server | a tap *before* it (pre-mix traffic is attributable) plus the observables |
//! | control clients | construct [`client::Client`]s directly or inject via taps |
//! | see dead-drop access counts | [`observables::ConversationObservables`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod client;
pub mod cohort;
pub mod config;
pub mod deaddrops;
pub mod engine;
pub mod entry;
pub mod keystore;
pub mod node;
pub mod noise;
pub mod observables;
pub mod pipeline;
pub mod roundbuf;
pub mod server;
pub mod testkit;

pub use chain::{Chain, RoundOutcome, RoundSpec};
pub use client::Client;
pub use cohort::ClientCohort;
pub use config::SystemConfig;
pub use pipeline::StreamingChain;
pub use roundbuf::RoundBuffer;
