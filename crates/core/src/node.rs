//! Transport-backed node runtimes: the processes of a real deployment.
//!
//! [`run_server_node`] and [`run_entry_node`] drive one mix server / the
//! entry entirely through the [`vuvuzela_net::Transport`] seam, so the
//! same loop runs over in-memory endpoints (tests, and the equivalence
//! harness that pins them against [`crate::chain::Chain`]) and over the
//! framed TCP backend (the `vuvuzela-server` / `vuvuzela-entry` bins,
//! one OS process per node). The round recipe itself — peel, noise,
//! shuffle, exchange/deposit, backward pass — lives in the shared
//! [`crate::engine::RoundEngine`]; this module only moves frames.
//!
//! ## Wire protocol
//!
//! Rounds travel as [`BatchFrame`]s. The entry admits client batches,
//! re-frames them onto hop 0, and each server peels, noises and shuffles
//! them forward. The last server runs each round's tail — the dead-drop
//! exchange for conversations, the invitation deposit for dialing — and
//! turns the round around: a backward frame carrying the replies (or a
//! zero-count *completion* frame for forward-only dialing rounds) walks
//! the chain back to the entry, each server applying its backward pass
//! to conversation replies and relaying dialing completions untouched.
//!
//! The observables the compromised-last-server threat model exposes
//! ([`ConversationObservables`], [`DialingObservables`]) ride the
//! backward frame's opaque `trailer`, encoded as a [`RoundTrailer`]:
//! intermediate hops forward the trailer byte-for-byte, so the entry
//! (and ultimately the deployment client building the transcript) sees
//! exactly what the tail measured.
//!
//! ## Windowed rounds
//!
//! Up to `chain_len` rounds may be in flight at once — the wire
//! counterpart of [`crate::pipeline::StreamingChain`]'s in-process
//! window, and the paper's §8.2 pipelining argument applied across
//! process boundaries: the chain is sequential *within* a round, so
//! throughput comes from overlapping consecutive rounds across hops.
//! The entry enforces the window with
//! [`crate::engine::AdmissionWindow`] and rejects a client pushing past
//! it (deterministically — the decision depends only on the
//! admitted-minus-completed ledger). Because links now carry
//! interleaved rounds, each node demuxes its blocking transports
//! through [`vuvuzela_net::Demux`] (one reader thread per link feeding
//! one event queue), which keeps every socket's receive side drained —
//! the deadlock-freedom argument for blocking sends. Frame order per
//! link and direction follows [`vuvuzela_wire::sequence`]'s rules,
//! asserted here with [`RoundSequencer`]s on the forward legs and
//! admission-order matching on the backward legs.
//!
//! Shutdown is a bidirectional [`Frame::Bye`] handshake: the client
//! side sends the forward `Bye` after its last batch, each node relays
//! it downstream (FIFO guarantees no batch is abandoned behind it), the
//! tail answers with the backward `Bye` after its last backward frame,
//! and each node relays that upstream once every round it forwarded has
//! come back — so a node returning its [`NodeStats`] has provably
//! finished every admitted round.

use crate::chain::RoundTiming;
use crate::config::SystemConfig;
use crate::engine::{AdmissionWindow, EngineStep, RoundEngine};
use crate::observables::{ConversationObservables, DialingObservables};
use crate::roundbuf::RoundBuffer;
use crate::server::{MixServer, RoundKind};
use std::collections::VecDeque;
use std::sync::Arc;
use vuvuzela_crypto::onion;
use vuvuzela_net::{Demux, Error, Transport};
use vuvuzela_wire::{BatchFrame, Frame, LinkId, RoundId, RoundSequencer, RoundType};

/// The tail's per-round observables, encoded into the backward frame's
/// opaque trailer and relayed untouched by every intermediate hop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundTrailer {
    /// A conversation round's dead-drop access histogram.
    Conversation(ConversationObservables),
    /// A dialing round's per-drop invitation counts.
    Dialing(DialingObservables),
}

const TRAILER_CONVERSATION: u8 = 1;
const TRAILER_DIALING: u8 = 2;

impl RoundTrailer {
    /// Serializes to the trailer byte format (tag byte + little-endian
    /// counts).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            RoundTrailer::Conversation(obs) => {
                let mut out = Vec::with_capacity(1 + 4 * 8);
                out.push(TRAILER_CONVERSATION);
                for v in [obs.m1, obs.m2, obs.m_many, obs.total_requests] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            RoundTrailer::Dialing(obs) => {
                let mut out = Vec::with_capacity(1 + 8 + 4 + 8 * obs.counts.len());
                out.push(TRAILER_DIALING);
                out.extend_from_slice(&obs.noop_writes.to_le_bytes());
                out.extend_from_slice(&(obs.counts.len() as u32).to_le_bytes());
                for count in &obs.counts {
                    out.extend_from_slice(&count.to_le_bytes());
                }
                out
            }
        }
    }

    /// Parses a trailer produced by [`RoundTrailer::encode`].
    ///
    /// # Errors
    ///
    /// A description of the malformation (bad tag, truncation, trailing
    /// bytes).
    pub fn decode(bytes: &[u8]) -> Result<RoundTrailer, String> {
        let take_u64 = |bytes: &[u8], at: usize| -> Result<u64, String> {
            bytes
                .get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| "truncated round trailer".to_string())
        };
        match bytes.first() {
            Some(&TRAILER_CONVERSATION) => {
                if bytes.len() != 1 + 4 * 8 {
                    return Err("conversation trailer has wrong length".to_string());
                }
                Ok(RoundTrailer::Conversation(ConversationObservables {
                    m1: take_u64(bytes, 1)?,
                    m2: take_u64(bytes, 9)?,
                    m_many: take_u64(bytes, 17)?,
                    total_requests: take_u64(bytes, 25)?,
                }))
            }
            Some(&TRAILER_DIALING) => {
                let noop_writes = take_u64(bytes, 1)?;
                let n = bytes
                    .get(9..13)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                    .ok_or("truncated round trailer")? as usize;
                if bytes.len() != 13 + 8 * n {
                    return Err("dialing trailer has wrong length".to_string());
                }
                let counts = (0..n)
                    .map(|i| take_u64(bytes, 13 + 8 * i))
                    .collect::<Result<Vec<u64>, String>>()?;
                Ok(RoundTrailer::Dialing(DialingObservables {
                    counts,
                    noop_writes,
                }))
            }
            Some(tag) => Err(format!("unknown round-trailer tag {tag}")),
            None => Err("empty round trailer".to_string()),
        }
    }
}

/// What one node processed before its orderly [`Frame::Bye`] shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Conversation rounds completed.
    pub conversation_rounds: u64,
    /// Dialing rounds completed.
    pub dialing_rounds: u64,
}

impl NodeStats {
    fn bump(&mut self, round_type: RoundType) {
        match round_type {
            RoundType::Conversation => self.conversation_rounds += 1,
            RoundType::Dialing => self.dialing_rounds += 1,
        }
    }
}

fn protocol(link: LinkId, reason: impl Into<String>) -> Error {
    Error::Protocol {
        link,
        reason: reason.into(),
    }
}

fn round_kind(frame: &BatchFrame) -> RoundKind {
    match frame.round_type {
        RoundType::Conversation => RoundKind::Conversation,
        RoundType::Dialing => RoundKind::Dialing {
            num_drops: frame.num_drops,
        },
    }
}

/// Packs a round arena into a batch frame addressed to `link`,
/// preserving the arena's exact `(stride, width, len)` geometry so the
/// receiver reconstructs a byte-identical [`RoundBuffer`].
fn frame_from_buf(
    link: LinkId,
    round: u64,
    round_type: RoundType,
    num_drops: u32,
    backward: bool,
    buf: RoundBuffer,
    trailer: Vec<u8>,
) -> Frame {
    let (payload, stride, width, len) = buf.into_raw();
    Frame::Batch(BatchFrame {
        link,
        round: RoundId(round),
        round_type,
        num_drops,
        backward,
        stride: stride as u32,
        width: width as u32,
        count: len as u32,
        payload,
        trailer,
    })
}

/// Reconstructs the round arena a peer packed with [`frame_from_buf`].
fn buf_from_frame(frame: BatchFrame) -> RoundBuffer {
    RoundBuffer::from_raw(
        frame.payload,
        frame.stride as usize,
        frame.width as usize,
        frame.count as usize,
    )
}

/// Which neighbour a demuxed frame arrived from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    /// The upstream neighbour (clients for the entry, the previous hop
    /// for a server).
    Upstream,
    /// The downstream neighbour (the next hop).
    Downstream,
}

/// Runs one mix server as a transport-driven node until the `Bye`
/// handshake completes, any number of rounds in flight.
///
/// `seed` is the *chain* seed shared by the whole deployment (the tail
/// derives the round's chain-level RNG from it, exactly like
/// [`crate::chain::Chain`]); the server's own per-round RNG was fixed
/// when `server` was built (see [`crate::chain::build_server`]).
/// `downstream` is `None` for the last server in the chain.
///
/// A dialing round's [`crate::deaddrops::InvitationDrops`] are measured
/// (the observables ride the completion trailer) and dropped — the CDN
/// download path stays with the in-process deployments.
///
/// # Errors
///
/// Any transport failure, or a [`Error::Protocol`] / [`Error::Frame`]
/// when a peer violates the round protocol (backward frame on the
/// forward leg, out-of-order round ids, wrong onion width for this hop,
/// a `Bye` with rounds still in flight).
pub fn run_server_node(
    mut server: MixServer,
    config: &SystemConfig,
    seed: u64,
    upstream: Arc<dyn Transport>,
    downstream: Option<Arc<dyn Transport>>,
) -> Result<NodeStats, Error> {
    let up_link = upstream.link_id();
    let mut engine = RoundEngine::new(&mut server, config, seed);
    let mut stats = NodeStats::default();
    let mut forward_seq = RoundSequencer::new();
    // Rounds forwarded downstream whose backward frame is still out;
    // backward frames must return in exactly this order (see the wire
    // crate's sequencing rules).
    let mut pending: VecDeque<u64> = VecDeque::new();
    let mut upstream_done = false;

    let mut links: Vec<(Side, Arc<dyn Transport>)> = vec![(Side::Upstream, Arc::clone(&upstream))];
    if let Some(down) = &downstream {
        links.push((Side::Downstream, Arc::clone(down)));
    }
    let demux = Demux::new(links);

    while let Some(event) = demux.recv() {
        match (event.from, event.event?) {
            (Side::Upstream, Frame::Batch(frame)) => {
                if frame.backward {
                    return Err(protocol(up_link, "backward frame on the forward leg"));
                }
                forward_seq
                    .observe(frame.round)
                    .map_err(|source| Error::Frame {
                        link: up_link,
                        source,
                    })?;
                let round = frame.round.0;
                let round_type = frame.round_type;
                let kind = round_kind(&frame);
                if frame.width as usize != engine.incoming_width(kind) {
                    return Err(protocol(
                        up_link,
                        format!(
                            "round {round} batch width {} but this hop expects {}",
                            frame.width,
                            engine.incoming_width(kind)
                        ),
                    ));
                }
                let mut timing = RoundTiming::default();
                match engine.forward(round, kind, buf_from_frame(frame), &mut timing) {
                    EngineStep::Forward { round, kind, buf } => {
                        let down = downstream.as_ref().expect("non-tail has a downstream");
                        let num_drops = match kind {
                            RoundKind::Dialing { num_drops } => num_drops,
                            RoundKind::Conversation => 0,
                        };
                        down.send(frame_from_buf(
                            down.link_id(),
                            round,
                            round_type,
                            num_drops,
                            false,
                            buf,
                            Vec::new(),
                        ))?;
                        pending.push_back(round);
                    }
                    EngineStep::Turnaround {
                        round,
                        replies,
                        observables,
                    } => {
                        upstream.send(frame_from_buf(
                            up_link,
                            round,
                            RoundType::Conversation,
                            0,
                            true,
                            replies,
                            RoundTrailer::Conversation(observables).encode(),
                        ))?;
                        stats.bump(RoundType::Conversation);
                    }
                    EngineStep::DialingComplete {
                        round,
                        num_drops,
                        drops,
                    } => {
                        upstream.send(Frame::Batch(BatchFrame {
                            link: up_link,
                            round: RoundId(round),
                            round_type: RoundType::Dialing,
                            num_drops,
                            backward: true,
                            stride: 0,
                            width: 0,
                            count: 0,
                            payload: Vec::new(),
                            trailer: RoundTrailer::Dialing(drops.observables()).encode(),
                        }))?;
                        stats.bump(RoundType::Dialing);
                    }
                }
            }
            (Side::Upstream, Frame::Bye) => {
                upstream_done = true;
                match &downstream {
                    // Relay and keep draining the backward leg.
                    Some(down) => down.send(Frame::Bye)?,
                    None => {
                        // Tail: FIFO means every admitted round is
                        // already turned around — answer the backward
                        // bye and finish.
                        upstream.send(Frame::Bye)?;
                        return Ok(stats);
                    }
                }
            }
            (Side::Downstream, Frame::Batch(back)) => {
                let down_link = downstream.as_ref().expect("tagged downstream").link_id();
                if !back.backward {
                    return Err(protocol(down_link, "forward frame on the backward leg"));
                }
                let round = back.round.0;
                match pending.front() {
                    Some(&expected) if expected == round => {
                        pending.pop_front();
                    }
                    Some(&expected) => {
                        return Err(protocol(
                            down_link,
                            format!(
                                "expected the backward frame of round {expected}, got round \
                                 {round}"
                            ),
                        ))
                    }
                    None => {
                        return Err(protocol(
                            down_link,
                            format!("unsolicited backward frame for round {round}"),
                        ))
                    }
                }
                let round_type = back.round_type;
                match round_type {
                    RoundType::Conversation => {
                        let trailer = back.trailer.clone();
                        let mut timing = RoundTiming::default();
                        let replies = engine.backward(round, buf_from_frame(back), &mut timing);
                        upstream.send(frame_from_buf(
                            up_link,
                            round,
                            RoundType::Conversation,
                            0,
                            true,
                            replies,
                            trailer,
                        ))?;
                    }
                    // A dialing completion: relay untouched (trailer and
                    // all); the round was aborted on the forward pass.
                    RoundType::Dialing => upstream.send(Frame::Batch(BatchFrame {
                        link: up_link,
                        ..back
                    }))?,
                }
                stats.bump(round_type);
            }
            (Side::Downstream, Frame::Bye) => {
                if !upstream_done || !pending.is_empty() {
                    return Err(protocol(
                        downstream.as_ref().expect("tagged downstream").link_id(),
                        format!(
                            "backward bye with {} rounds still in flight (forward bye seen: \
                             {upstream_done})",
                            pending.len()
                        ),
                    ));
                }
                upstream.send(Frame::Bye)?;
                return Ok(stats);
            }
            (side, Frame::Hello(_)) => {
                let link = match side {
                    Side::Upstream => up_link,
                    Side::Downstream => downstream.as_ref().expect("tagged downstream").link_id(),
                };
                return Err(protocol(link, "unexpected hello mid-stream"));
            }
        }
    }
    Err(protocol(
        up_link,
        "links closed before the bye handshake completed",
    ))
}

/// Runs the untrusted entry as a transport-driven node until the `Bye`
/// handshake completes, admitting up to `chain_len` rounds in flight.
///
/// The entry validates each client batch's geometry against the round's
/// full onion width, re-frames it onto hop 0, and relays each round's
/// backward frame (replies or dialing completion, trailer included)
/// back to the client side verbatim, in admission order. A client batch
/// arriving while the admission window is full is a *protocol error*,
/// not backpressure — the client driver owns pacing (it blocks before
/// sending), so an over-admitting peer is misbehaving, and the
/// rejection is deterministic because the window ledger depends only on
/// the frames admitted and completed, never on timing.
///
/// # Errors
///
/// Any transport failure, or [`Error::Protocol`] / [`Error::Frame`]
/// when the client batch geometry is not the round's onion width, the
/// admission window is exceeded, round ids go out of order, or a peer
/// breaks the round protocol.
pub fn run_entry_node(
    config: &SystemConfig,
    clients: Arc<dyn Transport>,
    downstream: Arc<dyn Transport>,
) -> Result<NodeStats, Error> {
    let clients_link = clients.link_id();
    let down_link = downstream.link_id();
    let mut stats = NodeStats::default();
    let window_slots = config.chain_len.max(1);
    let mut window = AdmissionWindow::new(window_slots);
    let mut forward_seq = RoundSequencer::new();
    let mut pending: VecDeque<u64> = VecDeque::new();
    let mut client_done = false;

    let demux = Demux::new([
        (Side::Upstream, Arc::clone(&clients)),
        (Side::Downstream, Arc::clone(&downstream)),
    ]);

    while let Some(event) = demux.recv() {
        match (event.from, event.event?) {
            (Side::Upstream, Frame::Batch(frame)) => {
                if frame.backward {
                    return Err(protocol(
                        clients_link,
                        "backward frame on the client request leg",
                    ));
                }
                forward_seq
                    .observe(frame.round)
                    .map_err(|source| Error::Frame {
                        link: clients_link,
                        source,
                    })?;
                let round = frame.round.0;
                let width = onion::wrapped_len(round_kind(&frame).payload_len(), config.chain_len);
                if frame.width as usize != width || frame.stride as usize != width {
                    return Err(protocol(
                        clients_link,
                        format!(
                            "round {round} client batch geometry {}/{} but the round's onion \
                             width is {width}",
                            frame.width, frame.stride
                        ),
                    ));
                }
                if window.would_block(1) {
                    return Err(protocol(
                        clients_link,
                        format!(
                            "round {round} exceeds the admission window ({} of {window_slots} \
                             rounds in flight)",
                            window.in_flight()
                        ),
                    ));
                }
                window.admit(round, 1);
                pending.push_back(round);
                downstream.send(Frame::Batch(BatchFrame {
                    link: down_link,
                    ..frame
                }))?;
            }
            (Side::Upstream, Frame::Bye) => {
                client_done = true;
                downstream.send(Frame::Bye)?;
            }
            (Side::Downstream, Frame::Batch(back)) => {
                if !back.backward {
                    return Err(protocol(down_link, "forward frame on the backward leg"));
                }
                let round = back.round.0;
                match pending.front() {
                    Some(&expected) if expected == round => {
                        pending.pop_front();
                        window.complete(round);
                    }
                    Some(&expected) => {
                        return Err(protocol(
                            down_link,
                            format!(
                                "expected the backward frame of round {expected}, got round \
                                 {round}"
                            ),
                        ))
                    }
                    None => {
                        return Err(protocol(
                            down_link,
                            format!("unsolicited backward frame for round {round}"),
                        ))
                    }
                }
                let round_type = back.round_type;
                clients.send(Frame::Batch(BatchFrame {
                    link: clients_link,
                    ..back
                }))?;
                stats.bump(round_type);
            }
            (Side::Downstream, Frame::Bye) => {
                if !client_done || window.in_flight() > 0 {
                    return Err(protocol(
                        down_link,
                        format!(
                            "backward bye with {} rounds still in flight (client bye seen: \
                             {client_done})",
                            window.in_flight()
                        ),
                    ));
                }
                return Ok(stats);
            }
            (side, Frame::Hello(_)) => {
                let link = match side {
                    Side::Upstream => clients_link,
                    Side::Downstream => down_link,
                };
                return Err(protocol(link, "unexpected hello mid-stream"));
            }
        }
    }
    Err(protocol(
        clients_link,
        "links closed before the bye handshake completed",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{build_server, Chain};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    use vuvuzela_net::link::Link;
    use vuvuzela_net::transport::memory_pair;
    use vuvuzela_wire::conversation::ExchangeRequest;
    use vuvuzela_wire::deaddrop::{DeadDropId, InvitationDropIndex};
    use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};
    use vuvuzela_wire::SEALED_MESSAGE_LEN;

    fn tiny_config(chain_len: usize) -> SystemConfig {
        SystemConfig {
            chain_len,
            conversation_noise: NoiseDistribution::new(4.0, 1.0),
            dialing_noise: NoiseDistribution::new(2.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    #[test]
    fn trailers_roundtrip() {
        let conv = RoundTrailer::Conversation(ConversationObservables {
            m1: 7,
            m2: 3,
            m_many: 1,
            total_requests: 14,
        });
        let dial = RoundTrailer::Dialing(DialingObservables {
            counts: vec![5, 0, 9],
            noop_writes: 40,
        });
        for trailer in [conv, dial] {
            let bytes = trailer.encode();
            assert_eq!(RoundTrailer::decode(&bytes).expect("decodes"), trailer);
            assert!(RoundTrailer::decode(&bytes[..bytes.len() - 1]).is_err());
        }
        assert!(RoundTrailer::decode(&[]).is_err());
        assert!(RoundTrailer::decode(&[9]).is_err());
    }

    /// The full in-memory deployment: entry + 3 server nodes as threads
    /// over [`memory_pair`] endpoints, fed a mixed schedule by a client
    /// thread *pipelined* (both rounds admitted before either reply is
    /// read), must be byte-identical to the sequential [`Chain`] on the
    /// same seed — replies, conversation observables, dialing counts.
    #[test]
    fn memory_nodes_match_sequential_chain() {
        let config = tiny_config(3);
        let seed = 21;
        let mut rng = StdRng::seed_from_u64(77);

        // Two clients exchanging through a shared drop, plus a loner.
        let mut chain = Chain::new(config.clone(), seed);
        let pks = chain.server_public_keys();
        let drop = DeadDropId([4u8; 16]);
        let wrap_exchange = |fill: u8, rng: &mut StdRng| {
            let request = ExchangeRequest {
                drop,
                sealed_message: vec![fill; SEALED_MESSAGE_LEN],
            };
            onion::wrap(rng, &pks, 0, &request.encode())
        };
        let (onion_a, _) = wrap_exchange(0xAA, &mut rng);
        let (onion_b, _) = wrap_exchange(0xBB, &mut rng);
        let (onion_c, _) = {
            let request = ExchangeRequest {
                drop: DeadDropId([5u8; 16]),
                sealed_message: vec![0xCC; SEALED_MESSAGE_LEN],
            };
            onion::wrap(&mut rng, &pks, 0, &request.encode())
        };
        let conv_batch = vec![onion_a, onion_b, onion_c];

        // One dial invitation into 2 drops.
        let caller = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let callee = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let num_drops = 2;
        let dial_request = DialRequest {
            drop: InvitationDropIndex::for_recipient(&callee.public, num_drops),
            invitation: SealedInvitation::seal(&mut rng, &caller.public, &callee.public),
        };
        let (dial_onion, _) = onion::wrap(&mut rng, &pks, 1, &dial_request.encode());
        let dial_batch = vec![dial_onion];

        // Reference: the sequential chain.
        let (ref_replies, _) = chain.run_conversation_round(0, conv_batch.clone());
        chain.run_dialing_round(1, dial_batch.clone(), num_drops);
        let (_, ref_conv_obs) = chain.conversation_observables()[0];
        let (_, ref_dial_obs) = chain.dialing_observables()[0].clone();

        // The same deployment as four transport-driven nodes.
        let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
        let (entry_down, s0_up) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
        let (s0_down, s1_up) = memory_pair(Arc::new(Link::new(LinkId::Hop(1))));
        let (s1_down, s2_up) = memory_pair(Arc::new(Link::new(LinkId::Hop(2))));

        let mut handles = Vec::new();
        let cfg = config.clone();
        handles.push(std::thread::spawn(move || {
            run_entry_node(&cfg, Arc::new(entry_client_end), Arc::new(entry_down)).expect("entry")
        }));
        let downs: [Option<Arc<dyn Transport>>; 3] =
            [Some(Arc::new(s0_down)), Some(Arc::new(s1_down)), None];
        let ups: [Arc<dyn Transport>; 3] = [Arc::new(s0_up), Arc::new(s1_up), Arc::new(s2_up)];
        for (position, (up, down)) in ups.into_iter().zip(downs).enumerate() {
            let server = build_server(&config, seed, position);
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || {
                run_server_node(server, &cfg, seed, up, down).expect("server")
            }));
        }

        // Client side: feed the same two rounds as flat frames — both
        // admitted before either reply is read (the window is 3).
        let send_batch = |round: u64, round_type: RoundType, num_drops: u32, batch: &[Vec<u8>]| {
            let width = batch[0].len();
            let payload: Vec<u8> = batch.concat();
            client_end
                .send(Frame::Batch(BatchFrame {
                    link: LinkId::Clients,
                    round: RoundId(round),
                    round_type,
                    num_drops,
                    backward: false,
                    stride: width as u32,
                    width: width as u32,
                    count: batch.len() as u32,
                    payload,
                    trailer: Vec::new(),
                }))
                .expect("send batch");
        };

        send_batch(0, RoundType::Conversation, 0, &conv_batch);
        send_batch(1, RoundType::Dialing, num_drops, &dial_batch);

        // Backward frames return in admission order: round 0's replies,
        // then round 1's completion.
        let back = match client_end.recv().expect("conversation replies") {
            Frame::Batch(back) => back,
            other => panic!("expected replies, got {other:?}"),
        };
        assert_eq!(back.round.0, 0);
        let trailer = RoundTrailer::decode(&back.trailer).expect("trailer");
        assert_eq!(trailer, RoundTrailer::Conversation(ref_conv_obs));
        assert_eq!(
            buf_from_frame(back).to_vecs(),
            ref_replies,
            "distributed replies must be byte-identical to the chain's"
        );

        let completion = match client_end.recv().expect("dialing completion") {
            Frame::Batch(back) => back,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!((completion.round.0, completion.count), (1, 0));
        let trailer = RoundTrailer::decode(&completion.trailer).expect("trailer");
        assert_eq!(trailer, RoundTrailer::Dialing(ref_dial_obs));

        client_end.send(Frame::Bye).expect("bye");
        for handle in handles {
            let stats = handle.join().expect("node thread");
            assert_eq!(
                stats,
                NodeStats {
                    conversation_rounds: 1,
                    dialing_rounds: 1,
                }
            );
        }
    }

    #[test]
    fn entry_rejects_bad_geometry() {
        let config = tiny_config(2);
        let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
        let (entry_down, _s0_up) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
        client_end
            .send(Frame::Batch(BatchFrame {
                link: LinkId::Clients,
                round: RoundId(0),
                round_type: RoundType::Conversation,
                num_drops: 0,
                backward: false,
                stride: 8,
                width: 8,
                count: 1,
                payload: vec![0; 8],
                trailer: Vec::new(),
            }))
            .expect("send");
        let err = run_entry_node(&config, Arc::new(entry_client_end), Arc::new(entry_down))
            .expect_err("wrong width must be rejected");
        assert!(matches!(err, Error::Protocol { .. }), "got {err}");
    }

    /// The entry's windowed admission rejects the (window+1)th in-flight
    /// round deterministically, and repeated round ids die at the
    /// sequencer.
    #[test]
    fn entry_rejects_out_of_window_and_out_of_order_rounds() {
        let config = tiny_config(2);
        let width = onion::wrapped_len(RoundKind::Conversation.payload_len(), config.chain_len);
        let batch = |round: u64| {
            Frame::Batch(BatchFrame {
                link: LinkId::Clients,
                round: RoundId(round),
                round_type: RoundType::Conversation,
                num_drops: 0,
                backward: false,
                stride: width as u32,
                width: width as u32,
                count: 0,
                payload: Vec::new(),
                trailer: Vec::new(),
            })
        };

        // A downstream that accepts frames but never answers, so the
        // entry's event order is fully deterministic.
        let (entry_down, dummy) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
        let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
        for round in 0..=config.chain_len as u64 {
            client_end.send(batch(round)).expect("send");
        }
        let err = run_entry_node(&config, Arc::new(entry_client_end), Arc::new(entry_down))
            .expect_err("window must reject");
        match err {
            Error::Protocol { reason, .. } => {
                assert!(reason.contains("admission window"), "got: {reason}")
            }
            other => panic!("expected protocol error, got {other}"),
        }
        // Exactly `window` rounds were forwarded before the rejection.
        for _ in 0..config.chain_len {
            assert!(matches!(dummy.recv(), Ok(Frame::Batch(_))));
        }

        let (entry_down, _dummy) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
        let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
        client_end.send(batch(3)).expect("send");
        client_end.send(batch(3)).expect("send repeat");
        let err = run_entry_node(&config, Arc::new(entry_client_end), Arc::new(entry_down))
            .expect_err("repeat must be rejected");
        assert!(matches!(err, Error::Frame { .. }), "got {err}");
    }
}
