//! Cover-traffic generation (paper Algorithm 2 step 2, §4.2, §5.3).
//!
//! Each mixing server manufactures noise requests that are bitwise
//! indistinguishable from real ones and injects them into the round
//! before shuffling. Noise created at chain position `i` must still
//! traverse servers `i+1..n`, so it is onion-wrapped for exactly that
//! suffix of the chain — this is why cover traffic is the dominant cost
//! at small scale (§8.2) and why latency grows quadratically with chain
//! length (Figure 11).

use crate::config::SystemConfig;
use crate::roundbuf::RoundBuffer;
use crate::server::RoundKind;
use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::PublicKey;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};
use vuvuzela_net::parallel::parallel_map;
use vuvuzela_net::WorkerPool;
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::deaddrop::{DeadDropId, InvitationDropIndex};
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};

/// A batch of generated cover traffic, ready to merge into the round.
pub struct NoiseBatch {
    /// The wrapped (or, for the last server, plain) request bytes.
    pub onions: Vec<Vec<u8>>,
    /// How many single-access noise requests were generated: the `n1`
    /// draw plus, when `n2` is odd, its unpaired leftover request (a
    /// singleton drop, indistinguishable from a single access).
    pub singles: u64,
    /// How many *pairs* of same-drop noise requests were generated
    /// (⌊n2/2⌋); each pair contributes two onions.
    pub pairs: u64,
}

/// Generates one round of conversation cover traffic for a server at the
/// given chain position.
///
/// Samples `n1, n2 ~ ⌈max(0, Laplace(µ, b))⌉` and emits `n1` single
/// accesses to random dead drops plus `⌊n2/2⌋` pairs of accesses to a
/// shared random drop; when `n2` is odd the unpaired leftover request is
/// emitted as one more singleton access (1 access to its drop → it lands
/// in m1, not m2). Every onion is wrapped for `remaining_chain` (the
/// servers after this one). An empty `remaining_chain` yields plain
/// encoded requests (used when substituting for malformed input at the
/// last server).
pub fn conversation_noise<R: RngCore + CryptoRng>(
    rng: &mut R,
    remaining_chain: &[PublicKey],
    round: u64,
    dist: NoiseDistribution,
    mode: NoiseMode,
    workers: usize,
) -> NoiseBatch {
    let n1 = dist.sample_count(rng, mode);
    let n2 = dist.sample_count(rng, mode);
    let pairs = n2 / 2;
    let singles = n1 + n2 % 2;

    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity((singles + 2 * pairs) as usize);
    for _ in 0..singles {
        payloads.push(ExchangeRequest::noise(rng).encode());
    }
    for _ in 0..pairs {
        // Two indistinguishable requests to the same random drop: this is
        // what inflates m2.
        let drop = DeadDropId::random(rng);
        for _ in 0..2 {
            let mut request = ExchangeRequest::noise(rng);
            request.drop = drop;
            payloads.push(request.encode());
        }
    }

    NoiseBatch {
        onions: wrap_payloads(rng, payloads, remaining_chain, round, workers),
        singles,
        pairs,
    }
}

/// Generates one round of dialing cover traffic: for every real
/// invitation drop, `⌈max(0, Laplace(µ, b))⌉` noise invitations, each
/// wrapped for the remaining chain (§5.3).
pub fn dialing_noise<R: RngCore + CryptoRng>(
    rng: &mut R,
    remaining_chain: &[PublicKey],
    round: u64,
    num_drops: u32,
    dist: NoiseDistribution,
    mode: NoiseMode,
    workers: usize,
) -> NoiseBatch {
    let mut payloads = Vec::new();
    let mut total = 0u64;
    for drop in 1..=num_drops {
        let count = dist.sample_count(rng, mode);
        total += count;
        for _ in 0..count {
            let request = DialRequest {
                drop: InvitationDropIndex(drop),
                invitation: SealedInvitation::noise(rng),
            };
            payloads.push(request.encode());
        }
    }
    NoiseBatch {
        onions: wrap_payloads(rng, payloads, remaining_chain, round, workers),
        singles: total,
        pairs: 0,
    }
}

/// Zero-copy variant of [`conversation_noise`]: appends the noise onions
/// directly to `batch` (payload written into its slot, onion built there
/// in place) instead of returning per-onion vectors. Draws from `rng` in
/// exactly the same order as the allocating version, so a seeded run is
/// byte-identical either way — the pipeline-equivalence property tests
/// rely on this.
///
/// Returns `(singles, pairs)` as [`NoiseBatch`] would.
///
/// # Panics
///
/// Panics if `batch.width()` does not equal the wrapped noise size for
/// `remaining_chain` — noise must be indistinguishable from the real
/// requests already in the batch.
pub fn conversation_noise_into<R: RngCore + CryptoRng>(
    rng: &mut R,
    batch: &mut RoundBuffer,
    remaining_chain: &[onion::PrecomputedServer],
    round: u64,
    dist: NoiseDistribution,
    mode: NoiseMode,
    workers: usize,
) -> (u64, u64) {
    assert_eq!(
        batch.width(),
        vuvuzela_wire::EXCHANGE_REQUEST_LEN + remaining_chain.len() * onion::LAYER_OVERHEAD,
        "noise onions must match the batch's current width"
    );
    let n1 = dist.sample_count(rng, mode);
    let n2 = dist.sample_count(rng, mode);
    let pairs = n2 / 2;
    let singles = n1 + n2 % 2;
    let payload_offset = 32 * remaining_chain.len();

    let first_noise = batch.len();
    for _ in 0..singles {
        batch.push_with(|slot| {
            ExchangeRequest::noise_into(rng, None, &mut slot[payload_offset..]);
        });
    }
    for _ in 0..pairs {
        // Two indistinguishable requests to the same random drop: this is
        // what inflates m2.
        let drop = DeadDropId::random(rng);
        for _ in 0..2 {
            batch.push_with(|slot| {
                ExchangeRequest::noise_into(rng, Some(&drop), &mut slot[payload_offset..]);
            });
        }
    }

    wrap_slots_in_place(rng, batch, first_noise, remaining_chain, round, workers);
    (singles, pairs)
}

/// Zero-copy variant of [`dialing_noise`]; see
/// [`conversation_noise_into`] for the contract. Returns the total noise
/// count.
#[allow(clippy::too_many_arguments)] // mirrors `dialing_noise` plus the buffer
pub fn dialing_noise_into<R: RngCore + CryptoRng>(
    rng: &mut R,
    batch: &mut RoundBuffer,
    remaining_chain: &[onion::PrecomputedServer],
    round: u64,
    num_drops: u32,
    dist: NoiseDistribution,
    mode: NoiseMode,
    workers: usize,
) -> u64 {
    assert_eq!(
        batch.width(),
        vuvuzela_wire::DIAL_REQUEST_LEN + remaining_chain.len() * onion::LAYER_OVERHEAD,
        "noise onions must match the batch's current width"
    );
    let payload_offset = 32 * remaining_chain.len();
    let first_noise = batch.len();
    let mut total = 0u64;
    for drop in 1..=num_drops {
        let count = dist.sample_count(rng, mode);
        total += count;
        for _ in 0..count {
            batch.push_with(|slot| {
                DialRequest::noise_into(
                    rng,
                    InvitationDropIndex(drop),
                    &mut slot[payload_offset..],
                );
            });
        }
    }
    wrap_slots_in_place(rng, batch, first_noise, remaining_chain, round, workers);
    total
}

/// Onion-wraps `batch` slots `first..len` in place: each slot already
/// holds its payload at offset `32 * chain.len()` (where
/// [`onion::wrap_into`] expects it) and is sealed for the chain suffix in
/// parallel. Seeds are drawn per slot from `rng` in slot order, exactly
/// like [`wrap_payloads`] does for the allocating path.
fn wrap_slots_in_place<R: RngCore + CryptoRng>(
    rng: &mut R,
    batch: &mut RoundBuffer,
    first: usize,
    chain: &[onion::PrecomputedServer],
    round: u64,
    workers: usize,
) {
    if chain.is_empty() || batch.len() == first {
        return;
    }
    let count = batch.len() - first;
    let width = batch.width();
    let payload_len = width - chain.len() * onion::LAYER_OVERHEAD;
    let seeds: Vec<[u8; 32]> = (0..count)
        .map(|_| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            seed
        })
        .collect();

    let stride = batch.stride();
    let arena = batch.arena_mut();
    let region = &mut arena[first * stride..];
    WorkerPool::shared().map_strides_mut(region, stride, workers, |i, slot| {
        let mut child = StdRng::from_seed(seeds[i]);
        onion::wrap_noise_into(&mut child, chain, round, &mut slot[..width], payload_len);
    });
}

/// The expected cover traffic a single noising server adds to one round
/// of `kind` under `config` — the dp planner's per-round-type noise
/// budget ([`vuvuzela_dp::expected_noise_requests`]), zeroed when noise
/// is off. The streaming scheduler's weighted admission control prices
/// rounds with this: a dialing round at the paper's µ = 13,000 per drop
/// carries orders of magnitude more noise than its client batch, and
/// must occupy correspondingly more of the in-flight window.
#[must_use]
pub fn expected_noise_per_server(kind: RoundKind, config: &SystemConfig) -> f64 {
    if matches!(config.noise_mode, NoiseMode::Off) {
        return 0.0;
    }
    match kind {
        RoundKind::Conversation => vuvuzela_dp::expected_noise_requests(
            vuvuzela_dp::Protocol::Conversation,
            config.conversation_noise.mu,
            0,
        ),
        RoundKind::Dialing { num_drops } => vuvuzela_dp::expected_noise_requests(
            vuvuzela_dp::Protocol::Dialing,
            config.dialing_noise.mu,
            num_drops,
        ),
    }
}

/// Per-drop noise counts for the last server (which deposits directly
/// into the drop table instead of wrapping onions).
pub fn dialing_noise_counts<R: RngCore + CryptoRng>(
    rng: &mut R,
    num_drops: u32,
    dist: NoiseDistribution,
    mode: NoiseMode,
) -> Vec<u64> {
    (0..num_drops)
        .map(|_| dist.sample_count(rng, mode))
        .collect()
}

/// Onion-wraps a batch of payloads for a chain suffix, in parallel —
/// through the **pre-refactor** allocating [`onion::wrap`] (ladder
/// keygen, ladder DH, one heap allocation per layer).
///
/// Each item gets its own deterministic child RNG seeded from `rng`, so
/// results are reproducible for a seeded parent while the expensive
/// wrapping (one X25519 per layer per payload) spreads across `workers`
/// threads.
///
/// This is deliberately kept at seed-implementation cost: it is what
/// [`crate::server::MixServer::forward_reference`]'s noise path runs,
/// and the round benchmarks measure the zero-copy pipeline against it.
/// Callers that just need onions fast (workload generators) should use
/// [`wrap_payloads_precomputed`], which is byte-identical.
pub fn wrap_payloads<R: RngCore + CryptoRng>(
    rng: &mut R,
    payloads: Vec<Vec<u8>>,
    chain: &[PublicKey],
    round: u64,
    workers: usize,
) -> Vec<Vec<u8>> {
    if chain.is_empty() {
        return payloads;
    }
    let seeded: Vec<([u8; 32], Vec<u8>)> = payloads
        .into_iter()
        .map(|p| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            (seed, p)
        })
        .collect();
    parallel_map(seeded, workers, |(seed, payload)| {
        let mut child = StdRng::from_seed(seed);
        let (onion, _keys) = onion::wrap(&mut child, chain, round, &payload);
        onion
    })
}

/// [`wrap_payloads`] at production speed: per-server precomputed DH
/// tables, comb keygen, and the in-place sealer — byte-identical output
/// and RNG consumption to the reference version for equal parent RNG
/// states (asserted by this module's tests). This is the workload
/// generators' path: building a benchmark client population no longer
/// pays ladder keygen or per-layer allocations.
pub fn wrap_payloads_precomputed<R: RngCore + CryptoRng>(
    rng: &mut R,
    payloads: Vec<Vec<u8>>,
    chain: &[PublicKey],
    round: u64,
    workers: usize,
) -> Vec<Vec<u8>> {
    if chain.is_empty() {
        return payloads;
    }
    let precomp: Vec<onion::PrecomputedServer> = chain
        .iter()
        .map(|pk| onion::PrecomputedServer::new(*pk))
        .collect();
    let chain_len = chain.len();
    let seeded: Vec<([u8; 32], Vec<u8>)> = payloads
        .into_iter()
        .map(|p| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            (seed, p)
        })
        .collect();
    parallel_map(seeded, workers, |(seed, payload)| {
        let mut child = StdRng::from_seed(seed);
        let mut buf = vec![0u8; onion::wrapped_len(payload.len(), chain_len)];
        buf[32 * chain_len..32 * chain_len + payload.len()].copy_from_slice(&payload);
        onion::wrap_noise_into(&mut child, &precomp, round, &mut buf, payload.len());
        buf
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_crypto::x25519::Keypair;
    use vuvuzela_wire::EXCHANGE_REQUEST_LEN;

    #[test]
    fn deterministic_counts_match_paper_accounting() {
        // §8.2: "Each server in the chain, except for the last one, adds
        // µ × 2 noise requests on average". With deterministic mode and
        // µ even, singles + 2·pairs = 2µ exactly.
        let mut rng = StdRng::seed_from_u64(1);
        let dist = NoiseDistribution::new(50.0, 10.0);
        let batch = conversation_noise(&mut rng, &[], 0, dist, NoiseMode::Deterministic, 1);
        assert_eq!(batch.singles, 50);
        assert_eq!(batch.pairs, 25);
        assert_eq!(batch.onions.len(), 100);
    }

    #[test]
    fn odd_n2_leftover_is_a_singleton() {
        // µ = 5 deterministic → n1 = n2 = 5. Algorithm 2 pairs the n2
        // draw as ⌊5/2⌋ = 2 same-drop pairs; the 5th request has no
        // partner and must surface as one more *singleton* access
        // (1 access → m1), never as a ⌈5/2⌉ = 3rd "pair".
        let mut rng = StdRng::seed_from_u64(11);
        let dist = NoiseDistribution::new(5.0, 1.0);
        let batch = conversation_noise(&mut rng, &[], 0, dist, NoiseMode::Deterministic, 1);
        assert_eq!(batch.singles, 6);
        assert_eq!(batch.pairs, 2);
        assert_eq!(batch.onions.len(), 10);
        let requests: Vec<ExchangeRequest> = batch
            .onions
            .iter()
            .map(|o| ExchangeRequest::decode(o).expect("decode"))
            .collect();
        // All six singles (incl. the leftover) use distinct drops.
        let singles = &requests[..batch.singles as usize];
        let unique: std::collections::HashSet<_> = singles.iter().map(|r| r.drop).collect();
        assert_eq!(unique.len(), singles.len());
        for chunk in requests[batch.singles as usize..].chunks(2) {
            assert_eq!(chunk[0].drop, chunk[1].drop);
        }
    }

    #[test]
    fn unwrapped_noise_is_valid_requests() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = NoiseDistribution::new(4.0, 1.0);
        let batch = conversation_noise(&mut rng, &[], 7, dist, NoiseMode::Deterministic, 1);
        for onion in &batch.onions {
            assert_eq!(onion.len(), EXCHANGE_REQUEST_LEN);
            let _ = ExchangeRequest::decode(onion).expect("noise decodes as a request");
        }
    }

    #[test]
    fn paired_noise_shares_drops() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = NoiseDistribution::new(6.0, 1.0);
        let batch = conversation_noise(&mut rng, &[], 0, dist, NoiseMode::Deterministic, 1);
        let requests: Vec<ExchangeRequest> = batch
            .onions
            .iter()
            .map(|o| ExchangeRequest::decode(o).expect("decode"))
            .collect();
        // Last 2·pairs requests come in same-drop pairs.
        let pair_section = &requests[batch.singles as usize..];
        assert_eq!(pair_section.len() as u64, 2 * batch.pairs);
        for chunk in pair_section.chunks(2) {
            assert_eq!(chunk[0].drop, chunk[1].drop);
        }
        // Singles all use distinct drops.
        let singles = &requests[..batch.singles as usize];
        let unique: std::collections::HashSet<_> = singles.iter().map(|r| r.drop).collect();
        assert_eq!(unique.len(), singles.len());
    }

    #[test]
    fn wrapped_noise_peels_down_the_chain() {
        let mut rng = StdRng::seed_from_u64(4);
        let s1 = Keypair::generate(&mut rng);
        let s2 = Keypair::generate(&mut rng);
        let dist = NoiseDistribution::new(3.0, 1.0);
        let batch = conversation_noise(
            &mut rng,
            &[s1.public, s2.public],
            9,
            dist,
            NoiseMode::Deterministic,
            2,
        );
        for onion in &batch.onions {
            let (_, inner) =
                vuvuzela_crypto::onion::peel(&s1.secret, &s1.public, 9, onion).expect("layer 1");
            let (_, payload) =
                vuvuzela_crypto::onion::peel(&s2.secret, &s2.public, 9, &inner).expect("layer 2");
            let _ = ExchangeRequest::decode(&payload).expect("valid request inside");
        }
    }

    #[test]
    fn dialing_noise_covers_every_drop() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = NoiseDistribution::new(4.0, 1.0);
        let batch = dialing_noise(&mut rng, &[], 0, 3, dist, NoiseMode::Deterministic, 1);
        assert_eq!(batch.onions.len(), 12);
        let mut per_drop = std::collections::HashMap::new();
        for onion in &batch.onions {
            let req = DialRequest::decode(onion).expect("decode");
            *per_drop.entry(req.drop.0).or_insert(0u32) += 1;
            assert!(!req.drop.is_noop(), "noise never targets the no-op drop");
        }
        assert_eq!(per_drop.len(), 3);
        assert!(per_drop.values().all(|&c| c == 4));
    }

    #[test]
    fn precomputed_wrap_payloads_is_byte_identical() {
        let mut rng = StdRng::seed_from_u64(8);
        let s1 = Keypair::generate(&mut rng);
        let s2 = Keypair::generate(&mut rng);
        let chain = [s1.public, s2.public];
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|_| ExchangeRequest::noise(&mut rng).encode())
            .collect();

        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = rng_a.clone();
        let reference = wrap_payloads(&mut rng_a, payloads.clone(), &chain, 4, 2);
        let fast = wrap_payloads_precomputed(&mut rng_b, payloads, &chain, 4, 2);
        assert_eq!(reference, fast);
    }

    #[test]
    fn noise_mode_off_is_silent() {
        let mut rng = StdRng::seed_from_u64(6);
        let dist = NoiseDistribution::new(100.0, 10.0);
        let batch = conversation_noise(&mut rng, &[], 0, dist, NoiseMode::Off, 1);
        assert!(batch.onions.is_empty());
        let dial = dialing_noise(&mut rng, &[], 0, 5, dist, NoiseMode::Off, 1);
        assert!(dial.onions.is_empty());
    }

    #[test]
    fn noise_budget_prices_round_kinds() {
        let mut config = SystemConfig {
            conversation_noise: NoiseDistribution::new(1_000.0, 50.0),
            dialing_noise: NoiseDistribution::new(13_000.0, 770.0),
            ..SystemConfig::default()
        };
        let conv = expected_noise_per_server(RoundKind::Conversation, &config);
        let dial = expected_noise_per_server(RoundKind::Dialing { num_drops: 1 }, &config);
        assert!((conv - 2_000.0).abs() < 1e-9);
        assert!((dial - 13_000.0).abs() < 1e-9);
        assert!(dial > conv, "paper-scale dialing rounds are the heavy ones");
        config.noise_mode = NoiseMode::Off;
        assert_eq!(
            expected_noise_per_server(RoundKind::Conversation, &config),
            0.0
        );
    }

    #[test]
    fn last_server_noise_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = NoiseDistribution::new(9.0, 2.0);
        let counts = dialing_noise_counts(&mut rng, 4, dist, NoiseMode::Deterministic);
        assert_eq!(counts, vec![9, 9, 9, 9]);
    }
}
