//! The variables an adversary can observe (paper §4.2, §6.1).
//!
//! Vuvuzela's central design move is that after encryption, padding,
//! mixing and fixed rates, *only these counts remain visible* to an
//! adversary who has compromised the last server:
//!
//! * conversations: `m1` (dead drops accessed once) and `m2` (dead drops
//!   accessed twice) — plus the set of connected clients;
//! * dialing: the number of invitations in each invitation dead drop.
//!
//! The structs here are produced by the last server every round and are
//! the *only* channel through which the adversary crate reads protocol
//! state — keeping the simulated attacks honest.

/// What a compromised last server learns from one conversation round
/// (after noise): the dead-drop access histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConversationObservables {
    /// Dead drops accessed exactly once this round (`m1`).
    pub m1: u64,
    /// Dead drops accessed exactly twice (`m2`) — i.e. successful
    /// exchanges, real or noise.
    pub m2: u64,
    /// Dead drops accessed three or more times. Honest clients never
    /// collide (128-bit random IDs), so anything here was manufactured by
    /// an adversary injecting requests (§4.2 footnote 6).
    pub m_many: u64,
    /// Total requests that reached the last server (users + noise).
    pub total_requests: u64,
}

impl ConversationObservables {
    /// Total dead drops touched this round.
    #[must_use]
    pub fn drops_touched(&self) -> u64 {
        self.m1 + self.m2 + self.m_many
    }
}

/// What an adversary learns from one dialing round: invitation counts per
/// dead drop (observable from response sizes or by downloading the drops,
/// §5.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DialingObservables {
    /// `counts[i]` is the number of invitations in real drop `i + 1`
    /// (drop indices are 1-based on the wire; index 0 is the no-op drop,
    /// reported separately).
    pub counts: Vec<u64>,
    /// Writes to the no-op drop (idle clients plus anything an adversary
    /// injected there).
    pub noop_writes: u64,
}

impl DialingObservables {
    /// Total invitations across all real drops.
    #[must_use]
    pub fn total_invitations(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversation_totals() {
        let obs = ConversationObservables {
            m1: 10,
            m2: 4,
            m_many: 1,
            total_requests: 19,
        };
        assert_eq!(obs.drops_touched(), 15);
    }

    #[test]
    fn dialing_totals() {
        let obs = DialingObservables {
            counts: vec![3, 0, 7],
            noop_writes: 90,
        };
        assert_eq!(obs.total_invitations(), 10);
    }
}
