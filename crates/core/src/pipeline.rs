//! The streaming round scheduler: hops overlap across in-flight rounds,
//! conversation and dialing rounds share one pipeline.
//!
//! The paper's chain is strictly sequential — *"one server cannot start
//! processing a round until the previous server finishes"* (§8.2) — so
//! end-to-end **latency** is the sum of per-hop processing and, in the
//! sequential harness, so is round **throughput**: at any moment every
//! server but one sits idle. Latency is physics (a request really must
//! traverse all hops, and §8.2's analysis of it is unchanged here), but
//! the idleness is not: consecutive rounds are independent, so while
//! server *i* runs round *r*'s forward pass, server *i−1* can already be
//! peeling round *r+1*, and backward passes interleave symmetrically.
//! A deployment also never runs one protocol in isolation: dialing
//! rounds (§5) interleave with conversation rounds on the same mix
//! chain, so the schedule the scheduler must sustain is heterogeneous.
//!
//! [`StreamingChain`] implements exactly that schedule. The model:
//!
//! ## Stages
//!
//! **One stage per server** — each mix server becomes a pipeline stage
//! (an OS thread owning the server for the duration of a schedule)
//! connected to its neighbours by round-tagged hand-off queues. A stage
//! alternates between forward work arriving from upstream and backward
//! work arriving from downstream, in arrival order. Crypto within a
//! stage spreads over the shared [`vuvuzela_net::WorkerPool`] under the
//! stage's own parallelism budget, so concurrent hops share the machine
//! instead of oversubscribing it.
//!
//! ## Hand-offs
//!
//! **Round-tagged hand-offs** — every queued batch carries its
//! [`vuvuzela_wire::RoundId`] *and* its [`RoundKind`]: the protocol
//! tag (whose wire encoding is [`vuvuzela_wire::RoundType`], via
//! [`RoundKind::round_type`]) plus dialing's drop count, because a
//! server holds [`MixServer`] round state — mix permutation,
//! layer keys, per-round RNG — for several rounds of *both* protocols at
//! once and must select the right state and recipe per batch. Links
//! attribute traffic per round ([`vuvuzela_net::Link::round_traffic`])
//! and taps keep receiving the round id, so adversary interception
//! semantics are unchanged: pipelining changes *when* bytes move, never
//! *which round* they belong to. Conversation rounds turn around at the
//! tail (dead-drop exchange, then the backward pass ripples home);
//! dialing rounds are forward-only — the tail deposits into the
//! invitation drops and sends a completion notice straight to the exit
//! queue, and every stage discards a dialing round's reply state the
//! moment it has forwarded it.
//!
//! ## Admission: the weighted window
//!
//! **Weighted in-flight window** — the window is measured in *slots*,
//! `max_in_flight` of them (default `chain_len`, the depth at which
//! every server can be busy simultaneously). Rounds are not all the same
//! size: a dialing round at the paper's µ = 13,000 noise per drop puts
//! orders of magnitude more onions in flight than its client batch
//! suggests, and admitting `chain_len` of them as if they were
//! conversation rounds balloons the queues. So each round is priced by
//! the dp planner's per-round-type noise budget
//! ([`crate::noise::expected_noise_per_server`]):
//!
//! * a round's **cost** is its client batch plus every noising server's
//!   expected cover traffic;
//! * one **slot** is the mean cost of the schedule's conversation
//!   rounds;
//! * a round occupies `round(cost / slot)` slots, clamped to
//!   `[1, max_in_flight]`;
//! * a **homogeneous** schedule (one round kind only) collapses to
//!   weight 1 per round — plain round counting, exactly the behaviour
//!   `run_conversation_rounds` / `run_dialing_rounds` always had;
//!   weights only throttle genuinely mixed schedules.
//!
//! The feeder admits a round while the occupied slots plus the round's
//! weight fit the window — with one progress guarantee: a round heavier
//! than the whole window is still admitted once the pipeline is empty,
//! so heavy dialing rounds throttle admission but can never wedge it,
//! and a burst of them cannot starve the pipeline into deadlock.
//! Weights only shape *scheduling*; they cannot affect any round's
//! bytes (see below).
//!
//! ## Why the bytes cannot change
//!
//! Every source of round randomness is a pure function of `(seed,
//! round)`: servers capture a derived per-round RNG in their
//! `RoundState` (see [`crate::server`]) and the chain-level exchange
//! derives its own the same way. Processing order therefore cannot
//! influence any round's noise, permutation, or filler — which is what
//! the streaming-equivalence property tests assert: per-round replies,
//! dead-drop observables, dialing drops, and per-round link traffic are
//! byte-identical to running the sequential [`Chain`] over the same
//! interleaved [`RoundSpec`] sequence, across ≥3 in-flight rounds with
//! dialing rounds adjacent and separated.
//!
//! Sustained throughput of the streaming schedule is bounded by the
//! slowest hop (plus the tail exchange) instead of the sum of hops; the
//! `bench_streaming_chain` and `bench_mixed_schedule` artefacts measure
//! both schedulers on the same homogeneous resp. mixed workloads.

use crate::chain::{admit_batch, transmit_buf, Chain, RoundOutcome, RoundSpec, RoundTiming};
use crate::config::SystemConfig;
use crate::engine::{AdmissionWindow, EngineStep, RoundEngine};
use crate::observables::ConversationObservables;
use crate::roundbuf::RoundBuffer;
use crate::server::{MixServer, RoundKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use vuvuzela_crypto::x25519::PublicKey;
use vuvuzela_net::link::Direction;
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::dialing::SealedInvitation;
use vuvuzela_wire::RoundId;

/// A round's batch in flight between two stages, tagged with the
/// [`RoundId`] and round kind it belongs to and the timing it has
/// accumulated so far.
struct Tagged {
    round: RoundId,
    kind: RoundKind,
    buf: RoundBuffer,
    timing: RoundTiming,
    /// When the round entered the pipeline (for end-to-end latency).
    fed: Instant,
}

/// A hand-off between neighbouring stages.
enum StageMsg {
    /// Towards the last server (requests).
    Forward(Tagged),
    /// Towards the clients (responses) — or, for forward-only dialing
    /// rounds, the tail's completion notice.
    Backward(Tagged),
}

/// What one stage reports when a schedule drains.
struct StageReport {
    /// Entries taps resized on this stage's incoming/outgoing transfers.
    tap_resized: u64,
    /// Tail stage only: per-round conversation observables, in round
    /// completion order (equals feed order).
    conversation_log: Vec<(u64, ConversationObservables)>,
    /// Tail stage only: the schedule's *last* dialing round's drops
    /// (rounds reach the tail in feed order, so last processed = last
    /// fed, matching the sequential chain's overwrite semantics).
    invitation_drops: Option<(u64, crate::deaddrops::InvitationDrops)>,
    dialing_log: Vec<(u64, crate::observables::DialingObservables)>,
}

/// The fixed wiring of one pipeline stage (see [`pipeline_stage`]).
struct StageCtx<'a> {
    /// Chain position of this stage's server.
    index: usize,
    /// The deployment config ([`crate::engine::RoundEngine`] reads the
    /// chain length, exchange shards and worker budget from it).
    config: &'a SystemConfig,
    /// Rounds the schedule feeds (forward passes to expect).
    total: usize,
    /// Conversation rounds in the schedule (backward passes a non-tail
    /// stage expects; dialing rounds never come back).
    total_conversation: usize,
    /// Chain seed, for the tail's chain-level per-round RNG.
    seed: u64,
    /// The link feeding this stage's forward pass (and carrying its
    /// backward output).
    link: &'a vuvuzela_net::Link,
    /// Downstream neighbour (`None` for the tail).
    next_tx: Option<Sender<StageMsg>>,
    /// Upstream neighbour — the exit queue for stage 0.
    back_tx: Sender<StageMsg>,
    /// The exit queue; the tail sends forward-only dialing completions
    /// here directly.
    done_tx: Sender<StageMsg>,
    /// Raised by any stage that panics (or loses a peer); everyone else
    /// polls it and drains, so one dead stage fails the schedule instead
    /// of deadlocking the survivors.
    abort: &'a AtomicBool,
}

/// The number of window slots each round of `specs` occupies under
/// weighted admission (see the module docs). A thin [`RoundSpec`] view
/// over [`crate::engine::admission_weights`] — the pricing itself lives
/// in the engine, shared verbatim with the wire client driver, so both
/// runtimes throttle mixed schedules identically. Exposed so tests and
/// the mixed-schedule benchmark can inspect the pricing the scheduler
/// will use.
#[must_use]
pub fn admission_weights(config: &SystemConfig, window: usize, specs: &[RoundSpec]) -> Vec<usize> {
    let rounds: Vec<(RoundKind, usize)> = specs
        .iter()
        .map(|spec| (spec.kind(), spec.batch_len()))
        .collect();
    crate::engine::admission_weights(config, window, &rounds)
}

/// A deployment driven by the streaming scheduler. Wraps the same
/// [`Chain`] (same servers, links, seeds — construction is identical for
/// equal `(config, seed)`), so everything a sequential chain exposes —
/// observables, meters, taps, drop downloads — is available through
/// [`StreamingChain::chain`] / [`StreamingChain::chain_mut`].
pub struct StreamingChain {
    chain: Chain,
    max_in_flight: usize,
}

impl StreamingChain {
    /// Builds a streaming deployment; identical construction (keys,
    /// seeds, links) to [`Chain::new`] with the same arguments.
    #[must_use]
    pub fn new(config: SystemConfig, seed: u64) -> StreamingChain {
        let max_in_flight = config.chain_len.max(1);
        StreamingChain {
            chain: Chain::new(config, seed),
            max_in_flight,
        }
    }

    /// Overrides the in-flight window (default: `chain_len` slots).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_max_in_flight(mut self, window: usize) -> StreamingChain {
        assert!(window > 0, "need at least one round in flight");
        self.max_in_flight = window;
        self
    }

    /// The underlying deployment: observables, links, meters, servers.
    #[must_use]
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Mutable access (e.g. to attach adversary taps to links).
    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    /// The chain's public keys, in onion-wrapping order.
    #[must_use]
    pub fn server_public_keys(&self) -> Vec<PublicKey> {
        self.chain.server_public_keys()
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.chain.config()
    }

    /// Downloads one invitation drop from the most recent dialing
    /// round (see [`Chain::download_drop`]).
    pub fn download_drop(&mut self, index: InvitationDropIndex) -> Option<Vec<SealedInvitation>> {
        self.chain.download_drop(index)
    }

    /// Recovers from an aborted schedule: discards every server's
    /// in-flight round state so the next schedule starts clean (see
    /// [`Chain::abort_in_flight_rounds`] for the full abort semantics).
    /// Returns the number of `(server, round)` states dropped.
    pub fn abort_in_flight_rounds(&mut self) -> usize {
        self.chain.abort_in_flight_rounds()
    }

    /// Runs a schedule of conversation rounds with the hops overlapped
    /// across the weighted in-flight window. Returns per-round
    /// `(replies, timing)` in input order — byte-identical to calling
    /// [`Chain::run_conversation_round`] once per round on an
    /// identically seeded sequential chain.
    ///
    /// # Panics
    ///
    /// Panics on duplicate round ids within one schedule (each round
    /// needs its own in-flight state) or if a stage thread dies (the
    /// abort flag drains the remaining stages first, so a panicking
    /// adversary tap or worker closure fails the schedule instead of
    /// hanging it).
    pub fn run_conversation_rounds(
        &mut self,
        rounds: Vec<(u64, Vec<Vec<u8>>)>,
    ) -> Vec<(Vec<Vec<u8>>, RoundTiming)> {
        let specs = rounds
            .into_iter()
            .map(|(round, batch)| RoundSpec::Conversation {
                round,
                batch: batch.into(),
            })
            .collect();
        self.run_mixed_schedule(specs)
            .into_iter()
            .map(|outcome| match outcome {
                RoundOutcome::Conversation { replies, timing } => (replies, timing),
                RoundOutcome::Dialing { .. } => {
                    unreachable!("homogeneous conversation schedule")
                }
            })
            .collect()
    }

    /// Runs a schedule of forward-only dialing rounds (§5) through the
    /// overlapped pipeline; `num_drops` applies to every round. The last
    /// round's invitation drops are retained for
    /// [`StreamingChain::download_drop`]. Byte-identical results to the
    /// sequential [`Chain::run_dialing_round`] per round.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StreamingChain::run_conversation_rounds`].
    pub fn run_dialing_rounds(
        &mut self,
        rounds: Vec<(u64, Vec<Vec<u8>>)>,
        num_drops: u32,
    ) -> Vec<RoundTiming> {
        let specs = rounds
            .into_iter()
            .map(|(round, batch)| RoundSpec::Dialing {
                round,
                batch: batch.into(),
                num_drops,
            })
            .collect();
        self.run_mixed_schedule(specs)
            .into_iter()
            .map(|outcome| match outcome {
                RoundOutcome::Dialing { timing } => timing,
                RoundOutcome::Conversation { .. } => {
                    unreachable!("homogeneous dialing schedule")
                }
            })
            .collect()
    }

    /// The unified scheduler: runs a heterogeneous sequence of
    /// conversation and dialing rounds through one overlapped pipeline,
    /// admitting rounds under the weighted window (see the module docs)
    /// and returning per-round [`RoundOutcome`]s in input order — each
    /// byte-identical to running the sequential [`Chain::run_round`]
    /// over the same interleaved sequence.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StreamingChain::run_conversation_rounds`].
    pub fn run_mixed_schedule(&mut self, specs: Vec<RoundSpec>) -> Vec<RoundOutcome> {
        let order: Vec<u64> = specs.iter().map(RoundSpec::round).collect();
        assert_distinct(&order);
        let total = specs.len();
        if total == 0 {
            return Vec::new();
        }
        let n = self.chain.config.chain_len;
        let seed = self.chain.seed;
        let config = self.chain.config.clone();
        let window = self.max_in_flight;
        let weights = admission_weights(&self.chain.config, window, &specs);
        let total_conversation = specs
            .iter()
            .filter(|spec| matches!(spec.kind(), RoundKind::Conversation))
            .count();

        let links = &self.chain.links;
        let client_link = &self.chain.client_link;

        let mut stage_tx: Vec<Sender<StageMsg>> = Vec::with_capacity(n);
        let mut stage_rx: Vec<Receiver<StageMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            stage_tx.push(tx);
            stage_rx.push(rx);
        }
        let (out_tx, out_rx) = channel::<StageMsg>();
        let abort = &AtomicBool::new(false);

        let mut collected: HashMap<u64, RoundOutcome> = HashMap::new();
        let mut resized = 0u64;
        let mut reports: Vec<StageReport> = Vec::new();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            let mut rx_iter = stage_rx.into_iter();
            for (i, server) in self.chain.servers.iter_mut().enumerate() {
                let rx = rx_iter.next().expect("one receiver per stage");
                let ctx = StageCtx {
                    index: i,
                    config: &config,
                    total,
                    total_conversation,
                    seed,
                    link: &links[i],
                    next_tx: stage_tx.get(i + 1).cloned(),
                    // Backward flow for stage 0 goes straight to the
                    // exit queue.
                    back_tx: if i == 0 {
                        out_tx.clone()
                    } else {
                        stage_tx[i - 1].clone()
                    },
                    done_tx: out_tx.clone(),
                    abort,
                };
                handles.push(s.spawn(move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pipeline_stage(server, &ctx, &rx)
                    }));
                    match outcome {
                        Ok(report) => report,
                        Err(payload) => {
                            ctx.abort.store(true, Ordering::Release);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            // The stages hold all the senders they need; dropping the
            // originals lets disconnects propagate when stages exit.
            let feed_tx = stage_tx.remove(0);
            drop(stage_tx);
            drop(out_tx);

            // The feeder/collector: admit rounds while the weighted
            // window has room, collect finished rounds otherwise.
            let collect_one =
                |resized: &mut u64, collected: &mut HashMap<u64, RoundOutcome>| -> u64 {
                    let Some(StageMsg::Backward(mut tagged)) = recv_or_abort(&out_rx, abort) else {
                        panic!("a pipeline stage died; schedule aborted");
                    };
                    let round = tagged.round.0;
                    let outcome = match tagged.kind {
                        RoundKind::Conversation => {
                            let (replies, r) =
                                transmit_buf(client_link, round, Direction::Backward, tagged.buf);
                            *resized += r;
                            tagged.timing.total = tagged.fed.elapsed();
                            RoundOutcome::Conversation {
                                replies: replies.to_vecs(),
                                timing: tagged.timing,
                            }
                        }
                        RoundKind::Dialing { .. } => {
                            tagged.timing.total = tagged.fed.elapsed();
                            RoundOutcome::Dialing {
                                timing: tagged.timing,
                            }
                        }
                    };
                    collected.insert(round, outcome);
                    round
                };
            let mut done = 0usize;
            let mut admission = AdmissionWindow::new(window);
            for (spec, weight) in specs.into_iter().zip(weights) {
                // Admit while the weighted window has room; a round
                // heavier than the whole window still enters once the
                // pipeline is empty (the window's progress guarantee).
                while admission.would_block(weight) {
                    let finished = collect_one(&mut resized, &mut collected);
                    admission
                        .complete(finished)
                        .expect("finished round was admitted");
                    done += 1;
                }
                let (round, kind, batch) = spec.into_parts();
                let buf = admit_batch(client_link, round, kind, n, batch);
                admission.admit(round, weight);
                assert!(
                    feed_tx
                        .send(StageMsg::Forward(Tagged {
                            round: RoundId(round),
                            kind,
                            buf,
                            timing: RoundTiming::default(),
                            fed: Instant::now(),
                        }))
                        .is_ok(),
                    "a pipeline stage died; schedule aborted"
                );
            }
            drop(feed_tx);
            while done < total {
                let _ = collect_one(&mut resized, &mut collected);
                done += 1;
            }
            for handle in handles {
                reports.push(handle.join().expect("stage thread panicked"));
            }
        });

        self.chain.tap_resized += resized;
        for report in reports {
            self.chain.tap_resized += report.tap_resized;
            self.chain.conversation_log.extend(report.conversation_log);
            self.chain.dialing_log.extend(report.dialing_log);
            if let Some(drops) = report.invitation_drops {
                self.chain.invitation_drops = Some(drops);
            }
        }
        order
            .iter()
            .map(|round| collected.remove(round).expect("every round completed"))
            .collect()
    }
}

/// Blocks for the next message, polling the shared abort flag so a dead
/// peer ends the wait. `None` means the schedule is aborting (flag set or
/// all senders gone).
fn recv_or_abort(rx: &Receiver<StageMsg>, abort: &AtomicBool) -> Option<StageMsg> {
    loop {
        if abort.load(Ordering::Acquire) {
            return None;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(msg) => return Some(msg),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

/// One pipeline stage: drives one [`RoundEngine`] over every round
/// arriving from upstream — each processed under the batch's own tagged
/// round kind — and its backward pass on every conversation round
/// arriving from downstream, in arrival order. The engine runs the
/// round recipe (forward pass, the tail's dead-drop exchange /
/// invitation deposit, backward passes — the same state machine the
/// wire node runtimes drive); the stage only meters the batch through
/// its link, routes the engine's steps onto the hand-off queues, and
/// logs what the tail observed.
fn pipeline_stage(
    server: &mut MixServer,
    ctx: &StageCtx<'_>,
    rx: &Receiver<StageMsg>,
) -> StageReport {
    let mut engine = RoundEngine::new(server, ctx.config, ctx.seed);
    let is_last = ctx.index + 1 == ctx.config.chain_len;
    let mut report = StageReport {
        tap_resized: 0,
        conversation_log: Vec::new(),
        invitation_drops: None,
        dialing_log: Vec::new(),
    };
    let expect_backwards = if is_last { 0 } else { ctx.total_conversation };
    let mut forwards = 0usize;
    let mut backwards = 0usize;
    while forwards < ctx.total || backwards < expect_backwards {
        let Some(msg) = recv_or_abort(rx, ctx.abort) else {
            return report; // schedule aborting; hand back what we have
        };
        let sent_ok = match msg {
            StageMsg::Forward(mut tagged) => {
                forwards += 1;
                let (buf, r) =
                    transmit_buf(ctx.link, tagged.round.0, Direction::Forward, tagged.buf);
                report.tap_resized += r;
                match engine.forward(tagged.round.0, tagged.kind, buf, &mut tagged.timing) {
                    EngineStep::Forward { buf, .. } => {
                        tagged.buf = buf;
                        ctx.next_tx
                            .as_ref()
                            .expect("non-tail stage has a downstream")
                            .send(StageMsg::Forward(tagged))
                            .is_ok()
                    }
                    EngineStep::Turnaround {
                        round,
                        replies,
                        observables,
                    } => {
                        report.conversation_log.push((round, observables));
                        let (replies, r) =
                            transmit_buf(ctx.link, round, Direction::Backward, replies);
                        report.tap_resized += r;
                        tagged.buf = replies;
                        ctx.back_tx.send(StageMsg::Backward(tagged)).is_ok()
                    }
                    EngineStep::DialingComplete { round, drops, .. } => {
                        report.dialing_log.push((round, drops.observables()));
                        report.invitation_drops = Some((round, drops));
                        tagged.buf = RoundBuffer::new(1, 0);
                        // Completion notice straight to the exit queue.
                        ctx.done_tx.send(StageMsg::Backward(tagged)).is_ok()
                    }
                }
            }
            StageMsg::Backward(mut tagged) => {
                backwards += 1;
                let replies = engine.backward(tagged.round.0, tagged.buf, &mut tagged.timing);
                let (replies, r) =
                    transmit_buf(ctx.link, tagged.round.0, Direction::Backward, replies);
                report.tap_resized += r;
                tagged.buf = replies;
                ctx.back_tx.send(StageMsg::Backward(tagged)).is_ok()
            }
        };
        if !sent_ok {
            // Our peer is gone mid-schedule: flag the abort and drain.
            ctx.abort.store(true, Ordering::Release);
            return report;
        }
    }
    report
}

fn assert_distinct(rounds: &[u64]) {
    let mut seen = HashSet::new();
    assert!(
        rounds.iter().all(|r| seen.insert(*r)),
        "duplicate round ids in one schedule"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::onion;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    use vuvuzela_wire::conversation::ExchangeRequest;
    use vuvuzela_wire::dialing::DialRequest;

    fn tiny_config(chain_len: usize) -> SystemConfig {
        SystemConfig {
            chain_len,
            conversation_noise: NoiseDistribution::new(3.0, 1.0),
            dialing_noise: NoiseDistribution::new(2.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    fn client_batch(
        pks: &[vuvuzela_crypto::x25519::PublicKey],
        round: u64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<u8>> {
        (0..count)
            .map(|_| {
                let payload = ExchangeRequest::noise(rng).encode();
                onion::wrap(rng, pks, round, &payload).0
            })
            .collect()
    }

    fn dial_batch(
        pks: &[vuvuzela_crypto::x25519::PublicKey],
        round: u64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<u8>> {
        (0..count)
            .map(|_| {
                let payload = DialRequest::noop(rng).encode();
                onion::wrap(rng, pks, round, &payload).0
            })
            .collect()
    }

    #[test]
    fn streaming_matches_sequential_across_three_rounds() {
        let seed = 11;
        let mut streaming = StreamingChain::new(tiny_config(3), seed);
        let mut sequential = Chain::new(tiny_config(3), seed);
        let pks = streaming.server_public_keys();
        assert_eq!(pks, sequential.server_public_keys());

        let mut rng = StdRng::seed_from_u64(5);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..3u64)
            .map(|round| (round, client_batch(&pks, round, 4, &mut rng)))
            .collect();

        let streamed = streaming.run_conversation_rounds(rounds.clone());
        let mut expected = Vec::new();
        for (round, batch) in rounds {
            expected.push(sequential.run_conversation_round(round, batch));
        }
        assert_eq!(streamed.len(), expected.len());
        for (round, ((got, _), (want, _))) in streamed.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "round {round} replies diverged");
        }

        // Observables and per-round link accounting agree too.
        let mut got_obs: Vec<_> = streaming.chain().conversation_observables().to_vec();
        got_obs.sort_by_key(|(r, _)| *r);
        assert_eq!(&got_obs, sequential.conversation_observables());
        for (sl, ql) in streaming.chain().links().iter().zip(sequential.links()) {
            for round in 0..3 {
                for direction in [Direction::Forward, Direction::Backward] {
                    assert_eq!(
                        sl.round_traffic(round, direction),
                        ql.round_traffic(round, direction),
                        "link {} round {round}",
                        sl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dialing_schedule_matches_sequential() {
        let seed = 23;
        let mut streaming = StreamingChain::new(tiny_config(2), seed);
        let mut sequential = Chain::new(tiny_config(2), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(7);

        let caller = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let callee = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let num_drops = 2;
        let target = InvitationDropIndex::for_recipient(&callee.public, num_drops);
        let make_round = |round: u64, rng: &mut StdRng| {
            let request = vuvuzela_wire::dialing::DialRequest {
                drop: target,
                invitation: SealedInvitation::seal(rng, &caller.public, &callee.public),
            };
            vec![onion::wrap(rng, &pks, round, &request.encode()).0]
        };
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (10..13u64)
            .map(|round| (round, make_round(round, &mut rng)))
            .collect();

        let timings = streaming.run_dialing_rounds(rounds.clone(), num_drops);
        assert_eq!(timings.len(), 3);
        for (round, batch) in rounds {
            let _ = sequential.run_dialing_round(round, batch, num_drops);
        }

        let mut got: Vec<_> = streaming.chain().dialing_observables().to_vec();
        got.sort_by_key(|(r, _)| *r);
        assert_eq!(&got, sequential.dialing_observables());

        // Both retain the last round's drops with identical contents.
        let streamed = streaming.download_drop(target).expect("drops exist");
        let reference = sequential.download_drop(target).expect("drops exist");
        assert_eq!(streamed, reference);
        // No server leaked round state (dialing rounds are aborted).
        for i in 0..2 {
            assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    #[test]
    fn mixed_schedule_matches_sequential() {
        let seed = 41;
        let mut streaming = StreamingChain::new(tiny_config(3), seed).with_max_in_flight(3);
        let mut sequential = Chain::new(tiny_config(3), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(13);
        let num_drops = 2;

        // Conversation and dialing interleaved; dialing both adjacent
        // (rounds 1, 2) and separated (round 4).
        let specs: Vec<RoundSpec> = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: client_batch(&pks, 0, 3, &mut rng).into(),
            },
            RoundSpec::Dialing {
                round: 1,
                batch: dial_batch(&pks, 1, 2, &mut rng).into(),
                num_drops,
            },
            RoundSpec::Dialing {
                round: 2,
                batch: dial_batch(&pks, 2, 1, &mut rng).into(),
                num_drops,
            },
            RoundSpec::Conversation {
                round: 3,
                batch: client_batch(&pks, 3, 2, &mut rng).into(),
            },
            RoundSpec::Dialing {
                round: 4,
                batch: dial_batch(&pks, 4, 2, &mut rng).into(),
                num_drops,
            },
        ];

        let outcomes = streaming.run_mixed_schedule(specs.clone());
        let expected: Vec<RoundOutcome> = specs
            .into_iter()
            .map(|spec| sequential.run_round(spec))
            .collect();

        assert_eq!(outcomes.len(), expected.len());
        for (got, want) in outcomes.iter().zip(&expected) {
            assert_eq!(got.replies(), want.replies(), "replies diverged");
        }

        let mut got_obs: Vec<_> = streaming.chain().conversation_observables().to_vec();
        got_obs.sort_by_key(|(r, _)| *r);
        assert_eq!(&got_obs, sequential.conversation_observables());
        let mut got_dial: Vec<_> = streaming.chain().dialing_observables().to_vec();
        got_dial.sort_by_key(|(r, _)| *r);
        assert_eq!(&got_dial, sequential.dialing_observables());

        // Both chains retain the *last* dialing round's drops.
        for drop in 1..=num_drops {
            let index = vuvuzela_wire::deaddrop::InvitationDropIndex(drop);
            assert_eq!(
                streaming.download_drop(index),
                sequential.download_drop(index),
                "drop {drop} diverged"
            );
        }
        for i in 0..3 {
            assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    #[test]
    fn heavy_dialing_rounds_weigh_more_than_conversation_rounds() {
        let config = SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(3.0, 1.0),
            dialing_noise: NoiseDistribution::new(13_000.0, 770.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        };
        let specs = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: vec![Vec::new(); 4].into(),
            },
            RoundSpec::Dialing {
                round: 1,
                batch: vec![Vec::new(); 4].into(),
                num_drops: 1,
            },
            RoundSpec::Conversation {
                round: 2,
                batch: vec![Vec::new(); 4].into(),
            },
        ];
        let weights = admission_weights(&config, 3, &specs);
        assert_eq!(weights[0], 1, "conversation rounds are the unit slot");
        assert_eq!(weights[2], 1);
        assert!(
            weights[1] > weights[0],
            "a µ=13k dialing round must occupy more window slots"
        );
        assert!(weights[1] <= 3, "weights clamp to the window");

        // Homogeneous schedules collapse to plain round counting — even
        // with uneven batches or drop counts, so the homogeneous entry
        // points schedule exactly as they did before weighted admission.
        let dialing_only = vec![
            RoundSpec::Dialing {
                round: 0,
                batch: vec![Vec::new(); 4].into(),
                num_drops: 1,
            },
            RoundSpec::Dialing {
                round: 1,
                batch: vec![Vec::new(); 400].into(),
                num_drops: 3,
            },
        ];
        assert_eq!(admission_weights(&config, 3, &dialing_only), vec![1, 1]);
        let conversation_only = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: vec![Vec::new(); 10].into(),
            },
            RoundSpec::Conversation {
                round: 1,
                batch: vec![Vec::new(); 500].into(),
            },
        ];
        assert_eq!(
            admission_weights(&config, 3, &conversation_only),
            vec![1, 1]
        );
    }

    #[test]
    fn window_heavy_round_still_admitted_and_byte_identical() {
        // A dialing round priced at the full window must run (progress
        // guarantee) and stay byte-identical to the sequential chain.
        let config = SystemConfig {
            chain_len: 2,
            conversation_noise: NoiseDistribution::new(2.0, 1.0),
            dialing_noise: NoiseDistribution::new(40.0, 5.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        };
        let seed = 51;
        let mut streaming = StreamingChain::new(config.clone(), seed).with_max_in_flight(2);
        let mut sequential = Chain::new(config.clone(), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(3);
        let specs = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: client_batch(&pks, 0, 2, &mut rng).into(),
            },
            RoundSpec::Dialing {
                round: 1,
                batch: dial_batch(&pks, 1, 1, &mut rng).into(),
                num_drops: 1,
            },
            RoundSpec::Conversation {
                round: 2,
                batch: client_batch(&pks, 2, 2, &mut rng).into(),
            },
        ];
        let weights = admission_weights(&config, 2, &specs);
        assert_eq!(weights[1], 2, "the dialing round fills the window");

        let outcomes = streaming.run_mixed_schedule(specs.clone());
        for (spec, got) in specs.into_iter().zip(outcomes) {
            let want = sequential.run_round(spec);
            assert_eq!(got.replies(), want.replies());
        }
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let mut streaming = StreamingChain::new(tiny_config(2), 1);
        assert!(streaming.run_conversation_rounds(Vec::new()).is_empty());
        assert!(streaming.run_dialing_rounds(Vec::new(), 1).is_empty());
        assert!(streaming.run_mixed_schedule(Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate round ids")]
    fn duplicate_rounds_rejected() {
        let mut streaming = StreamingChain::new(tiny_config(2), 1);
        let _ = streaming.run_conversation_rounds(vec![(0, vec![]), (0, vec![])]);
    }

    #[test]
    fn panicking_tap_fails_schedule_instead_of_hanging() {
        // An adversary tap (or any stage-side closure) that panics must
        // abort the whole schedule with a panic — never deadlock the
        // feeder or the surviving stages.
        struct ExplodingTap;
        impl vuvuzela_net::Tap for ExplodingTap {
            fn intercept(&mut self, _ctx: &vuvuzela_net::TapContext, _batch: &mut Vec<Vec<u8>>) {
                panic!("tap exploded");
            }
        }

        let mut streaming = StreamingChain::new(tiny_config(3), 3);
        let pks = streaming.server_public_keys();
        streaming
            .chain_mut()
            .link_mut(1)
            .attach_tap(std::sync::Arc::new(parking_lot::Mutex::new(ExplodingTap)));

        let mut rng = StdRng::seed_from_u64(4);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..3u64)
            .map(|round| (round, client_batch(&pks, round, 2, &mut rng)))
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            streaming.run_conversation_rounds(rounds)
        }));
        assert!(outcome.is_err(), "schedule must fail, not hang");
    }

    #[test]
    fn tampered_mixed_schedule_completes_and_drains() {
        // An active adversary that both removes and adds onions must
        // degrade the schedule, never wedge it: every round still
        // yields an outcome of the right kind and every server drains.
        // (The sim crate's soak matrix checks *which* invariants the
        // tampering trips; this test pins the liveness floor in core.)
        struct DropAndInject;
        impl vuvuzela_net::Tap for DropAndInject {
            fn intercept(&mut self, ctx: &vuvuzela_net::TapContext, batch: &mut Vec<Vec<u8>>) {
                if ctx.direction != Direction::Forward {
                    return;
                }
                let mut keep = false;
                batch.retain(|_| {
                    keep = !keep;
                    keep
                });
                if let Some(width) = batch.first().map(Vec::len) {
                    batch.push(vec![0xAB; width]);
                    batch.push(vec![0xCD; width]);
                }
            }
        }

        let mut streaming = StreamingChain::new(tiny_config(3), 17).with_max_in_flight(3);
        let pks = streaming.server_public_keys();
        streaming
            .chain_mut()
            .link_mut(0)
            .attach_tap(std::sync::Arc::new(parking_lot::Mutex::new(DropAndInject)));

        let mut rng = StdRng::seed_from_u64(29);
        let specs = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: client_batch(&pks, 0, 4, &mut rng).into(),
            },
            RoundSpec::Dialing {
                round: 1,
                batch: dial_batch(&pks, 1, 3, &mut rng).into(),
                num_drops: 2,
            },
            RoundSpec::Conversation {
                round: 2,
                batch: client_batch(&pks, 2, 4, &mut rng).into(),
            },
        ];
        let outcomes = streaming.run_mixed_schedule(specs);
        assert_eq!(outcomes.len(), 3, "every tampered round must complete");
        assert!(outcomes[0].replies().is_some());
        assert!(outcomes[1].replies().is_none());
        assert!(outcomes[2].replies().is_some());
        for i in 0..3 {
            assert_eq!(
                streaming.chain().server(i).in_flight_rounds(),
                0,
                "server {i} retained round state after a tampered schedule"
            );
        }
    }

    #[test]
    fn tampered_dialing_rounds_stay_forward_only() {
        // Replaying a dialing batch into its own transfer (doubling it)
        // must not conjure a backward pass: dialing rounds stay
        // forward-only whatever the adversary feeds the chain.
        struct DoubleForward;
        impl vuvuzela_net::Tap for DoubleForward {
            fn intercept(&mut self, ctx: &vuvuzela_net::TapContext, batch: &mut Vec<Vec<u8>>) {
                if ctx.direction == Direction::Forward {
                    let copy = batch.clone();
                    batch.extend(copy);
                }
            }
        }

        let chain_len = 2;
        let mut streaming = StreamingChain::new(tiny_config(chain_len), 53);
        let pks = streaming.server_public_keys();
        streaming
            .chain_mut()
            .link_mut(0)
            .attach_tap(std::sync::Arc::new(parking_lot::Mutex::new(DoubleForward)));

        let mut rng = StdRng::seed_from_u64(37);
        let num_drops = 2;
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..3u64)
            .map(|round| (round, dial_batch(&pks, round, 2, &mut rng)))
            .collect();
        let timings = streaming.run_dialing_rounds(rounds, num_drops);
        assert_eq!(timings.len(), 3);
        for (round, timing) in timings.iter().enumerate() {
            assert!(
                timing.backward.is_empty(),
                "dialing round {round} ran a backward stage under tampering"
            );
            for link in streaming.chain().links() {
                assert_eq!(
                    link.round_traffic(round as u64, Direction::Backward),
                    (0, 0),
                    "dialing round {round} put backward traffic on {}",
                    link.name()
                );
            }
        }
        for i in 0..chain_len {
            assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    #[test]
    fn single_server_chain_streams() {
        let seed = 31;
        let mut streaming = StreamingChain::new(tiny_config(1), seed);
        let mut sequential = Chain::new(tiny_config(1), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(9);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..2u64)
            .map(|round| (round, client_batch(&pks, round, 2, &mut rng)))
            .collect();
        let streamed = streaming.run_conversation_rounds(rounds.clone());
        for ((round, batch), (got, _)) in rounds.into_iter().zip(streamed) {
            let (want, _) = sequential.run_conversation_round(round, batch);
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn single_server_mixed_schedule() {
        // chain_len = 1: the tail is also stage 0, so conversation
        // turnarounds and dialing completion notices both exit directly.
        let seed = 61;
        let mut streaming = StreamingChain::new(tiny_config(1), seed).with_max_in_flight(3);
        let mut sequential = Chain::new(tiny_config(1), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(19);
        let specs = vec![
            RoundSpec::Conversation {
                round: 0,
                batch: client_batch(&pks, 0, 2, &mut rng).into(),
            },
            RoundSpec::Dialing {
                round: 1,
                batch: dial_batch(&pks, 1, 1, &mut rng).into(),
                num_drops: 1,
            },
            RoundSpec::Conversation {
                round: 2,
                batch: client_batch(&pks, 2, 1, &mut rng).into(),
            },
        ];
        let outcomes = streaming.run_mixed_schedule(specs.clone());
        for (spec, got) in specs.into_iter().zip(outcomes) {
            let want = sequential.run_round(spec);
            assert_eq!(got.replies(), want.replies());
        }
    }
}
