//! The streaming round scheduler: hops overlap across in-flight rounds.
//!
//! The paper's chain is strictly sequential — *"one server cannot start
//! processing a round until the previous server finishes"* (§8.2) — so
//! end-to-end **latency** is the sum of per-hop processing and, in the
//! sequential harness, so is round **throughput**: at any moment every
//! server but one sits idle. Latency is physics (a request really must
//! traverse all hops, and §8.2's analysis of it is unchanged here), but
//! the idleness is not: consecutive rounds are independent, so while
//! server *i* runs round *r*'s forward pass, server *i−1* can already be
//! peeling round *r+1*, and backward passes interleave symmetrically.
//!
//! [`StreamingChain`] implements exactly that schedule:
//!
//! * **one stage per server** — each mix server becomes a pipeline stage
//!   (an OS thread owning the server for the duration of a schedule)
//!   connected to its neighbours by round-tagged hand-off queues. A
//!   stage alternates between forward work arriving from upstream and
//!   backward work arriving from downstream, in arrival order.
//! * **round-tagged hand-offs** — every queued batch carries its
//!   [`vuvuzela_wire::RoundId`] (and its accumulated
//!   [`RoundTiming`]), because a server now holds [`MixServer`] round
//!   state — mix permutation, layer keys, per-round RNG — for several
//!   rounds at once and must select the right one per batch. Links
//!   attribute traffic per round ([`vuvuzela_net::Link::round_traffic`])
//!   and taps keep receiving the round id, so adversary interception
//!   semantics are unchanged: pipelining changes *when* bytes move,
//!   never *which round* they belong to.
//! * **bounded in-flight window** — at most `chain_len` rounds (by
//!   default) are admitted between entry and exit, which is the depth at
//!   which every server can be busy simultaneously; more would only grow
//!   queues.
//! * **per-round dead-drop exchange at the tail** — the last stage runs
//!   the same [`crate::chain`] exchange/deposit code as the sequential
//!   path, with the chain-level per-round RNG.
//! * **stage-scoped crypto parallelism** — each stage submits its slot
//!   work to the shared [`vuvuzela_net::WorkerPool`] under its own
//!   parallelism budget, so concurrent hops share the machine instead of
//!   oversubscribing it.
//!
//! ## Why the bytes cannot change
//!
//! Every source of round randomness is a pure function of `(seed,
//! round)`: servers capture a derived per-round RNG in their
//! `RoundState` (see [`crate::server`]) and the chain-level exchange
//! derives its own the same way. Processing order therefore cannot
//! influence any round's noise, permutation, or filler — which is what
//! the streaming-equivalence property tests assert: per-round replies,
//! dead-drop observables, and per-round link traffic are byte-identical
//! to [`Chain::run_conversation_round`] for the same seeds, across ≥3
//! in-flight rounds.
//!
//! Sustained throughput of the streaming schedule is bounded by the
//! slowest hop (plus the tail exchange) instead of the sum of hops; the
//! `bench_streaming_chain` artefact measures both schedulers on the same
//! workload.

use crate::chain::{deposit_dialing, exchange_conversation, transmit_buf, Chain, RoundTiming};
use crate::config::SystemConfig;
use crate::observables::ConversationObservables;
use crate::roundbuf::RoundBuffer;
use crate::server::{MixServer, RoundKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::PublicKey;
use vuvuzela_net::link::Direction;
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::dialing::SealedInvitation;
use vuvuzela_wire::RoundId;

/// A round's batch in flight between two stages, tagged with the
/// [`RoundId`] it belongs to and the timing it has accumulated so far.
struct Tagged {
    round: RoundId,
    buf: RoundBuffer,
    timing: RoundTiming,
    /// When the round entered the pipeline (for end-to-end latency).
    fed: Instant,
}

/// A hand-off between neighbouring stages.
enum StageMsg {
    /// Towards the last server (requests).
    Forward(Tagged),
    /// Towards the clients (responses) — or, for forward-only dialing
    /// rounds, the tail's completion notice.
    Backward(Tagged),
}

/// What one stage reports when a schedule drains.
struct StageReport {
    /// Entries taps resized on this stage's incoming/outgoing transfers.
    tap_resized: u64,
    /// Tail stage only: per-round conversation observables, in round
    /// completion order (equals feed order).
    conversation_log: Vec<(u64, ConversationObservables)>,
    /// Tail stage only, dialing schedules: the last round's drops.
    invitation_drops: Option<(u64, crate::deaddrops::InvitationDrops)>,
    dialing_log: Vec<(u64, crate::observables::DialingObservables)>,
}

/// A deployment driven by the streaming scheduler. Wraps the same
/// [`Chain`] (same servers, links, seeds — construction is identical for
/// equal `(config, seed)`), so everything a sequential chain exposes —
/// observables, meters, taps, drop downloads — is available through
/// [`StreamingChain::chain`] / [`StreamingChain::chain_mut`].
pub struct StreamingChain {
    chain: Chain,
    max_in_flight: usize,
}

impl StreamingChain {
    /// Builds a streaming deployment; identical construction (keys,
    /// seeds, links) to [`Chain::new`] with the same arguments.
    #[must_use]
    pub fn new(config: SystemConfig, seed: u64) -> StreamingChain {
        let max_in_flight = config.chain_len.max(1);
        StreamingChain {
            chain: Chain::new(config, seed),
            max_in_flight,
        }
    }

    /// Overrides the in-flight window (default: `chain_len`).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_max_in_flight(mut self, window: usize) -> StreamingChain {
        assert!(window > 0, "need at least one round in flight");
        self.max_in_flight = window;
        self
    }

    /// The underlying deployment: observables, links, meters, servers.
    #[must_use]
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Mutable access (e.g. to attach adversary taps to links).
    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    /// The chain's public keys, in onion-wrapping order.
    #[must_use]
    pub fn server_public_keys(&self) -> Vec<PublicKey> {
        self.chain.server_public_keys()
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.chain.config()
    }

    /// Downloads one invitation drop from the most recent dialing
    /// schedule (see [`Chain::download_drop`]).
    pub fn download_drop(&mut self, index: InvitationDropIndex) -> Option<Vec<SealedInvitation>> {
        self.chain.download_drop(index)
    }

    /// Runs a schedule of conversation rounds with up to
    /// `max_in_flight` rounds overlapped across the chain's hops.
    /// Returns per-round `(replies, timing)` in input order —
    /// byte-identical to calling [`Chain::run_conversation_round`] once
    /// per round on an identically seeded sequential chain.
    ///
    /// # Panics
    ///
    /// Panics on duplicate round ids within one schedule (each round
    /// needs its own in-flight state) or if a stage thread dies (the
    /// abort flag drains the remaining stages first, so a panicking
    /// adversary tap or worker closure fails the schedule instead of
    /// hanging it).
    pub fn run_conversation_rounds(
        &mut self,
        rounds: Vec<(u64, Vec<Vec<u8>>)>,
    ) -> Vec<(Vec<Vec<u8>>, RoundTiming)> {
        self.run_schedule(RoundKind::Conversation, rounds)
    }

    /// Runs a schedule of forward-only dialing rounds (§5) through the
    /// overlapped pipeline; `num_drops` applies to every round. The last
    /// round's invitation drops are retained for
    /// [`StreamingChain::download_drop`]. Byte-identical results to the
    /// sequential [`Chain::run_dialing_round`] per round.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StreamingChain::run_conversation_rounds`].
    pub fn run_dialing_rounds(
        &mut self,
        rounds: Vec<(u64, Vec<Vec<u8>>)>,
        num_drops: u32,
    ) -> Vec<RoundTiming> {
        self.run_schedule(RoundKind::Dialing { num_drops }, rounds)
            .into_iter()
            .map(|(_, timing)| timing)
            .collect()
    }

    /// The shared pipeline driver: wires one stage thread per server,
    /// feeds rounds while the in-flight window has room, collects
    /// completed rounds at the exit, and merges the stages' reports back
    /// into the chain. For dialing schedules the per-round "replies" are
    /// empty (forward-only protocol).
    fn run_schedule(
        &mut self,
        kind: RoundKind,
        rounds: Vec<(u64, Vec<Vec<u8>>)>,
    ) -> Vec<(Vec<Vec<u8>>, RoundTiming)> {
        let order: Vec<u64> = rounds.iter().map(|(r, _)| *r).collect();
        assert_distinct(&order);
        let total = rounds.len();
        if total == 0 {
            return Vec::new();
        }
        let is_dialing = matches!(kind, RoundKind::Dialing { .. });
        let n = self.chain.config.chain_len;
        let width = onion::wrapped_len(kind.payload_len(), n);
        let seed = self.chain.seed;
        let max_in_flight = self.max_in_flight;

        let links = &self.chain.links;
        let client_link = &self.chain.client_link;

        let mut stage_tx: Vec<Sender<StageMsg>> = Vec::with_capacity(n);
        let mut stage_rx: Vec<Receiver<StageMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            stage_tx.push(tx);
            stage_rx.push(rx);
        }
        let (out_tx, out_rx) = channel::<StageMsg>();
        // Raised by any stage that panics (or loses a peer); everyone
        // else polls it and drains, so one dead stage fails the schedule
        // instead of deadlocking the survivors.
        let abort = &AtomicBool::new(false);

        let mut collected: HashMap<u64, (Vec<Vec<u8>>, RoundTiming)> = HashMap::new();
        let mut resized = 0u64;
        let mut reports: Vec<StageReport> = Vec::new();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            let mut rx_iter = stage_rx.into_iter();
            for (i, server) in self.chain.servers.iter_mut().enumerate() {
                let rx = rx_iter.next().expect("one receiver per stage");
                let next_tx = stage_tx.get(i + 1).cloned();
                // Backward flow for stage 0 — and the tail's completion
                // notices in forward-only dialing — go straight to the
                // exit queue.
                let back_tx = if i == 0 || (is_dialing && i + 1 == n) {
                    out_tx.clone()
                } else {
                    stage_tx[i - 1].clone()
                };
                let link = &links[i];
                handles.push(s.spawn(move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pipeline_stage(
                            server, i, n, total, seed, kind, link, &rx, next_tx, &back_tx, abort,
                        )
                    }));
                    match outcome {
                        Ok(report) => report,
                        Err(payload) => {
                            abort.store(true, Ordering::Release);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            // The stages hold all the senders they need; dropping the
            // originals lets disconnects propagate when stages exit.
            let feed_tx = stage_tx.remove(0);
            drop(stage_tx);
            drop(out_tx);

            // The feeder/collector: admit rounds while the in-flight
            // window has room, collect finished rounds otherwise.
            let mut done = 0usize;
            let collect_one =
                |resized: &mut u64, collected: &mut HashMap<u64, (Vec<Vec<u8>>, RoundTiming)>| {
                    let Some(StageMsg::Backward(mut tagged)) = recv_or_abort(&out_rx, abort) else {
                        panic!("a pipeline stage died; schedule aborted");
                    };
                    if is_dialing {
                        tagged.timing.total = tagged.fed.elapsed();
                        collected.insert(tagged.round.0, (Vec::new(), tagged.timing));
                    } else {
                        let (replies, r) = transmit_buf(
                            client_link,
                            tagged.round.0,
                            Direction::Backward,
                            tagged.buf,
                        );
                        *resized += r;
                        tagged.timing.total = tagged.fed.elapsed();
                        collected.insert(tagged.round.0, (replies.to_vecs(), tagged.timing));
                    }
                };
            for (fed, (round, batch)) in rounds.into_iter().enumerate() {
                while fed - done >= max_in_flight {
                    collect_one(&mut resized, &mut collected);
                    done += 1;
                }
                let batch = client_link.transmit(round, Direction::Forward, batch);
                let (buf, _mismatched) = RoundBuffer::from_vecs(&batch, width, width);
                assert!(
                    feed_tx
                        .send(StageMsg::Forward(Tagged {
                            round: RoundId(round),
                            buf,
                            timing: RoundTiming::default(),
                            fed: Instant::now(),
                        }))
                        .is_ok(),
                    "a pipeline stage died; schedule aborted"
                );
            }
            drop(feed_tx);
            while done < total {
                collect_one(&mut resized, &mut collected);
                done += 1;
            }
            for handle in handles {
                reports.push(handle.join().expect("stage thread panicked"));
            }
        });

        self.chain.tap_resized += resized;
        for report in reports {
            self.chain.tap_resized += report.tap_resized;
            self.chain.conversation_log.extend(report.conversation_log);
            self.chain.dialing_log.extend(report.dialing_log);
            if let Some(drops) = report.invitation_drops {
                self.chain.invitation_drops = Some(drops);
            }
        }
        order
            .iter()
            .map(|round| collected.remove(round).expect("every round completed"))
            .collect()
    }
}

/// Blocks for the next message, polling the shared abort flag so a dead
/// peer ends the wait. `None` means the schedule is aborting (flag set or
/// all senders gone).
fn recv_or_abort(rx: &Receiver<StageMsg>, abort: &AtomicBool) -> Option<StageMsg> {
    loop {
        if abort.load(Ordering::Acquire) {
            return None;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(msg) => return Some(msg),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

/// One pipeline stage: runs server `i`'s forward pass on every round
/// arriving from upstream and — for conversation schedules — its
/// backward pass on every round arriving from downstream, in arrival
/// order. The tail stage additionally runs the per-round dead-drop
/// exchange (conversation) or invitation deposit (dialing) and turns the
/// round around / completes it on the spot. Dialing stages discard their
/// round state right after forwarding: no replies will ever come back.
#[allow(clippy::too_many_arguments)] // a stage is exactly this wiring
fn pipeline_stage(
    server: &mut MixServer,
    i: usize,
    n: usize,
    total: usize,
    seed: u64,
    kind: RoundKind,
    link: &vuvuzela_net::Link,
    rx: &Receiver<StageMsg>,
    next_tx: Option<Sender<StageMsg>>,
    back_tx: &Sender<StageMsg>,
    abort: &AtomicBool,
) -> StageReport {
    let is_last = i + 1 == n;
    let is_dialing = matches!(kind, RoundKind::Dialing { .. });
    let mut report = StageReport {
        tap_resized: 0,
        conversation_log: Vec::new(),
        invitation_drops: None,
        dialing_log: Vec::new(),
    };
    let expect_backwards = if is_last || is_dialing { 0 } else { total };
    let mut forwards = 0usize;
    let mut backwards = 0usize;
    while forwards < total || backwards < expect_backwards {
        let Some(msg) = recv_or_abort(rx, abort) else {
            return report; // schedule aborting; hand back what we have
        };
        let sent_ok = match msg {
            StageMsg::Forward(mut tagged) => {
                forwards += 1;
                let (buf, r) = transmit_buf(link, tagged.round.0, Direction::Forward, tagged.buf);
                report.tap_resized += r;
                let clock = Instant::now();
                let buf = server.forward_buf(tagged.round.0, kind, buf);
                tagged.timing.forward.push(clock.elapsed());
                match (is_last, is_dialing) {
                    (false, _) => {
                        if is_dialing {
                            server.abort_round(tagged.round.0);
                        }
                        tagged.buf = buf;
                        next_tx
                            .as_ref()
                            .expect("non-tail stage has a downstream")
                            .send(StageMsg::Forward(tagged))
                            .is_ok()
                    }
                    (true, false) => {
                        // Dead-drop exchange + tail backward, then turn
                        // the round around immediately.
                        let clock = Instant::now();
                        let mut rng = Chain::chain_round_rng(seed, tagged.round.0);
                        let (replies, observables) = exchange_conversation(&mut rng, n, &buf);
                        report.conversation_log.push((tagged.round.0, observables));
                        tagged.timing.exchange = clock.elapsed();
                        let clock = Instant::now();
                        let replies = server.backward_buf(tagged.round.0, replies);
                        tagged.timing.backward.push(clock.elapsed());
                        let (replies, r) =
                            transmit_buf(link, tagged.round.0, Direction::Backward, replies);
                        report.tap_resized += r;
                        tagged.buf = replies;
                        back_tx.send(StageMsg::Backward(tagged)).is_ok()
                    }
                    (true, true) => {
                        let clock = Instant::now();
                        let mut rng = Chain::chain_round_rng(seed, tagged.round.0);
                        let drops = deposit_dialing(
                            &mut rng,
                            server,
                            tagged.round.0,
                            kind_drops(kind),
                            &buf,
                        );
                        tagged.timing.exchange = clock.elapsed();
                        report
                            .dialing_log
                            .push((tagged.round.0, drops.observables()));
                        report.invitation_drops = Some((tagged.round.0, drops));
                        server.abort_round(tagged.round.0);
                        tagged.buf = RoundBuffer::new(1, 0);
                        back_tx.send(StageMsg::Backward(tagged)).is_ok()
                    }
                }
            }
            StageMsg::Backward(mut tagged) => {
                backwards += 1;
                let clock = Instant::now();
                let replies = server.backward_buf(tagged.round.0, tagged.buf);
                tagged.timing.backward.push(clock.elapsed());
                let (replies, r) = transmit_buf(link, tagged.round.0, Direction::Backward, replies);
                report.tap_resized += r;
                tagged.buf = replies;
                back_tx.send(StageMsg::Backward(tagged)).is_ok()
            }
        };
        if !sent_ok {
            // Our peer is gone mid-schedule: flag the abort and drain.
            abort.store(true, Ordering::Release);
            return report;
        }
    }
    report
}

fn kind_drops(kind: RoundKind) -> u32 {
    match kind {
        RoundKind::Dialing { num_drops } => num_drops,
        RoundKind::Conversation => unreachable!("conversation rounds have no invitation drops"),
    }
}

fn assert_distinct(rounds: &[u64]) {
    let mut seen = HashSet::new();
    assert!(
        rounds.iter().all(|r| seen.insert(*r)),
        "duplicate round ids in one schedule"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    use vuvuzela_wire::conversation::ExchangeRequest;

    fn tiny_config(chain_len: usize) -> SystemConfig {
        SystemConfig {
            chain_len,
            conversation_noise: NoiseDistribution::new(3.0, 1.0),
            dialing_noise: NoiseDistribution::new(2.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
        }
    }

    fn client_batch(
        pks: &[vuvuzela_crypto::x25519::PublicKey],
        round: u64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<u8>> {
        (0..count)
            .map(|_| {
                let payload = ExchangeRequest::noise(rng).encode();
                onion::wrap(rng, pks, round, &payload).0
            })
            .collect()
    }

    #[test]
    fn streaming_matches_sequential_across_three_rounds() {
        let seed = 11;
        let mut streaming = StreamingChain::new(tiny_config(3), seed);
        let mut sequential = Chain::new(tiny_config(3), seed);
        let pks = streaming.server_public_keys();
        assert_eq!(pks, sequential.server_public_keys());

        let mut rng = StdRng::seed_from_u64(5);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..3u64)
            .map(|round| (round, client_batch(&pks, round, 4, &mut rng)))
            .collect();

        let streamed = streaming.run_conversation_rounds(rounds.clone());
        let mut expected = Vec::new();
        for (round, batch) in rounds {
            expected.push(sequential.run_conversation_round(round, batch));
        }
        assert_eq!(streamed.len(), expected.len());
        for (round, ((got, _), (want, _))) in streamed.iter().zip(&expected).enumerate() {
            assert_eq!(got, want, "round {round} replies diverged");
        }

        // Observables and per-round link accounting agree too.
        let mut got_obs: Vec<_> = streaming.chain().conversation_observables().to_vec();
        got_obs.sort_by_key(|(r, _)| *r);
        assert_eq!(&got_obs, sequential.conversation_observables());
        for (sl, ql) in streaming.chain().links().iter().zip(sequential.links()) {
            for round in 0..3 {
                for direction in [Direction::Forward, Direction::Backward] {
                    assert_eq!(
                        sl.round_traffic(round, direction),
                        ql.round_traffic(round, direction),
                        "link {} round {round}",
                        sl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dialing_schedule_matches_sequential() {
        let seed = 23;
        let mut streaming = StreamingChain::new(tiny_config(2), seed);
        let mut sequential = Chain::new(tiny_config(2), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(7);

        let caller = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let callee = vuvuzela_crypto::x25519::Keypair::generate(&mut rng);
        let num_drops = 2;
        let target = InvitationDropIndex::for_recipient(&callee.public, num_drops);
        let make_round = |round: u64, rng: &mut StdRng| {
            let request = vuvuzela_wire::dialing::DialRequest {
                drop: target,
                invitation: SealedInvitation::seal(rng, &caller.public, &callee.public),
            };
            vec![onion::wrap(rng, &pks, round, &request.encode()).0]
        };
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (10..13u64)
            .map(|round| (round, make_round(round, &mut rng)))
            .collect();

        let timings = streaming.run_dialing_rounds(rounds.clone(), num_drops);
        assert_eq!(timings.len(), 3);
        for (round, batch) in rounds {
            let _ = sequential.run_dialing_round(round, batch, num_drops);
        }

        let mut got: Vec<_> = streaming.chain().dialing_observables().to_vec();
        got.sort_by_key(|(r, _)| *r);
        assert_eq!(&got, sequential.dialing_observables());

        // Both retain the last round's drops with identical contents.
        let streamed = streaming.download_drop(target).expect("drops exist");
        let reference = sequential.download_drop(target).expect("drops exist");
        assert_eq!(streamed, reference);
        // No server leaked round state (dialing rounds are aborted).
        for i in 0..2 {
            assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let mut streaming = StreamingChain::new(tiny_config(2), 1);
        assert!(streaming.run_conversation_rounds(Vec::new()).is_empty());
        assert!(streaming.run_dialing_rounds(Vec::new(), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate round ids")]
    fn duplicate_rounds_rejected() {
        let mut streaming = StreamingChain::new(tiny_config(2), 1);
        let _ = streaming.run_conversation_rounds(vec![(0, vec![]), (0, vec![])]);
    }

    #[test]
    fn panicking_tap_fails_schedule_instead_of_hanging() {
        // An adversary tap (or any stage-side closure) that panics must
        // abort the whole schedule with a panic — never deadlock the
        // feeder or the surviving stages.
        struct ExplodingTap;
        impl vuvuzela_net::Tap for ExplodingTap {
            fn intercept(&mut self, _ctx: &vuvuzela_net::TapContext, _batch: &mut Vec<Vec<u8>>) {
                panic!("tap exploded");
            }
        }

        let mut streaming = StreamingChain::new(tiny_config(3), 3);
        let pks = streaming.server_public_keys();
        streaming
            .chain_mut()
            .link_mut(1)
            .attach_tap(std::sync::Arc::new(parking_lot::Mutex::new(ExplodingTap)));

        let mut rng = StdRng::seed_from_u64(4);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..3u64)
            .map(|round| (round, client_batch(&pks, round, 2, &mut rng)))
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            streaming.run_conversation_rounds(rounds)
        }));
        assert!(outcome.is_err(), "schedule must fail, not hang");
    }

    #[test]
    fn single_server_chain_streams() {
        let seed = 31;
        let mut streaming = StreamingChain::new(tiny_config(1), seed);
        let mut sequential = Chain::new(tiny_config(1), seed);
        let pks = streaming.server_public_keys();
        let mut rng = StdRng::seed_from_u64(9);
        let rounds: Vec<(u64, Vec<Vec<u8>>)> = (0..2u64)
            .map(|round| (round, client_batch(&pks, round, 2, &mut rng)))
            .collect();
        let streamed = streaming.run_conversation_rounds(rounds.clone());
        for ((round, batch), (got, _)) in rounds.into_iter().zip(streamed) {
            let (want, _) = sequential.run_conversation_round(round, batch);
            assert_eq!(got, want, "round {round}");
        }
    }
}
