//! Flat, fixed-stride storage for a round's worth of onions.
//!
//! Every message in a Vuvuzela round has exactly one size by design
//! (paper §3.2: "message sizes … are independent of user activity"), so a
//! round's batch never needs one heap allocation per onion. A
//! [`RoundBuffer`] holds the whole batch in a single contiguous arena of
//! `stride`-sized slots:
//!
//! ```text
//! ┌────────── slot 0 ─────────┬────────── slot 1 ─────────┬─ …
//! │ onion bytes │ headroom    │ onion bytes │ headroom    │
//! │ ← width  →  │             │ ← width  →  │             │
//! └──────┴──────┴──────┴──────┴──────┴──────┴──────┴──────┴─ …
//! ```
//!
//! * `stride` is fixed at construction: the largest size a slot will ever
//!   need this round (the full onion on the forward path; response +
//!   whole-chain reply overhead on the backward path).
//! * `width` is the current logical message size, uniform across slots.
//!   Peeling a layer shrinks `width` by [`onion::LAYER_OVERHEAD`] without
//!   moving slots; wrapping a reply layer grows it by
//!   [`onion::REPLY_LAYER_OVERHEAD`] into the reserved headroom.
//! * the mix permutation is applied by [`RoundBuffer::permute`] — an
//!   in-place cycle walk with one `stride`-sized scratch slot — instead
//!   of cloning every payload.
//!
//! Together with [`vuvuzela_net::WorkerPool::map_strides_mut`], which
//! parallelises over exactly these slots, this is the zero-copy data
//! plane of the round pipeline; [`crate::server::MixServer::forward_buf`]
//! is its main consumer. Conversions to/from `Vec<Vec<u8>>` exist only
//! for the client boundary, adversary taps and the pre-refactor
//! reference path.

/// A round's batch as one flat arena; see the module docs.
#[derive(Clone)]
pub struct RoundBuffer {
    data: Vec<u8>,
    stride: usize,
    width: usize,
    len: usize,
}

impl core::fmt::Debug for RoundBuffer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RoundBuffer")
            .field("len", &self.len)
            .field("width", &self.width)
            .field("stride", &self.stride)
            .finish()
    }
}

impl RoundBuffer {
    /// An empty buffer whose slots hold up to `stride` bytes, starting at
    /// logical width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width > stride` or `stride == 0`.
    #[must_use]
    pub fn new(stride: usize, width: usize) -> RoundBuffer {
        assert!(stride > 0, "stride must be positive");
        assert!(width <= stride, "width cannot exceed stride");
        RoundBuffer {
            data: Vec::new(),
            stride,
            width,
            len: 0,
        }
    }

    /// Like [`RoundBuffer::new`] with arena capacity for `slots` slots.
    #[must_use]
    pub fn with_capacity(stride: usize, width: usize, slots: usize) -> RoundBuffer {
        let mut buf = RoundBuffer::new(stride, width);
        buf.data.reserve(slots * stride);
        buf
    }

    /// Builds a buffer from per-message vectors (the client / tap
    /// boundary). Messages that are not exactly `width` bytes cannot be
    /// valid onions; their slots are zero-filled, which downstream
    /// processing rejects as malformed (an all-zero ephemeral key is
    /// low-order), and their indices are returned.
    pub fn from_vecs(msgs: &[Vec<u8>], stride: usize, width: usize) -> (RoundBuffer, Vec<usize>) {
        let mut buf = RoundBuffer::with_capacity(stride, width, msgs.len());
        let mut mismatched = Vec::new();
        for (i, msg) in msgs.iter().enumerate() {
            if msg.len() == width {
                buf.push_with(|slot| slot.copy_from_slice(msg));
            } else {
                mismatched.push(i);
                buf.push_with(|_| {});
            }
        }
        (buf, mismatched)
    }

    /// Copies the batch out into per-message vectors (client boundary and
    /// adversary taps only — allocates one `Vec` per slot).
    #[must_use]
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        (0..self.len).map(|i| self.slot(i).to_vec()).collect()
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current logical message size.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fixed slot capacity.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Changes the logical width (after peeling or reply-wrapping a
    /// layer, which act on every slot uniformly).
    ///
    /// # Panics
    ///
    /// Panics if `width > stride`.
    pub fn set_width(&mut self, width: usize) {
        assert!(width <= self.stride, "width cannot exceed stride");
        self.width = width;
    }

    /// The `width` bytes of slot `i`.
    #[must_use]
    pub fn slot(&self, i: usize) -> &[u8] {
        let start = i * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutable access to the `width` bytes of slot `i`.
    pub fn slot_mut(&mut self, i: usize) -> &mut [u8] {
        let start = i * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Appends a zeroed slot and lets `f` fill its `width` bytes.
    pub fn push_with(&mut self, f: impl FnOnce(&mut [u8])) {
        self.data.resize(self.data.len() + self.stride, 0);
        self.len += 1;
        let i = self.len - 1;
        f(self.slot_mut(i));
    }

    /// Drops all slots past the first `n` (used to strip a server's own
    /// noise replies after un-shuffling).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len {
            self.len = n;
            self.data.truncate(n * self.stride);
        }
    }

    /// The whole arena (all slots at full `stride`), for parallel
    /// stride-window processing.
    pub fn arena_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Decomposes into `(arena bytes, stride, width, len)` — the wire
    /// transport moves a round buffer into a batch frame's payload with
    /// this, zero-copy (the arena is exactly `len * stride` bytes).
    #[must_use]
    pub fn into_raw(self) -> (Vec<u8>, usize, usize, usize) {
        debug_assert_eq!(self.data.len(), self.len * self.stride);
        (self.data, self.stride, self.width, self.len)
    }

    /// Rebuilds a buffer from [`RoundBuffer::into_raw`] parts (or a
    /// decoded batch frame's payload), zero-copy.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (`data.len() != len * stride`,
    /// `width > stride`, zero stride) — a frame decoded by
    /// `vuvuzela_wire` has already validated all three, so this guards
    /// local construction bugs, not remote input.
    #[must_use]
    pub fn from_raw(data: Vec<u8>, stride: usize, width: usize, len: usize) -> RoundBuffer {
        assert!(stride > 0, "stride must be positive");
        assert!(width <= stride, "width cannot exceed stride");
        assert_eq!(data.len(), len * stride, "arena must be len * stride bytes");
        RoundBuffer {
            data,
            stride,
            width,
            len,
        }
    }

    /// Applies a permutation by index remapping: afterwards slot `j`
    /// holds what slot `perm[j]` held before (`out[j] = in[perm[j]]`,
    /// matching the shuffle semantics of the mix servers). In-place cycle
    /// walk: one `stride`-sized scratch buffer, each slot moved exactly
    /// once — no per-slot allocation or batch clone.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len` (debug-asserted
    /// via the visited map in release builds too — a corrupted
    /// permutation must never silently misroute onions).
    pub fn permute(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.len, "permutation length mismatch");
        let stride = self.stride;
        let width = self.width;
        let mut visited = vec![false; self.len];
        let mut scratch = vec![0u8; width];
        for start in 0..self.len {
            if visited[start] || perm[start] == start {
                visited[start] = true;
                continue;
            }
            // Walk the cycle containing `start`, pulling each source slot
            // into place: slot j <- slot perm[j].
            scratch.copy_from_slice(&self.data[start * stride..start * stride + width]);
            let mut j = start;
            loop {
                let src = perm[j];
                assert!(!visited[j], "perm is not a bijection");
                visited[j] = true;
                if src == start {
                    self.data[j * stride..j * stride + width].copy_from_slice(&scratch);
                    break;
                }
                self.data
                    .copy_within(src * stride..src * stride + width, j * stride);
                j = src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vuvuzela_crypto::onion;

    fn filled(stride: usize, width: usize, n: usize) -> RoundBuffer {
        let mut buf = RoundBuffer::new(stride, width);
        for i in 0..n {
            buf.push_with(|slot| slot.fill(i as u8));
        }
        buf
    }

    #[test]
    fn push_and_read_slots() {
        let buf = filled(64, 48, 5);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.width(), 48);
        for i in 0..5 {
            assert_eq!(buf.slot(i), vec![i as u8; 48].as_slice());
        }
    }

    #[test]
    fn width_shrink_preserves_prefixes() {
        let mut buf = filled(64, 48, 3);
        buf.set_width(16);
        for i in 0..3 {
            assert_eq!(buf.slot(i), vec![i as u8; 16].as_slice());
        }
    }

    #[test]
    fn from_vecs_flags_mismatched_sizes() {
        let msgs = vec![vec![7u8; 10], vec![8u8; 9], vec![9u8; 10], vec![]];
        let (buf, bad) = RoundBuffer::from_vecs(&msgs, 12, 10);
        assert_eq!(buf.len(), 4);
        assert_eq!(bad, vec![1, 3]);
        assert_eq!(buf.slot(0), vec![7u8; 10].as_slice());
        assert_eq!(buf.slot(1), vec![0u8; 10].as_slice(), "mismatch zeroed");
        assert_eq!(buf.to_vecs()[2], vec![9u8; 10]);
    }

    #[test]
    fn raw_roundtrip_is_lossless() {
        let buf = filled(24, 20, 3);
        let expect = buf.to_vecs();
        let (data, stride, width, len) = buf.into_raw();
        assert_eq!(data.len(), len * stride);
        let back = RoundBuffer::from_raw(data, stride, width, len);
        assert_eq!(back.to_vecs(), expect);
    }

    #[test]
    #[should_panic(expected = "len * stride")]
    fn from_raw_rejects_bad_geometry() {
        let _ = RoundBuffer::from_raw(vec![0u8; 10], 4, 4, 3);
    }

    #[test]
    fn roundtrip_to_vecs() {
        let buf = filled(32, 32, 4);
        let vecs = buf.to_vecs();
        let (back, bad) = RoundBuffer::from_vecs(&vecs, 32, 32);
        assert!(bad.is_empty());
        assert_eq!(back.to_vecs(), vecs);
    }

    #[test]
    fn permute_matches_clone_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [0usize, 1, 2, 3, 8, 64, 257] {
            let buf = filled(24, 20, n);
            let reference = buf.to_vecs();
            // Random permutation (Fisher–Yates).
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            let mut shuffled = buf;
            shuffled.permute(&perm);
            let want: Vec<Vec<u8>> = perm.iter().map(|&p| reference[p].clone()).collect();
            assert_eq!(shuffled.to_vecs(), want, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn permute_rejects_duplicates() {
        let mut buf = filled(8, 8, 3);
        buf.permute(&[1, 0, 1]);
    }

    #[test]
    fn truncate_drops_tail() {
        let mut buf = filled(16, 16, 6);
        buf.truncate(2);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.to_vecs().len(), 2);
        buf.truncate(5); // growing truncate is a no-op
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn reply_growth_fits_in_stride() {
        // Simulates the backward path: width grows by REPLY_LAYER_OVERHEAD
        // per hop into reserved headroom.
        let mut buf = RoundBuffer::new(256 + 3 * onion::REPLY_LAYER_OVERHEAD, 256);
        buf.push_with(|slot| slot.fill(0xAB));
        for hop in 1..=3 {
            let w = buf.width();
            buf.set_width(w + onion::REPLY_LAYER_OVERHEAD);
            assert_eq!(buf.width(), 256 + hop * onion::REPLY_LAYER_OVERHEAD);
        }
    }
}
