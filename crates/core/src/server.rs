//! The mix server (paper Algorithm 2).
//!
//! A [`MixServer`] at chain position `i` processes each round in two
//! passes:
//!
//! * **forward** — decrypt its onion layer from every request (step 1),
//!   generate cover traffic wrapped for the rest of the chain (step 2),
//!   shuffle everything with a fresh secret permutation, and hand the
//!   batch to the next hop (step 3a). The *last* server skips noise and
//!   shuffling; its peeled payloads go to the dead-drop exchange
//!   (step 3b) run by [`crate::chain::Chain`].
//! * **backward** — un-shuffle the replies (π⁻¹), discard the ones
//!   belonging to its own noise, and encrypt each remaining reply under
//!   the layer key captured on the way in (step 4).
//!
//! The production data path ([`MixServer::forward_buf`] /
//! [`MixServer::backward_buf`]) runs on the flat
//! [`RoundBuffer`](crate::roundbuf::RoundBuffer) arena: layers are peeled
//! and replies wrapped **in place** (the peel batches its field
//! inversions across each worker chunk of onions), the shuffle is
//! applied by index remapping instead of cloning payloads, and the
//! per-slot crypto spreads over the persistent
//! [`vuvuzela_net::WorkerPool`]. The original per-`Vec` implementation
//! is retained as [`MixServer::forward_reference`] /
//! [`MixServer::backward_reference`]: it consumes the round RNG in
//! exactly the same order, which the pipeline-equivalence property tests
//! assert byte for byte, and it is the baseline the round benchmarks
//! measure the flat path against.
//!
//! ## Per-round randomness
//!
//! Every round's secret material — noise counts and contents, the mix
//! permutation, substitute requests for malformed input, reply filler —
//! is drawn from a **per-round RNG** derived as a pure function of the
//! server's seed and the round number, and carried in that round's
//! [`RoundState`]. No server-resident RNG is consumed across rounds, so
//! the bytes a round produces are independent of *when* it is processed
//! relative to other rounds. This is the invariant that lets the
//! streaming scheduler ([`crate::pipeline`]) hold several rounds in
//! flight per server, interleaving forward and backward passes in any
//! order, while remaining byte-identical to the strictly sequential
//! [`crate::chain::Chain`].
//!
//! Malformed requests (failed decryption, wrong size) are *replaced* by
//! locally generated noise so the batch keeps its shape; on the way back
//! the affected position carries random bytes, which the client simply
//! fails to decrypt. This keeps request/reply alignment under active
//! attack without leaking which entries were dropped.

use crate::config::SystemConfig;
use crate::noise::{self, NoiseBatch};
use crate::roundbuf::RoundBuffer;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;
use vuvuzela_crypto::onion::{self, LayerKey};
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_net::parallel::parallel_map;
use vuvuzela_net::WorkerPool;
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::dialing::DialRequest;

/// Which protocol a round belongs to; decides the noise recipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundKind {
    /// Conversation round (Algorithm 2's n1/n2 noise).
    Conversation,
    /// Dialing round with the given number of real invitation drops
    /// (per-drop noise, §5.3).
    Dialing {
        /// Number of real invitation dead drops this round.
        num_drops: u32,
    },
}

impl RoundKind {
    /// The plaintext request size carried inside the innermost layer.
    #[must_use]
    pub fn payload_len(self) -> usize {
        match self {
            RoundKind::Conversation => vuvuzela_wire::EXCHANGE_REQUEST_LEN,
            RoundKind::Dialing { .. } => vuvuzela_wire::DIAL_REQUEST_LEN,
        }
    }

    /// The wire-level protocol tag for batches of this round kind
    /// ([`vuvuzela_wire::RoundType`] — the protocol half of the
    /// end-to-end round tag under mixed schedules).
    #[must_use]
    pub fn round_type(self) -> vuvuzela_wire::RoundType {
        match self {
            RoundKind::Conversation => vuvuzela_wire::RoundType::Conversation,
            RoundKind::Dialing { .. } => vuvuzela_wire::RoundType::Dialing,
        }
    }
}

/// Per-round bookkeeping kept between the forward and backward passes.
///
/// Captures *everything* round-scoped — including the round's RNG — so a
/// server can hold state for several in-flight rounds at once without
/// any cross-round coupling (see the module docs).
struct RoundState {
    /// Which protocol this round runs. Under mixed schedules a server
    /// holds conversation and dialing state side by side; the kind
    /// guards against a reply pass ever touching a forward-only dialing
    /// round.
    kind: RoundKind,
    /// Layer key per incoming request (`None` for requests this server
    /// had to replace with noise).
    layer_keys: Vec<Option<LayerKey>>,
    /// The shuffle: `outgoing[j] = merged[permutation[j]]`.
    permutation: Vec<usize>,
    /// Requests received from upstream (clients or previous server).
    incoming_len: usize,
    /// The round's private randomness, continued by the backward pass
    /// (and, for dialing rounds, the last server's per-drop noise).
    rng: StdRng,
}

/// Derives the RNG for one round as a pure function of `(seed, round)`
/// (splitmix64 finalisation over the pair). Processing order therefore
/// cannot change any round's randomness — the foundation of the
/// streaming scheduler's byte-equivalence with the sequential chain.
#[must_use]
pub(crate) fn round_rng(seed: u64, round: u64) -> StdRng {
    let mut z = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// One server in the Vuvuzela chain.
pub struct MixServer {
    position: usize,
    chain_len: usize,
    keypair: Keypair,
    downstream: Vec<PublicKey>,
    /// One precomputed DH table per downstream server, built once at
    /// construction and reused for every noise onion of every round.
    downstream_precomp: Vec<onion::PrecomputedServer>,
    config: SystemConfig,
    /// Base seed for per-round RNG derivation ([`round_rng`]).
    seed: u64,
    rounds: HashMap<u64, RoundState>,
    /// Cumulative count of requests this server replaced because they
    /// failed to authenticate (diagnostic; also exercised by tests).
    pub malformed_replaced: u64,
}

impl MixServer {
    /// Creates the server at `position` (0-based) in a chain of
    /// `chain_len`, with a deterministic RNG seed for reproducibility.
    ///
    /// `downstream` lists the public keys of the servers *after* this one
    /// (empty for the last server); noise is wrapped for exactly that
    /// suffix.
    #[must_use]
    pub fn new(
        position: usize,
        chain_len: usize,
        keypair: Keypair,
        downstream: Vec<PublicKey>,
        config: SystemConfig,
        seed: u64,
    ) -> MixServer {
        assert!(position < chain_len, "position out of range");
        assert_eq!(
            downstream.len(),
            chain_len - position - 1,
            "downstream must list the chain suffix"
        );
        let downstream_precomp = downstream
            .iter()
            .map(|pk| onion::PrecomputedServer::new(*pk))
            .collect();
        MixServer {
            position,
            chain_len,
            keypair,
            downstream,
            downstream_precomp,
            config,
            seed,
            rounds: HashMap::new(),
            malformed_replaced: 0,
        }
    }

    /// This server's long-term public key (known to all clients, §2.3).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Whether this is the final server (the dead-drop host).
    #[must_use]
    pub fn is_last(&self) -> bool {
        self.position == self.chain_len - 1
    }

    /// Chain position, 0-based.
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// The onion size this server expects on its incoming forward link.
    #[must_use]
    pub fn incoming_width(&self, kind: RoundKind) -> usize {
        onion::wrapped_len(kind.payload_len(), self.chain_len - self.position)
    }

    /// Forward pass on the flat round arena: peel every layer in place in
    /// parallel, replace malformed entries with substitute noise, append
    /// cover traffic, and apply the secret shuffle by index remapping.
    ///
    /// Returns the batch for the next hop — or, for the last server, the
    /// fully peeled request payloads in arrival order.
    pub fn forward_buf(
        &mut self,
        round: u64,
        kind: RoundKind,
        mut batch: RoundBuffer,
    ) -> RoundBuffer {
        let incoming_len = batch.len();
        let width = batch.width();
        debug_assert_eq!(width, self.incoming_width(kind), "unexpected onion width");
        let mut rng = round_rng(self.seed, round);

        // Step 1: decrypt our layer of every request, in parallel and in
        // place. The secret key is reconstructed once, outside the
        // per-onion closure, and each worker peels a contiguous chunk of
        // slots so the x25519 ladder's final field inversions batch at
        // chunk granularity (one `Fe::invert` per chunk, not per onion).
        let secret = self.keypair.secret.clone();
        let public = self.keypair.public;
        let stride = batch.stride();
        let layer_keys: Vec<Option<LayerKey>> = WorkerPool::shared().map_stride_chunks_mut(
            batch.arena_mut(),
            stride,
            PEEL_CHUNK_SLOTS,
            self.config.workers,
            |_, chunk| {
                onion::peel_chunk_in_place(&secret, &public, round, chunk, stride, width)
                    .into_iter()
                    .map(|r| r.ok().map(|(key, _)| key))
                    .collect()
            },
        );
        batch.set_width(width - onion::LAYER_OVERHEAD);

        // Replace malformed entries (sequential: rare, and it draws from
        // the round RNG whose order must be deterministic).
        for (i, key) in layer_keys.iter().enumerate() {
            if key.is_none() {
                self.malformed_replaced += 1;
                substitute_into(
                    &self.downstream_precomp,
                    round,
                    kind,
                    batch.slot_mut(i),
                    &mut rng,
                );
            }
        }

        if self.is_last() {
            // Step 3b happens in the chain; remember keys for the replies.
            self.rounds.insert(
                round,
                RoundState {
                    kind,
                    layer_keys,
                    permutation: Vec::new(),
                    incoming_len,
                    rng,
                },
            );
            return batch;
        }

        // Step 2: cover traffic for the rest of the chain, generated
        // straight into the arena.
        self.generate_noise_into(&mut rng, round, kind, &mut batch);

        // Step 3a: secret shuffle of real + noise requests, by index
        // remapping — no payload clones.
        let permutation = random_permutation(&mut rng, batch.len());
        batch.permute(&permutation);

        self.rounds.insert(
            round,
            RoundState {
                kind,
                layer_keys,
                permutation,
                incoming_len,
                rng,
            },
        );
        batch
    }

    /// Backward pass (step 4) on the flat arena: un-shuffle by inverse
    /// index remapping, strip this server's own noise, and wrap every
    /// reply in place under the stored layer key.
    ///
    /// If an adversary shrank or grew the reply batch in flight, the
    /// permutation can no longer be meaningfully inverted; the server
    /// treats the whole round's replies as lost and returns uniform
    /// filler, so clients see a dropped round (a DoS, which the threat
    /// model permits) rather than misrouted plaintext or a crash.
    ///
    /// # Panics
    ///
    /// Panics if called for a round with no stored forward state — a
    /// harness bug, not adversarial input.
    pub fn backward_buf(&mut self, round: u64, mut replies: RoundBuffer) -> RoundBuffer {
        let mut state = self
            .rounds
            .remove(&round)
            .expect("backward() without matching forward()");
        assert!(
            matches!(state.kind, RoundKind::Conversation),
            "backward pass on a forward-only dialing round"
        );

        if !state.permutation.is_empty() && replies.len() != state.permutation.len() {
            // Tampered reply batch: alignment is unrecoverable. Emit
            // uniform filler of the correct outgoing size for every
            // upstream request.
            self.malformed_replaced += state.incoming_len as u64;
            let out_size = vuvuzela_wire::EXCHANGE_RESPONSE_LEN
                + (self.chain_len - self.position) * onion::REPLY_LAYER_OVERHEAD;
            let stride = out_size + self.position * onion::REPLY_LAYER_OVERHEAD;
            let mut filler = RoundBuffer::with_capacity(stride, out_size, state.incoming_len);
            let rng = &mut state.rng;
            for _ in 0..state.incoming_len {
                filler.push_with(|slot| rng.fill_bytes(slot));
            }
            return filler;
        }

        if !state.permutation.is_empty() {
            // Un-shuffle: restored[permutation[j]] = replies[j], i.e. a
            // pull by the inverse permutation.
            let mut inverse = vec![0usize; state.permutation.len()];
            for (j, &p) in state.permutation.iter().enumerate() {
                inverse[p] = j;
            }
            replies.permute(&inverse);
        }
        // This server's own noise replies sit past the original incoming
        // prefix after un-shuffling; injected extras past it are dropped
        // the same way the reference path's `take(incoming_len)` does.
        replies.truncate(state.incoming_len);

        // Wrap in parallel, in place; invalid slots get filler derived
        // from one per-round seed (no per-reply seed allocations).
        let reply_size = replies.width();
        let out_size = reply_size + onion::REPLY_LAYER_OVERHEAD;
        let mut filler_seed = [0u8; 32];
        state.rng.fill_bytes(&mut filler_seed);
        let keys = &state.layer_keys;
        let stride = replies.stride();
        WorkerPool::shared().map_strides_mut(
            replies.arena_mut(),
            stride,
            self.config.workers,
            |i, slot| match keys.get(i).and_then(Option::as_ref) {
                Some(key) => {
                    let sealed = onion::wrap_reply_in_place(key, round, slot, reply_size);
                    debug_assert_eq!(sealed, out_size);
                }
                None => filler_bytes(&filler_seed, i, &mut slot[..out_size]),
            },
        );
        replies.set_width(out_size);
        replies
    }

    /// The pre-refactor forward pass over per-onion `Vec`s: allocating
    /// peel, noise returned as vectors, shuffle by cloning. Kept as the
    /// reference implementation — it consumes the server RNG in exactly
    /// the same order as [`MixServer::forward_buf`], so equal seeds must
    /// give byte-identical batches (asserted by the pipeline-equivalence
    /// tests), and it is the baseline the round benchmarks compare
    /// against.
    pub fn forward_reference(
        &mut self,
        round: u64,
        kind: RoundKind,
        batch: Vec<Vec<u8>>,
    ) -> Vec<Vec<u8>> {
        let incoming_len = batch.len();
        let width = self.incoming_width(kind);
        let mut rng = round_rng(self.seed, round);

        let secret = self.keypair.secret.clone();
        let public = self.keypair.public;
        let peeled: Vec<Option<(LayerKey, Vec<u8>)>> =
            parallel_map(batch, self.config.workers, |layer| {
                if layer.len() != width {
                    // The flat path can only carry uniform sizes; classify
                    // mismatches identically here.
                    return None;
                }
                onion::peel(&secret, &public, round, &layer).ok()
            });

        let mut layer_keys: Vec<Option<LayerKey>> = Vec::with_capacity(incoming_len);
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(incoming_len);
        let inner_width = width - onion::LAYER_OVERHEAD;
        for result in peeled {
            match result {
                Some((key, inner)) => {
                    layer_keys.push(Some(key));
                    payloads.push(inner);
                }
                None => {
                    self.malformed_replaced += 1;
                    layer_keys.push(None);
                    let mut slot = vec![0u8; inner_width];
                    substitute_into(&self.downstream_precomp, round, kind, &mut slot, &mut rng);
                    payloads.push(slot);
                }
            }
        }

        if self.is_last() {
            self.rounds.insert(
                round,
                RoundState {
                    kind,
                    layer_keys,
                    permutation: Vec::new(),
                    incoming_len,
                    rng,
                },
            );
            return payloads;
        }

        let noise = self.generate_noise(&mut rng, round, kind);
        payloads.extend(noise.onions);

        let permutation = random_permutation(&mut rng, payloads.len());
        let shuffled: Vec<Vec<u8>> = permutation.iter().map(|&i| payloads[i].clone()).collect();

        self.rounds.insert(
            round,
            RoundState {
                kind,
                layer_keys,
                permutation,
                incoming_len,
                rng,
            },
        );
        shuffled
    }

    /// The pre-refactor backward pass over per-onion `Vec`s; reference
    /// twin of [`MixServer::backward_buf`] (same RNG order, byte-identical
    /// results for equal seeds).
    pub fn backward_reference(&mut self, round: u64, replies: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let mut state = self
            .rounds
            .remove(&round)
            .expect("backward() without matching forward()");
        assert!(
            matches!(state.kind, RoundKind::Conversation),
            "backward pass on a forward-only dialing round"
        );

        if !state.permutation.is_empty() && replies.len() != state.permutation.len() {
            self.malformed_replaced += state.incoming_len as u64;
            let out_size = vuvuzela_wire::EXCHANGE_RESPONSE_LEN
                + (self.chain_len - self.position) * onion::REPLY_LAYER_OVERHEAD;
            return (0..state.incoming_len)
                .map(|_| {
                    let mut filler = vec![0u8; out_size];
                    state.rng.fill_bytes(&mut filler);
                    filler
                })
                .collect();
        }

        let restored: Vec<Vec<u8>> = if state.permutation.is_empty() {
            replies
        } else {
            let mut restored = vec![Vec::new(); replies.len()];
            for (j, reply) in replies.into_iter().enumerate() {
                restored[state.permutation[j]] = reply;
            }
            restored
        };

        let reply_size = restored.first().map_or(0, Vec::len);
        let out_size = reply_size + onion::REPLY_LAYER_OVERHEAD;
        let mut filler_seed = [0u8; 32];
        state.rng.fill_bytes(&mut filler_seed);
        let tasks: Vec<(usize, Option<LayerKey>, Vec<u8>)> = state
            .layer_keys
            .into_iter()
            .zip(restored.into_iter().take(state.incoming_len))
            .enumerate()
            .map(|(i, (key, reply))| (i, key, reply))
            .collect();
        parallel_map(tasks, self.config.workers, |(i, key, reply)| match key {
            Some(key) => onion::wrap_reply_layer(&key, round, &reply),
            None => {
                let mut filler = vec![0u8; out_size];
                filler_bytes(&filler_seed, i, &mut filler);
                filler
            }
        })
    }

    /// Compatibility wrapper over [`MixServer::forward_buf`] for callers
    /// still holding per-onion `Vec`s (tests, attack harnesses). Converts
    /// at the boundary; the round itself runs on the flat arena.
    pub fn forward(&mut self, round: u64, kind: RoundKind, batch: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let width = self.incoming_width(kind);
        let (buf, _mismatched) = RoundBuffer::from_vecs(&batch, width, width);
        self.forward_buf(round, kind, buf).to_vecs()
    }

    /// Compatibility wrapper over [`MixServer::backward_buf`]; see
    /// [`MixServer::forward`].
    pub fn backward(&mut self, round: u64, replies: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let width = replies.first().map_or(0, Vec::len);
        let stride = (width + onion::REPLY_LAYER_OVERHEAD).max(1);
        let (buf, _mismatched) = RoundBuffer::from_vecs(&replies, stride, width);
        self.backward_buf(round, buf).to_vecs()
    }

    /// Abandons any state for `round` (e.g. when an adversary blackholes
    /// the round and no replies will ever come back).
    pub fn abort_round(&mut self, round: u64) {
        self.rounds.remove(&round);
    }

    /// Abandons *every* in-flight round's state, returning how many were
    /// dropped. This is the per-server half of schedule-abort recovery:
    /// when a streaming schedule dies mid-flight (a stage panicked, a
    /// server crashed), each surviving server may hold forward state for
    /// an unpredictable subset of the admitted rounds — none of which
    /// will ever see a backward pass — and a deployment that wants to
    /// keep running must discard all of it before scheduling new rounds.
    pub fn abort_all_rounds(&mut self) -> usize {
        let dropped = self.rounds.len();
        self.rounds.clear();
        dropped
    }

    /// How many rounds this server currently holds state for — more than
    /// one exactly when a streaming scheduler has rounds in flight.
    #[must_use]
    pub fn in_flight_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Noise counts for the last server's direct dialing-drop injection,
    /// drawn as the continuation of the round's RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the forward pass for `round` has not run (or was
    /// aborted) — a harness bug, mirroring
    /// [`MixServer::backward_buf`]'s contract for the same misuse.
    pub fn dialing_noise_counts(&mut self, round: u64, num_drops: u32) -> Vec<u64> {
        let state = self
            .rounds
            .get_mut(&round)
            .expect("dialing_noise_counts() without matching forward()");
        debug_assert!(
            matches!(state.kind, RoundKind::Dialing { .. }),
            "per-drop noise drawn for a non-dialing round"
        );
        noise::dialing_noise_counts(
            &mut state.rng,
            num_drops,
            self.config.dialing_noise,
            self.config.noise_mode,
        )
    }

    fn generate_noise(&mut self, rng: &mut StdRng, round: u64, kind: RoundKind) -> NoiseBatch {
        match kind {
            RoundKind::Conversation => noise::conversation_noise(
                rng,
                &self.downstream,
                round,
                self.config.conversation_noise,
                self.config.noise_mode,
                self.config.workers,
            ),
            RoundKind::Dialing { num_drops } => noise::dialing_noise(
                rng,
                &self.downstream,
                round,
                num_drops,
                self.config.dialing_noise,
                self.config.noise_mode,
                self.config.workers,
            ),
        }
    }

    fn generate_noise_into(
        &mut self,
        rng: &mut StdRng,
        round: u64,
        kind: RoundKind,
        batch: &mut RoundBuffer,
    ) {
        match kind {
            RoundKind::Conversation => {
                noise::conversation_noise_into(
                    rng,
                    batch,
                    &self.downstream_precomp,
                    round,
                    self.config.conversation_noise,
                    self.config.noise_mode,
                    self.config.workers,
                );
            }
            RoundKind::Dialing { num_drops } => {
                noise::dialing_noise_into(
                    rng,
                    batch,
                    &self.downstream_precomp,
                    round,
                    num_drops,
                    self.config.dialing_noise,
                    self.config.noise_mode,
                    self.config.workers,
                );
            }
        }
    }
}

/// Slots per worker chunk on the peel hot path — matched to the batch
/// resolver's width in `vuvuzela_crypto` so each chunk's field
/// inversions collapse into one.
const PEEL_CHUNK_SLOTS: usize = 32;

/// Writes a replacement for a malformed request into `slot`: a fresh
/// noise request wrapped for the remaining chain (or plain at the last
/// server), so downstream servers cannot tell anything was replaced.
/// Shared by the flat and reference paths so both consume the RNG
/// identically.
fn substitute_into(
    downstream: &[onion::PrecomputedServer],
    round: u64,
    kind: RoundKind,
    slot: &mut [u8],
    rng: &mut StdRng,
) {
    let offset = 32 * downstream.len();
    match kind {
        RoundKind::Conversation => {
            ExchangeRequest::noise(rng).encode_into(&mut slot[offset..]);
        }
        RoundKind::Dialing { .. } => {
            DialRequest::noop(rng).encode_into(&mut slot[offset..]);
        }
    }
    if !downstream.is_empty() {
        // One child RNG per wrapped payload, as the bulk noise path does,
        // so seeded runs stay reproducible.
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut child = StdRng::from_seed(seed);
        onion::wrap_noise_into(&mut child, downstream, round, slot, kind.payload_len());
    }
}

/// Deterministic filler for reply slots whose request was replaced: a
/// cheap per-slot stream derived from one per-round seed. The client
/// cannot decrypt it either way; deriving from `(seed, index)` keeps the
/// parallel wrap free of per-reply allocations and RNG-order coupling.
fn filler_bytes(round_seed: &[u8; 32], index: usize, out: &mut [u8]) {
    let mut seed = *round_seed;
    seed[..8].copy_from_slice(
        &(index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .to_le_bytes(),
    );
    StdRng::from_seed(seed).fill_bytes(out);
}

/// A uniformly random permutation of `0..len` (Fisher–Yates).
fn random_permutation<R: Rng>(rng: &mut R, len: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};

    fn test_config(mu: f64) -> SystemConfig {
        SystemConfig {
            chain_len: 2,
            conversation_noise: NoiseDistribution::new(mu, 1.0),
            dialing_noise: NoiseDistribution::new(2.0, 1.0),
            noise_mode: NoiseMode::Deterministic,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        }
    }

    fn two_server_chain(mu: f64) -> (MixServer, MixServer) {
        let mut rng = StdRng::seed_from_u64(42);
        let kp0 = Keypair::generate(&mut rng);
        let kp1 = Keypair::generate(&mut rng);
        let s0 = MixServer::new(0, 2, kp0, vec![kp1.public], test_config(mu), 1);
        let s1 = MixServer::new(1, 2, kp1, vec![], test_config(mu), 2);
        (s0, s1)
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(0);
        for len in [0usize, 1, 2, 10, 1000] {
            let perm = random_permutation(&mut rng, len);
            let mut seen = vec![false; len];
            for &p in &perm {
                assert!(!seen[p], "duplicate index {p}");
                seen[p] = true;
            }
            assert!(seen.into_iter().all(|s| s));
        }
    }

    #[test]
    fn forward_backward_roundtrip_preserves_order() {
        let (mut s0, mut s1) = two_server_chain(4.0);
        let mut rng = StdRng::seed_from_u64(7);
        let chain_pks = [s0.public_key(), s1.public_key()];

        // Three clients with distinguishable payloads.
        let payloads: Vec<Vec<u8>> = (0..3u8)
            .map(|i| {
                let mut request = ExchangeRequest::noise(&mut rng);
                request.sealed_message[0] = i;
                request.encode()
            })
            .collect();
        let onions: Vec<Vec<u8>> = payloads
            .iter()
            .map(|p| onion::wrap(&mut rng, &chain_pks, 5, p).0)
            .collect();

        let mid = s0.forward(5, RoundKind::Conversation, onions);
        // 3 real + 2µ noise (µ=4 → 4 singles + 2 pairs = 8).
        assert_eq!(mid.len(), 3 + 8);

        let last = s1.forward(5, RoundKind::Conversation, mid);
        assert_eq!(last.len(), 11, "last server does not add noise");

        // Echo each request back as its own reply.
        let replies = s1.backward(5, last);
        assert_eq!(replies.len(), 11);
        let client_replies = s0.backward(5, replies);
        assert_eq!(client_replies.len(), 3, "noise replies stripped");
        // Sizes uniform.
        let sizes: std::collections::HashSet<usize> = client_replies.iter().map(Vec::len).collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn shuffle_actually_permutes() {
        // With noise off and many requests, the odds of the identity
        // permutation are negligible; check outgoing != incoming order by
        // peeling at the next server.
        let (_, mut s1) = two_server_chain(0.0);
        let mut cfg_off = test_config(0.0);
        cfg_off.noise_mode = NoiseMode::Off;
        let mut rng = StdRng::seed_from_u64(9);
        let mut s0_off = MixServer::new(
            0,
            2,
            Keypair::generate(&mut rng),
            vec![s1.public_key()],
            cfg_off,
            3,
        );
        let chain_pks = [s0_off.public_key(), s1.public_key()];
        let onions: Vec<Vec<u8>> = (0..64u8)
            .map(|i| {
                let mut request = ExchangeRequest::noise(&mut rng);
                request.sealed_message[0] = i;
                onion::wrap(&mut rng, &chain_pks, 1, &request.encode()).0
            })
            .collect();

        let mid = s0_off.forward(1, RoundKind::Conversation, onions);
        assert_eq!(mid.len(), 64);
        let peeled = s1.forward(1, RoundKind::Conversation, mid);
        let order: Vec<u8> = peeled
            .iter()
            .map(|p| ExchangeRequest::decode(p).expect("valid").sealed_message[0])
            .collect();
        let identity: Vec<u8> = (0..64u8).collect();
        assert_ne!(order, identity, "permutation left batch in order");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity, "permutation lost/duplicated entries");
    }

    #[test]
    fn malformed_requests_are_replaced_not_dropped() {
        let (mut s0, mut s1) = two_server_chain(2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let chain_pks = [s0.public_key(), s1.public_key()];

        let payload = ExchangeRequest::noise(&mut rng).encode();
        let good = onion::wrap(&mut rng, &chain_pks, 2, &payload).0;
        let garbage = vec![0xFFu8; good.len()];
        let short = vec![1u8, 2, 3];

        let mid = s0.forward(2, RoundKind::Conversation, vec![good, garbage, short]);
        assert_eq!(s0.malformed_replaced, 2);
        // Batch keeps its shape: 3 requests + 2µ noise.
        assert_eq!(mid.len(), 3 + 4);
        // Everything downstream still peels.
        let peeled = s1.forward(2, RoundKind::Conversation, mid);
        assert_eq!(peeled.len(), 7);
        for p in &peeled {
            let _ = ExchangeRequest::decode(p).expect("all payloads valid downstream");
        }

        // Backward: the malformed clients get filler of uniform size.
        let replies = s1.backward(2, peeled);
        let back = s0.backward(2, replies);
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].len(), back[1].len());
        assert_eq!(back[1].len(), back[2].len());
    }

    #[test]
    fn tampered_reply_batch_yields_uniform_filler() {
        // An adversary dropping replies on a backward link must not
        // panic the server or misroute plaintext: every upstream slot
        // gets correctly sized filler.
        let (mut s0, mut s1) = two_server_chain(2.0);
        let mut rng = StdRng::seed_from_u64(21);
        let chain_pks = [s0.public_key(), s1.public_key()];
        let onions: Vec<Vec<u8>> = (0..3)
            .map(|_| {
                let payload = ExchangeRequest::noise(&mut rng).encode();
                onion::wrap(&mut rng, &chain_pks, 6, &payload).0
            })
            .collect();
        let mid = s0.forward(6, RoundKind::Conversation, onions);
        let peeled = s1.forward(6, RoundKind::Conversation, mid);
        let mut replies = s1.backward(6, peeled);
        replies.truncate(2); // adversary drops replies in flight

        let out = s0.backward(6, replies);
        assert_eq!(out.len(), 3, "one filler per upstream request");
        let sizes: std::collections::HashSet<usize> = out.iter().map(Vec::len).collect();
        assert_eq!(sizes.len(), 1, "uniform filler size");
        // Outgoing size from the first server: 256 + 2 layers × 16.
        assert_eq!(
            *sizes.iter().next().expect("one size"),
            vuvuzela_wire::EXCHANGE_RESPONSE_LEN + 2 * onion::REPLY_LAYER_OVERHEAD
        );
        assert_eq!(s0.malformed_replaced, 3);
    }

    #[test]
    #[should_panic(expected = "backward() without matching forward()")]
    fn backward_without_forward_panics() {
        let (mut s0, _) = two_server_chain(1.0);
        let _ = s0.backward(99, vec![]);
    }

    #[test]
    fn abort_round_clears_state() {
        let (mut s0, _s1) = two_server_chain(1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let chain_pks = [s0.public_key(), _s1.public_key()];
        let payload = ExchangeRequest::noise(&mut rng).encode();
        let onion0 = onion::wrap(&mut rng, &chain_pks, 3, &payload).0;
        let _ = s0.forward(3, RoundKind::Conversation, vec![onion0]);
        s0.abort_round(3);
        assert!(s0.rounds.is_empty());
    }

    #[test]
    fn dialing_forward_adds_per_drop_noise() {
        let (mut s0, mut s1) = two_server_chain(1.0);
        let mut rng = StdRng::seed_from_u64(17);
        let chain_pks = [s0.public_key(), s1.public_key()];
        let payload = DialRequest::noop(&mut rng).encode();
        let onion0 = onion::wrap(&mut rng, &chain_pks, 4, &payload).0;

        let mid = s0.forward(4, RoundKind::Dialing { num_drops: 3 }, vec![onion0]);
        // 1 real + 3 drops × µ_dial(=2) noise.
        assert_eq!(mid.len(), 1 + 6);
        let peeled = s1.forward(4, RoundKind::Dialing { num_drops: 3 }, mid);
        for p in &peeled {
            let _ = DialRequest::decode(p).expect("valid dial request");
        }
    }

    /// The heart of the refactor's safety argument: for identical seeds
    /// the flat arena pipeline and the per-`Vec` reference path must
    /// produce byte-identical batches in both directions.
    #[test]
    fn flat_and_reference_paths_are_byte_identical() {
        let mut rng = StdRng::seed_from_u64(77);
        let (mut flat0, mut flat1) = two_server_chain(3.0);
        let (mut ref0, mut ref1) = two_server_chain(3.0);
        let chain_pks = [flat0.public_key(), flat1.public_key()];

        let onions: Vec<Vec<u8>> = (0..5)
            .map(|_| {
                let payload = ExchangeRequest::noise(&mut rng).encode();
                onion::wrap(&mut rng, &chain_pks, 8, &payload).0
            })
            .collect();
        // Corrupt one onion so the substitute path is exercised too.
        let mut onions = onions;
        onions[2][40] ^= 0xFF;

        let width = flat0.incoming_width(RoundKind::Conversation);
        let (buf, _) = RoundBuffer::from_vecs(&onions, width, width);

        let mid_ref = ref0.forward_reference(8, RoundKind::Conversation, onions);
        let mid_flat = flat0.forward_buf(8, RoundKind::Conversation, buf);
        assert_eq!(mid_flat.to_vecs(), mid_ref, "first hop diverged");

        let (mid_buf, _) = RoundBuffer::from_vecs(&mid_ref, mid_flat.width(), mid_flat.width());
        let last_ref = ref1.forward_reference(8, RoundKind::Conversation, mid_ref);
        let last_flat = flat1.forward_buf(8, RoundKind::Conversation, mid_buf);
        assert_eq!(last_flat.to_vecs(), last_ref, "second hop diverged");
        assert_eq!(flat0.malformed_replaced, ref0.malformed_replaced);

        // Echo the payloads back as replies and compare the return path.
        let replies_ref = ref1.backward_reference(8, last_ref);
        let mut reply_buf = RoundBuffer::new(
            last_flat.width() + 2 * onion::REPLY_LAYER_OVERHEAD,
            last_flat.width(),
        );
        for i in 0..last_flat.len() {
            let bytes = last_flat.slot(i);
            reply_buf.push_with(|slot| slot.copy_from_slice(bytes));
        }
        let replies_flat = flat1.backward_buf(8, reply_buf);
        assert_eq!(
            replies_flat.to_vecs(),
            replies_ref,
            "last-hop replies diverged"
        );

        let back_ref = ref0.backward_reference(8, replies_ref);
        let back_flat = flat0.backward_buf(8, replies_flat);
        assert_eq!(back_flat.to_vecs(), back_ref, "first-hop replies diverged");
    }
}
