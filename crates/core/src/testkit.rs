//! A high-level harness for driving whole Vuvuzela deployments.
//!
//! [`TestNet`] owns a [`Chain`] and a population of [`Client`]s and runs
//! complete rounds the way the real system would: every *online* client
//! participates in every round (idle ones send fakes/no-ops — that is the
//! whole point of the design), requests are multiplexed through the
//! untrusted entry, and replies are demultiplexed back.
//!
//! Used by the integration tests, the examples and the benchmark harness;
//! it is part of the public API because a downstream user evaluating
//! Vuvuzela would need exactly this scaffolding.

use crate::chain::{Chain, RoundTiming};
use crate::client::Client;
use crate::config::SystemConfig;
use crate::entry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_crypto::x25519::Keypair;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// Handle to a user inside a [`TestNet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UserId(pub usize);

/// Builder for [`TestNet`].
pub struct TestNetBuilder {
    config: SystemConfig,
    seed: u64,
    num_drops: u32,
}

impl TestNetBuilder {
    /// Number of servers in the chain (default 3).
    #[must_use]
    pub fn servers(mut self, n: usize) -> Self {
        self.config.chain_len = n;
        self
    }

    /// Conversation noise mean µ (scale b defaults to µ/20, roughly the
    /// paper's ratio). Deterministic mode unless changed.
    #[must_use]
    pub fn noise_mu(mut self, mu: f64) -> Self {
        self.config.conversation_noise = NoiseDistribution::new(mu, (mu / 20.0).max(0.5));
        self
    }

    /// Dialing noise mean µ per drop.
    #[must_use]
    pub fn dialing_mu(mut self, mu: f64) -> Self {
        self.config.dialing_noise = NoiseDistribution::new(mu, (mu / 10.0).max(0.5));
        self
    }

    /// Noise sampling mode.
    #[must_use]
    pub fn noise_mode(mut self, mode: NoiseMode) -> Self {
        self.config.noise_mode = mode;
        self
    }

    /// Conversation slots per client (default 1).
    #[must_use]
    pub fn slots(mut self, slots: usize) -> Self {
        self.config.conversation_slots = slots;
        self
    }

    /// Number of invitation dead drops per dialing round (default 1, as
    /// in the paper's prototype at evaluation scale, §7).
    #[must_use]
    pub fn invitation_drops(mut self, m: u32) -> Self {
        assert!(m >= 1);
        self.num_drops = m;
        self
    }

    /// Deterministic seed for all keys, noise and shuffles.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Full config override.
    #[must_use]
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the network.
    #[must_use]
    pub fn build(self) -> TestNet {
        let chain = Chain::new(self.config.clone(), self.seed);
        TestNet {
            chain,
            config: self.config,
            clients: Vec::new(),
            chain_tables: None,
            online: Vec::new(),
            rng: StdRng::seed_from_u64(self.seed.wrapping_add(0xC11E17)),
            conversation_round: 0,
            dialing_round: 0,
            num_drops: self.num_drops,
            last_timing: RoundTiming::default(),
        }
    }
}

/// A complete in-process deployment: chain + clients.
pub struct TestNet {
    chain: Chain,
    config: SystemConfig,
    clients: Vec<Client>,
    /// One shared per-chain DH table set for every client.
    chain_tables: Option<std::sync::Arc<Vec<vuvuzela_crypto::onion::PrecomputedServer>>>,
    online: Vec<bool>,
    rng: StdRng,
    conversation_round: u64,
    dialing_round: u64,
    num_drops: u32,
    last_timing: RoundTiming,
}

impl TestNet {
    /// Starts building a network.
    #[must_use]
    pub fn builder() -> TestNetBuilder {
        TestNetBuilder {
            config: SystemConfig::default(),
            seed: 0x50_50,
            num_drops: 1,
        }
    }

    /// Adds an online user with a fresh keypair. All users share one
    /// per-chain DH table set (built on the first add) rather than each
    /// building their own.
    pub fn add_user(&mut self, name: impl Into<String>) -> UserId {
        let keypair = Keypair::generate(&mut self.rng);
        let mut client = Client::new(name, keypair, self.config.clone());
        let server_pks = self.chain.server_public_keys();
        if self.chain_tables.is_none() {
            self.chain_tables = Some(Client::chain_tables(&server_pks));
        }
        client.set_chain_tables(
            self.chain_tables.clone().expect("tables built above"),
            &server_pks,
        );
        self.clients.push(client);
        self.online.push(true);
        UserId(self.clients.len() - 1)
    }

    /// Marks a user online/offline. Offline users send nothing — the
    /// observable event the adversary tries to correlate (§4.2).
    ///
    /// ## Cover-traffic audit
    ///
    /// The paper's requirement (§3.2) is that *for connected clients*,
    /// traffic is independent of activity. `set_online` models the one
    /// thing that is legitimately observable: the connected-client set
    /// itself. What must **not** change when a user disconnects is the
    /// observable stream of everyone else — in particular of the
    /// departed user's conversation partner, whose dead-drop accesses
    /// silently go from paired (`m2`) to single (`m1`), a shift the
    /// Laplace noise on both counts is sized to hide (Theorem 1). This
    /// holds here by construction: a partner's slot stays active, so it
    /// keeps emitting exactly one fixed-size onion per slot per round
    /// (real exchange, retransmission or keep-alive — on the wire all
    /// identical), and idle clients emit the same via fake exchanges.
    /// The `offline_peer_leaves_partner_stream_unchanged` regression
    /// test in `tests/privacy_invariants.rs` pins the observable stream
    /// byte-widths before/during/after a partner's absence.
    pub fn set_online(&mut self, user: UserId, online: bool) {
        self.online[user.0] = online;
    }

    /// Whether a user is currently online.
    #[must_use]
    pub fn is_online(&self, user: UserId) -> bool {
        self.online[user.0]
    }

    /// Queues an invitation from `caller` to `callee` for the next
    /// dialing round (also pre-enters the conversation on the caller's
    /// side).
    ///
    /// # Panics
    ///
    /// Panics if the caller has no free conversation slot — tests should
    /// manage slots explicitly.
    pub fn dial(&mut self, caller: UserId, callee: UserId) {
        let callee_pk = self.clients[callee.0].public_key();
        self.clients[caller.0]
            .dial(callee_pk)
            .expect("caller has a free conversation slot");
    }

    /// Queues a message from one user to another (they must be in an
    /// active conversation).
    ///
    /// # Panics
    ///
    /// Panics when there is no active conversation or the body is too
    /// long; integration tests treat both as setup bugs.
    pub fn queue_message(&mut self, from: UserId, to: UserId, body: &[u8]) {
        let to_pk = self.clients[to.0].public_key();
        self.clients[from.0]
            .queue_message(&to_pk, body)
            .expect("active conversation and body within limits");
    }

    /// Runs one conversation round with every online client
    /// participating.
    pub fn run_conversation_round(&mut self) {
        let round = self.conversation_round;
        self.conversation_round += 1;
        let server_pks = self.chain.server_public_keys();

        let mut participant_ids = Vec::new();
        let mut requests = Vec::new();
        for (id, client) in self.clients.iter_mut().enumerate() {
            if self.online[id] {
                participant_ids.push(id);
                requests.push(client.build_conversation_requests(
                    &mut self.rng,
                    round,
                    &server_pks,
                ));
            }
        }

        let (batch, layout) = entry::multiplex(requests);
        let (replies, timing) = self.chain.run_conversation_round(round, batch);
        self.last_timing = timing;
        let per_client = entry::demultiplex(&layout, replies);

        for (id, client_replies) in participant_ids.into_iter().zip(per_client) {
            self.clients[id].handle_conversation_replies(round, client_replies);
        }
    }

    /// Runs one dialing round; every online client then downloads and
    /// scans its invitation drop.
    pub fn run_dialing_round(&mut self) {
        let round = self.dialing_round;
        self.dialing_round += 1;
        let server_pks = self.chain.server_public_keys();
        let num_drops = self.num_drops;

        let mut participant_ids = Vec::new();
        let mut requests = Vec::new();
        for (id, client) in self.clients.iter_mut().enumerate() {
            if self.online[id] {
                participant_ids.push(id);
                requests.push(vec![client.build_dial_request(
                    &mut self.rng,
                    round,
                    num_drops,
                    &server_pks,
                )]);
            }
        }

        let (batch, _layout) = entry::multiplex(requests);
        let timing = self.chain.run_dialing_round(round, batch, num_drops);
        self.last_timing = timing;

        // Every online client downloads its own drop (via the "CDN") and
        // trial-decrypts the contents.
        for id in participant_ids {
            let drop = self.clients[id].invitation_drop(num_drops);
            if let Some(contents) = self.chain.download_drop(drop) {
                let _ = self.clients[id].scan_invitation_drop(&contents);
            }
        }
    }

    /// Every client accepts every invitation it has received (as far as
    /// slots allow).
    pub fn accept_all_invitations(&mut self) {
        for client in &mut self.clients {
            let invitations: Vec<_> = client.pending_invitations().to_vec();
            for caller in invitations {
                let _ = client.accept_invitation(caller);
            }
        }
    }

    /// Messages delivered to `user` so far, across all conversations.
    #[must_use]
    pub fn received(&self, user: UserId) -> Vec<Vec<u8>> {
        self.clients[user.0].all_delivered()
    }

    /// Direct access to a client.
    #[must_use]
    pub fn client(&self, user: UserId) -> &Client {
        &self.clients[user.0]
    }

    /// Mutable access to a client (attack setups).
    pub fn client_mut(&mut self, user: UserId) -> &mut Client {
        &mut self.clients[user.0]
    }

    /// The underlying chain (observables, meters, taps).
    #[must_use]
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Mutable chain access (attach taps, download drops).
    pub fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }

    /// Number of users.
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.clients.len()
    }

    /// Timing of the most recent round.
    #[must_use]
    pub fn last_timing(&self) -> &RoundTiming {
        &self.last_timing
    }

    /// The current conversation round number (next to be run).
    #[must_use]
    pub fn conversation_round(&self) -> u64 {
        self.conversation_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_user_net() -> (TestNet, UserId, UserId) {
        let mut net = TestNet::builder().servers(3).noise_mu(4.0).seed(7).build();
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        (net, alice, bob)
    }

    #[test]
    fn dial_then_converse() {
        let (mut net, alice, bob) = two_user_net();
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();

        net.queue_message(alice, bob, b"hello, Bob!");
        net.run_conversation_round();
        assert_eq!(net.received(bob), vec![b"hello, Bob!".to_vec()]);

        net.queue_message(bob, alice, b"hi Alice");
        net.run_conversation_round();
        assert_eq!(net.received(alice), vec![b"hi Alice".to_vec()]);
    }

    #[test]
    fn multi_round_ordered_delivery() {
        let (mut net, alice, bob) = two_user_net();
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();

        for i in 0..5u8 {
            net.queue_message(alice, bob, &[b'm', b'0' + i]);
        }
        for _ in 0..6 {
            net.run_conversation_round();
        }
        let got = net.received(bob);
        assert_eq!(
            got,
            (0..5u8).map(|i| vec![b'm', b'0' + i]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn offline_partner_triggers_retransmission() {
        let (mut net, alice, bob) = two_user_net();
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();

        // Bob misses the round that carries the message.
        net.queue_message(alice, bob, b"are you there?");
        net.set_online(bob, false);
        net.run_conversation_round();
        assert!(net.received(bob).is_empty());

        // Bob comes back; after the retransmit timer fires, he gets it.
        net.set_online(bob, true);
        for _ in 0..4 {
            net.run_conversation_round();
        }
        assert_eq!(net.received(bob), vec![b"are you there?".to_vec()]);
    }

    #[test]
    fn idle_users_cost_the_same_bandwidth() {
        // Two users, no conversation at all: every round still moves
        // exactly one request per user plus noise.
        let (mut net, _alice, _bob) = two_user_net();
        net.run_conversation_round();
        let msgs = net.chain().client_link().forward_meter().messages();
        assert_eq!(msgs, 2, "both idle users still sent a request");
    }
}
