//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the "indistinguishable encryption scheme" required by the paper
//! (§4.1): ciphertexts are pseudorandom, fixed-length expansions of their
//! plaintexts, so exchange requests for real conversations, fake requests
//! and server-generated noise are bitwise indistinguishable.

use crate::chacha20;
use crate::poly1305::Poly1305;
use crate::{ct_eq, CryptoError};

/// AEAD key length in bytes.
pub const KEY_LEN: usize = 32;
/// AEAD nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// AEAD authentication-tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Derives the Poly1305 one-time key: the first 32 bytes of the ChaCha20
/// block with counter 0 (RFC 8439 §2.6).
fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

/// Feeds `aad ‖ pad16 ‖ ct ‖ pad16 ‖ le64(|aad|) ‖ le64(|ct|)` into the
/// authenticator, per RFC 8439 §2.8.
fn mac_transcript(poly: &mut Poly1305, aad: &[u8], ciphertext: &[u8]) {
    const ZEROS: [u8; 16] = [0; 16];
    poly.update(aad);
    poly.update(&ZEROS[..(16 - aad.len() % 16) % 16]);
    poly.update(ciphertext);
    poly.update(&ZEROS[..(16 - ciphertext.len() % 16) % 16]);
    poly.update(&(aad.len() as u64).to_le_bytes());
    poly.update(&(ciphertext.len() as u64).to_le_bytes());
}

/// Encrypts `plaintext` with associated data `aad`, returning
/// `ciphertext ‖ tag` (`plaintext.len() + TAG_LEN` bytes).
#[must_use]
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(key, 1, nonce, &mut out);

    let mut poly = Poly1305::new(&poly_key(key, nonce));
    mac_transcript(&mut poly, aad, &out);
    out.extend_from_slice(&poly.finalize());
    out
}

/// Encrypts in place: the plaintext occupies `buf[..plaintext_len]`, and
/// the ciphertext and tag are written over `buf[..plaintext_len + TAG_LEN]`
/// without allocating. Returns the sealed length (`plaintext_len +
/// TAG_LEN`).
///
/// Byte-for-byte identical output to [`seal`]; the allocating version is
/// kept as the reference the property tests compare against.
///
/// # Panics
///
/// Panics if `buf` is shorter than `plaintext_len + TAG_LEN` — a caller
/// bug (the round buffers reserve layer headroom up front), not
/// adversarial input.
pub fn seal_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut [u8],
    plaintext_len: usize,
) -> usize {
    let sealed = plaintext_len + TAG_LEN;
    assert!(
        buf.len() >= sealed,
        "seal_in_place needs {TAG_LEN} bytes of tag headroom"
    );
    chacha20::xor_stream(key, 1, nonce, &mut buf[..plaintext_len]);

    let mut poly = Poly1305::new(&poly_key(key, nonce));
    mac_transcript(&mut poly, aad, &buf[..plaintext_len]);
    buf[plaintext_len..sealed].copy_from_slice(&poly.finalize());
    sealed
}

/// Decrypts `buf[..boxed_len]` (= `ciphertext ‖ tag` as produced by
/// [`seal`] / [`seal_in_place`]) in place, verifying tag and associated
/// data. On success the plaintext occupies `buf[..boxed_len - TAG_LEN]`
/// and its length is returned; on failure `buf` is left untouched.
///
/// # Errors
///
/// [`CryptoError::BadLength`] if the input is shorter than a tag;
/// [`CryptoError::DecryptFailed`] if authentication fails.
pub fn open_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut [u8],
    boxed_len: usize,
) -> Result<usize, CryptoError> {
    if boxed_len < TAG_LEN || buf.len() < boxed_len {
        return Err(CryptoError::BadLength {
            expected: TAG_LEN,
            got: boxed_len.min(buf.len()),
        });
    }
    let plaintext_len = boxed_len - TAG_LEN;
    let (ciphertext, tag) = buf[..boxed_len].split_at(plaintext_len);

    let mut poly = Poly1305::new(&poly_key(key, nonce));
    mac_transcript(&mut poly, aad, ciphertext);
    if !ct_eq(&poly.finalize(), tag) {
        return Err(CryptoError::DecryptFailed);
    }

    chacha20::xor_stream(key, 1, nonce, &mut buf[..plaintext_len]);
    Ok(plaintext_len)
}

/// Decrypts `ciphertext ‖ tag` produced by [`seal`], verifying the tag and
/// associated data.
///
/// # Errors
///
/// [`CryptoError::BadLength`] if the input is shorter than a tag;
/// [`CryptoError::DecryptFailed`] if authentication fails.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    boxed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if boxed.len() < TAG_LEN {
        return Err(CryptoError::BadLength {
            expected: TAG_LEN,
            got: boxed.len(),
        });
    }
    let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);

    let mut poly = Poly1305::new(&poly_key(key, nonce));
    mac_transcript(&mut poly, aad, ciphertext);
    if !ct_eq(&poly.finalize(), tag) {
        return Err(CryptoError::DecryptFailed);
    }

    let mut plaintext = ciphertext.to_vec();
    chacha20::xor_stream(key, 1, nonce, &mut plaintext);
    Ok(plaintext)
}

/// The ciphertext length for a given plaintext length.
#[must_use]
pub const fn sealed_len(plaintext_len: usize) -> usize {
    plaintext_len + TAG_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex"))
            .collect()
    }

    /// RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = hex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let sealed = seal(&key, &nonce, &aad, plaintext);
        let want_ct = hex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let want_tag = hex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &want_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &want_tag[..]);

        let opened = open(&key, &nonce, &aad, &sealed).expect("tag verifies");
        assert_eq!(&opened[..], &plaintext[..]);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x11u8; 32];
        let nonce = [0x22u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 240, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = seal(&key, &nonce, b"aad", &pt);
            assert_eq!(sealed.len(), sealed_len(len));
            let opened = open(&key, &nonce, b"aad", &sealed).expect("roundtrip");
            assert_eq!(opened, pt, "len {len}");
        }
    }

    #[test]
    fn tamper_detection() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"", b"attack at dawn");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                open(&key, &nonce, b"", &bad),
                Err(CryptoError::DecryptFailed),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn wrong_aad_fails() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"round-7", b"hello");
        assert!(open(&key, &nonce, b"round-8", &sealed).is_err());
        assert!(open(&key, &nonce, b"round-7", &sealed).is_ok());
    }

    #[test]
    fn wrong_key_or_nonce_fails() {
        let sealed = seal(&[1u8; 32], &[2u8; 12], b"", b"hello");
        assert!(open(&[3u8; 32], &[2u8; 12], b"", &sealed).is_err());
        assert!(open(&[1u8; 32], &[4u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn too_short_input_is_bad_length() {
        assert_eq!(
            open(&[0u8; 32], &[0u8; 12], b"", &[0u8; 5]),
            Err(CryptoError::BadLength {
                expected: TAG_LEN,
                got: 5
            })
        );
    }

    #[test]
    fn in_place_seal_matches_allocating_seal() {
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 240, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let reference = seal(&key, &nonce, b"aad", &pt);

            let mut buf = vec![0u8; len + TAG_LEN + 8]; // extra headroom ok
            buf[..len].copy_from_slice(&pt);
            let sealed = seal_in_place(&key, &nonce, b"aad", &mut buf, len);
            assert_eq!(sealed, sealed_len(len));
            assert_eq!(&buf[..sealed], &reference[..], "len {len}");
        }
    }

    #[test]
    fn in_place_open_matches_allocating_open() {
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for len in [0usize, 1, 16, 240, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let mut sealed = seal(&key, &nonce, b"", &pt);
            let boxed_len = sealed.len();
            let n = open_in_place(&key, &nonce, b"", &mut sealed, boxed_len).expect("opens");
            assert_eq!(n, len);
            assert_eq!(&sealed[..n], &pt[..], "len {len}");
        }
    }

    #[test]
    fn in_place_open_rejects_tampering_and_leaves_buf_intact() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut sealed = seal(&key, &nonce, b"", b"attack at dawn");
        let boxed_len = sealed.len();
        sealed[3] ^= 1;
        let before = sealed.clone();
        assert_eq!(
            open_in_place(&key, &nonce, b"", &mut sealed, boxed_len),
            Err(CryptoError::DecryptFailed)
        );
        assert_eq!(sealed, before, "failed open must not decrypt in place");
    }

    #[test]
    fn in_place_open_short_input_is_bad_length() {
        let mut buf = [0u8; 32];
        assert!(matches!(
            open_in_place(&[0u8; 32], &[0u8; 12], b"", &mut buf, 5),
            Err(CryptoError::BadLength { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "tag headroom")]
    fn in_place_seal_without_headroom_panics() {
        let mut buf = [0u8; 20];
        let _ = seal_in_place(&[0u8; 32], &[0u8; 12], b"", &mut buf, 10);
    }

    #[test]
    fn ciphertexts_are_distinct_across_nonces() {
        let key = [9u8; 32];
        let a = seal(&key, &[0u8; 12], b"", b"same message");
        let b = seal(&key, &[1u8; 12], b"", b"same message");
        assert_ne!(a, b);
    }
}
