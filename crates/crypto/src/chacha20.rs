//! The ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//!
//! Used by [`crate::aead`] for payload encryption and, keyed from a seed,
//! as the deterministic expander behind dead-drop derivation test fixtures.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (the RFC 8439 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block length in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block for the given key, block
/// counter and nonce.
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data` in
/// place. Encryption and decryption are the same operation.
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (block_index, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(block_index as u32), nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex"))
            .collect()
    }

    fn test_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        key
    }

    /// RFC 8439 §2.3.2: block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = test_key();
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let got = block(&key, 1, &nonce);
        let want = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(&got[..], &want[..]);
    }

    /// RFC 8439 §2.4.2: full encryption test ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encryption_vector() {
        let key = test_key();
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let want = hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, want);

        // Decryption round-trips.
        xor_stream(&key, 1, &nonce, &mut data);
        assert_eq!(&data[..], &plaintext[..]);
    }

    #[test]
    fn stream_is_counter_consistent() {
        // Encrypting a long buffer must equal encrypting per-block with
        // manually advanced counters.
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut long = vec![0u8; 200];
        xor_stream(&key, 5, &nonce, &mut long);

        let mut manual = vec![0u8; 200];
        for (i, chunk) in manual.chunks_mut(64).enumerate() {
            xor_stream(&key, 5 + i as u32, &nonce, chunk);
        }
        assert_eq!(long, manual);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_stream(&key, 0, &[0u8; 12], &mut a);
        xor_stream(&key, 0, &[1u8; 12], &mut b);
        assert_ne!(a, b);
    }
}
