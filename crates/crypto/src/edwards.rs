//! Fixed-base scalar multiplication via a precomputed Edwards table.
//!
//! Every onion layer requires a fresh ephemeral keypair, so the system
//! performs one *fixed-base* scalar multiplication `k·B` per layer per
//! onion on top of the variable-base DH — on clients for wrapping and on
//! every mixing server for cover-traffic generation (paper §8.2 counts
//! this in its "340,000 Curve25519 ops/sec per machine" budget). The
//! Montgomery ladder in [`crate::x25519`] cannot exploit a fixed base, so
//! this module computes `k·B` on the birationally-equivalent twisted
//! Edwards curve (`−x² + y² = 1 + d·x²y²`, the ed25519 curve) with a
//! signed radix-16 comb over a precomputed table:
//!
//! * `TABLE[i][j−1] = j · 16²ⁱ · B` for `i ∈ 0..32`, `j ∈ 1..=8`, stored
//!   in "Niels" form `(y+x, y−x, 2d·x·y)` so each table lookup costs one
//!   mixed addition (7 field muls);
//! * a 255-bit clamped scalar becomes 64 signed radix-16 digits; the odd
//!   digits are summed, multiplied by 16 with four doublings, then the
//!   even digits are summed — 64 mixed additions and 4 doublings versus
//!   the ladder's 255 full steps (~3–4× fewer field multiplications);
//! * the result maps back to the Montgomery u-coordinate as
//!   `u = (Z+Y)/(Z−Y)`, exactly what X25519 outputs.
//!
//! All curve constants (d, √−1, the base point) are **derived at runtime**
//! from first principles and cross-checked — `montgomery_u(B) == 9` and
//! `x25519_base(k) == x25519(k, 9)` in tests — rather than pasted in, so
//! a transcription error cannot silently corrupt keys.
//!
//! Like the rest of this crate the table walk is not hardened
//! constant-time (digit selection branches); see the crate-level security
//! note.

use crate::field::Fe;
use crate::x25519::BASE_POINT;
use std::sync::OnceLock;

/// A point in extended twisted Edwards coordinates (X : Y : Z : T) with
/// `x = X/Z`, `y = Y/Z`, `T = XY/Z`.
#[derive(Clone, Copy)]
struct Extended {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// A precomputed affine point in "Niels" form: `(y+x, y−x, 2d·x·y)`.
#[derive(Clone, Copy)]
struct Niels {
    y_plus_x: Fe,
    y_minus_x: Fe,
    t2d: Fe,
}

/// The lazily-built curve constants and base-point comb table.
struct BaseTable {
    /// `2d`, kept for the full addition formula.
    d2: Fe,
    /// `d`, for on-curve checks when building point tables.
    d: Fe,
    /// `rows[i][j−1] = (j+0) · 16²ⁱ · B` in Niels form, `j = 1..=8`.
    rows: Box<[[Niels; 8]; 32]>,
}

/// A comb table for an *arbitrary* curve point — the same radix-16
/// machinery as the base-point table, built once per long-lived public
/// key. Mix servers precompute one per downstream server so the
/// per-noise-onion Diffie-Hellman (`eph_sk · server_pk`, a fixed point
/// with a fresh scalar every time) runs at comb speed instead of ladder
/// speed. See [`crate::x25519::DhTable`] for the public wrapper.
pub(crate) struct PointTable {
    rows: Box<[[Niels; 8]; 32]>,
}

impl PointTable {
    /// Builds the table for the curve point with Montgomery u-coordinate
    /// `u`. Returns `None` when `u` is not on the curve (it lies on the
    /// quadratic twist, which the Edwards formulas cannot represent —
    /// callers fall back to the Montgomery ladder, which handles both).
    pub(crate) fn new(u: &[u8; 32]) -> Option<PointTable> {
        let consts = table();
        let point = edwards_from_montgomery_u(u, &consts.d)?;
        Some(PointTable {
            rows: comb_table(point, &consts.d2),
        })
    }

    /// `clamped_scalar · P` as a Montgomery u-coordinate; bit-identical
    /// to `x25519(scalar, u)` for every on-curve `u`.
    pub(crate) fn scalarmult_u(&self, clamped_scalar: &[u8; 32]) -> [u8; 32] {
        scalarmult_comb(&self.rows, &table().d2, clamped_scalar).montgomery_u()
    }

    /// Like [`PointTable::scalarmult_u`] but deferring the field
    /// inversion; see [`PendingU`].
    pub(crate) fn scalarmult_pending(&self, clamped_scalar: &[u8; 32]) -> PendingU {
        scalarmult_comb(&self.rows, &table().d2, clamped_scalar).montgomery_pending()
    }
}

/// A Montgomery u-coordinate awaiting its field inversion: `u = num/den`.
///
/// The inversion is ~30% of a comb scalar multiplication's cost. Callers
/// that need several results at once (an onion layer needs a keygen *and*
/// a DH per hop) collect `PendingU`s and resolve them together through
/// [`resolve_batch`], which replaces n inversions with one plus 3(n−1)
/// multiplications (Montgomery's batch-inversion trick).
#[derive(Clone, Copy)]
pub(crate) struct PendingU {
    num: Fe,
    den: Fe,
}

impl PendingU {
    /// An inert placeholder (0/1, resolving to 0); used to initialise
    /// stack batches before filling.
    pub(crate) const PLACEHOLDER: PendingU = PendingU {
        num: Fe::ZERO,
        den: Fe::ONE,
    };
    /// Resolves this value alone (one inversion).
    #[cfg(test)]
    pub(crate) fn resolve(&self) -> [u8; 32] {
        self.num.mul(&self.den.invert()).to_bytes()
    }

    /// Wraps an already-computed u-coordinate (denominator 1), so ladder
    /// results can ride through a batch resolution unchanged.
    pub(crate) fn resolved(u: &[u8; 32]) -> PendingU {
        PendingU {
            num: Fe::from_bytes(u),
            den: Fe::ONE,
        }
    }

    /// Builds a pending value from an explicit projective ratio — the
    /// Montgomery ladder's `(x2, z2)` endpoint, whose final `x2 · z2⁻¹`
    /// is exactly the inversion this type defers.
    pub(crate) fn from_ratio(num: Fe, den: Fe) -> PendingU {
        PendingU { num, den }
    }
}

/// Resolves a batch of pending u-coordinates into `out` with a single
/// inversion. Zero denominators (the group identity) resolve to 0,
/// matching both `Fe::invert(0) == 0` and the RFC 7748 ladder's
/// low-order convention. Works entirely on the stack for batches up to
/// [`MAX_RESOLVE_BATCH`] — one onion's worth of layers, the hot case.
pub(crate) fn resolve_batch_into(pending: &[PendingU], out: &mut [[u8; 32]]) {
    assert!(
        pending.len() <= MAX_RESOLVE_BATCH,
        "resolve batch too large"
    );
    assert_eq!(pending.len(), out.len());
    // Prefix products over the denominators (zeros replaced by 1 so the
    // rest of the batch still resolves).
    let mut dens = [Fe::ONE; MAX_RESOLVE_BATCH];
    let mut prefix = [Fe::ONE; MAX_RESOLVE_BATCH];
    let mut acc = Fe::ONE;
    for (i, p) in pending.iter().enumerate() {
        if !p.den.is_zero() {
            dens[i] = p.den;
        }
        acc = acc.mul(&dens[i]);
        prefix[i] = acc;
    }
    let mut inv = acc.invert(); // inverse of the full product
    for i in (0..pending.len()).rev() {
        // inv currently = (d_0 · … · d_i)^-1.
        let den_inv = if i == 0 { inv } else { prefix[i - 1].mul(&inv) };
        inv = inv.mul(&dens[i]);
        out[i] = if pending[i].den.is_zero() {
            [0u8; 32]
        } else {
            pending[i].num.mul(&den_inv).to_bytes()
        };
    }
}

/// Largest batch [`resolve_batch_into`] accepts: keygen + DH for every
/// layer of one onion, up to a 16-server chain (the paper evaluates 6).
pub(crate) const MAX_RESOLVE_BATCH: usize = 32;

/// Allocating convenience wrapper over [`resolve_batch_into`].
#[cfg(test)]
pub(crate) fn resolve_batch(pending: &[PendingU]) -> Vec<[u8; 32]> {
    let mut out = vec![[0u8; 32]; pending.len()];
    resolve_batch_into(pending, &mut out);
    out
}

/// Lifts a Montgomery u-coordinate to an extended Edwards point via the
/// birational map `y = (u−1)/(u+1)`, recovering `x` from the curve
/// equation. Either root of `x` works for u-only arithmetic (`±P` share
/// every scalar multiple's u-coordinate). Returns `None` off the curve.
fn edwards_from_montgomery_u(u: &[u8; 32], d: &Fe) -> Option<Extended> {
    let u = Fe::from_bytes(u);
    let denom = u.add(&Fe::ONE);
    if denom.is_zero() {
        // u = −1 has no affine Edwards image; fall back to the ladder.
        return None;
    }
    let y = u.sub(&Fe::ONE).mul(&denom.invert());
    let y2 = y.square();
    let x2_denom = d.mul(&y2).add(&Fe::ONE);
    if x2_denom.is_zero() {
        return None;
    }
    let x2 = y2.sub(&Fe::ONE).mul(&x2_denom.invert());
    let x = fe_sqrt(&x2)?;
    // On-curve check: −x² + y² == 1 + d·x²·y² (guards fe_sqrt edge cases).
    if y2.sub(&x.square()) != Fe::ONE.add(&d.mul(&x.square()).mul(&y2)) {
        return None;
    }
    Some(Extended {
        x,
        y,
        z: Fe::ONE,
        t: x.mul(&y),
    })
}

impl Extended {
    /// The neutral element (0, 1).
    fn identity() -> Extended {
        Extended {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// Full unified addition ("add-2008-hwcd-3" for a = −1); also valid
    /// for doubling.
    fn add(&self, other: &Extended, d2: &Fe) -> Extended {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(d2).mul(&other.t);
        let d = self.z.mul(&other.z);
        let d = d.add(&d);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Extended {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Mixed addition with a precomputed Niels point (Z₂ = 1).
    fn add_niels(&self, n: &Niels) -> Extended {
        let a = self.y.sub(&self.x).mul(&n.y_minus_x);
        let b = self.y.add(&self.x).mul(&n.y_plus_x);
        let c = self.t.mul(&n.t2d);
        let d = self.z.add(&self.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Extended {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Mixed subtraction: adds the negated Niels point.
    fn sub_niels(&self, n: &Niels) -> Extended {
        let negated = Niels {
            y_plus_x: n.y_minus_x,
            y_minus_x: n.y_plus_x,
            t2d: Fe::ZERO.sub(&n.t2d),
        };
        self.add_niels(&negated)
    }

    /// Converts to Niels form (requires one field inversion).
    fn to_niels(self, d2: &Fe) -> Niels {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        Niels {
            y_plus_x: y.add(&x),
            y_minus_x: y.sub(&x),
            t2d: x.mul(&y).mul(d2),
        }
    }

    /// The Montgomery u-coordinate of this point: `u = (Z+Y)/(Z−Y)`.
    fn montgomery_u(&self) -> [u8; 32] {
        let num = self.z.add(&self.y);
        let den = self.z.sub(&self.y);
        num.mul(&den.invert()).to_bytes()
    }

    /// The u-coordinate with the inversion deferred for batching.
    fn montgomery_pending(&self) -> PendingU {
        PendingU {
            num: self.z.add(&self.y),
            den: self.z.sub(&self.y),
        }
    }
}

/// Raises `base` to the exponent encoded as 32 little-endian bytes, by
/// plain square-and-multiply. Only used during one-time table setup.
fn fe_pow(base: &Fe, exp: &[u8; 32]) -> Fe {
    let mut acc = Fe::ONE;
    for bit in (0..256).rev() {
        acc = acc.square();
        if (exp[bit / 8] >> (bit % 8)) & 1 == 1 {
            acc = acc.mul(base);
        }
    }
    acc
}

/// A square root of `w`, if one exists: `w^((p+3)/8)`, corrected by √−1
/// when the first candidate squares to `−w`.
fn fe_sqrt(w: &Fe) -> Option<Fe> {
    // (p+3)/8 = 2^252 − 2, little-endian.
    let mut exp = [0xFFu8; 32];
    exp[0] = 0xFE;
    exp[31] = 0x0F;
    let root = fe_pow(w, &exp);

    if root.square() == *w {
        return Some(root);
    }
    // √−1 = 2^((p−1)/4); (p−1)/4 = 2^253 − 5.
    let mut exp_i = [0xFFu8; 32];
    exp_i[0] = 0xFB;
    exp_i[31] = 0x1F;
    let sqrt_m1 = fe_pow(&Fe::ONE.add(&Fe::ONE), &exp_i);
    debug_assert!(sqrt_m1.square() == Fe::ZERO.sub(&Fe::ONE));

    let root = root.mul(&sqrt_m1);
    if root.square() == *w {
        Some(root)
    } else {
        None
    }
}

/// Builds the comb table. Runs once per process (~1 ms), and asserts its
/// own consistency: the derived base point must be on the curve and must
/// map to Montgomery u = 9.
fn build_table() -> BaseTable {
    // d = −121665/121666.
    let k121665 = Fe::ONE.mul_small(121_665);
    let k121666 = Fe::ONE.mul_small(121_666);
    let d = Fe::ZERO.sub(&k121665).mul(&k121666.invert());
    let d2 = d.add(&d);

    // Base point: y = 4/5; x is either root of (y²−1)/(d·y²+1). The sign
    // of x never reaches the output (u depends only on y), it only has to
    // be used consistently, which building everything from one `bp` does.
    let by = Fe::ONE.mul_small(4).mul(&Fe::ONE.mul_small(5).invert());
    let y2 = by.square();
    let x2 = y2.sub(&Fe::ONE).mul(&d.mul(&y2).add(&Fe::ONE).invert());
    let bx = fe_sqrt(&x2).expect("the ed25519 base point exists");
    // On-curve check: −x² + y² == 1 + d·x²·y².
    assert!(
        y2.sub(&bx.square()) == Fe::ONE.add(&d.mul(&bx.square()).mul(&y2)),
        "derived base point is not on the curve"
    );

    let bp = Extended {
        x: bx,
        y: by,
        z: Fe::ONE,
        t: bx.mul(&by),
    };
    assert_eq!(
        bp.montgomery_u(),
        BASE_POINT,
        "Edwards base point must map to Montgomery u = 9"
    );

    let rows = comb_table(bp, &d2);
    BaseTable { d2, d, rows }
}

/// Builds the 32×8 signed-radix-16 comb table for a point `p`:
/// `rows[i][j−1] = j · 16²ⁱ · p`.
fn comb_table(p: Extended, d2: &Fe) -> Box<[[Niels; 8]; 32]> {
    let mut rows = Box::new([[p.to_niels(d2); 8]; 32]);
    let mut row_base = p; // 16^{2i}·p for the current row
    for row in rows.iter_mut() {
        let mut multiple = row_base; // j·16^{2i}·p
        for entry in row.iter_mut() {
            *entry = multiple.to_niels(d2);
            multiple = multiple.add(&row_base, d2);
        }
        // row_base *= 16² (8 doublings).
        for _ in 0..8 {
            row_base = row_base.add(&row_base, d2);
        }
    }
    rows
}

/// Shared comb walk: odd digits, four doublings (×16), even digits.
fn scalarmult_comb(rows: &[[Niels; 8]; 32], d2: &Fe, clamped_scalar: &[u8; 32]) -> Extended {
    let digits = signed_radix16(clamped_scalar);
    let mut h = Extended::identity();
    for i in (1..64).step_by(2) {
        h = add_digit(&h, &rows[i / 2], digits[i]);
    }
    for _ in 0..4 {
        h = h.add(&h, d2);
    }
    for i in (0..64).step_by(2) {
        h = add_digit(&h, &rows[i / 2], digits[i]);
    }
    h
}

fn table() -> &'static BaseTable {
    static TABLE: OnceLock<BaseTable> = OnceLock::new();
    TABLE.get_or_init(build_table)
}

/// Splits a little-endian 256-bit scalar into 64 signed radix-16 digits
/// in `[−8, 8]` (the last digit can reach 8, which the table covers; for
/// clamped scalars bit 255 is clear so no carry escapes).
fn signed_radix16(scalar: &[u8; 32]) -> [i8; 64] {
    let mut e = [0i8; 64];
    for (i, byte) in scalar.iter().enumerate() {
        e[2 * i] = (byte & 15) as i8;
        e[2 * i + 1] = (byte >> 4) as i8;
    }
    let mut carry = 0i8;
    for digit in e.iter_mut().take(63) {
        *digit += carry;
        carry = (*digit + 8) >> 4;
        *digit -= carry << 4;
    }
    e[63] += carry;
    e
}

/// Multiplies the base point by an (already clamped) scalar and returns
/// the Montgomery u-coordinate — the fixed-base fast path behind
/// [`crate::x25519::x25519_base`].
pub(crate) fn scalarmult_base_u(clamped_scalar: &[u8; 32]) -> [u8; 32] {
    let table = table();
    scalarmult_comb(&table.rows, &table.d2, clamped_scalar).montgomery_u()
}

/// Fixed-base scalar multiplication with the inversion deferred.
pub(crate) fn scalarmult_base_pending(clamped_scalar: &[u8; 32]) -> PendingU {
    let table = table();
    scalarmult_comb(&table.rows, &table.d2, clamped_scalar).montgomery_pending()
}

fn add_digit(h: &Extended, row: &[Niels; 8], digit: i8) -> Extended {
    match digit.cmp(&0) {
        core::cmp::Ordering::Greater => h.add_niels(&row[digit as usize - 1]),
        core::cmp::Ordering::Less => h.sub_niels(&row[(-digit) as usize - 1]),
        core::cmp::Ordering::Equal => *h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x25519::{x25519, BASE_POINT};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn clamp(mut k: [u8; 32]) -> [u8; 32] {
        k[0] &= 248;
        k[31] &= 127;
        k[31] |= 64;
        k
    }

    #[test]
    fn digits_recompose_to_the_scalar() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            let mut scalar = [0u8; 32];
            rng.fill_bytes(&mut scalar);
            let scalar = clamp(scalar);
            let digits = signed_radix16(&scalar);
            // Σ e_i·16^i must equal the scalar; verify with plain bignum
            // accumulation over 16 u64 limbs of 16 bits each (no overflow).
            let mut acc = [0i128; 5];
            for (i, &d) in digits.iter().enumerate() {
                let limb = i / 16; // 16 digits of 4 bits per 64-bit limb
                acc[limb] += i128::from(d) << ((i % 16) * 4);
            }
            let mut expect = [0i128; 5];
            for (i, chunk) in scalar.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                expect[i] = i128::from(u64::from_le_bytes(w));
            }
            // Normalize carries between limbs before comparing.
            for limb in 0..4 {
                let carry = acc[limb] >> 64;
                acc[limb] -= carry << 64;
                acc[limb + 1] += carry;
                if acc[limb] < 0 {
                    acc[limb] += 1 << 64;
                    acc[limb + 1] -= 1;
                }
            }
            assert_eq!(acc, expect);
            assert!(digits.iter().all(|&d| (-8..=8).contains(&d)));
        }
    }

    #[test]
    fn fixed_base_matches_ladder_for_rfc_scalars() {
        // The RFC 7748 §6.1 secret keys exercise the full pipeline.
        let scalars = [[0x77u8; 32], [0x5d; 32], [1; 32], [0xFF; 32]];
        for scalar in scalars {
            let clamped = clamp(scalar);
            assert_eq!(
                scalarmult_base_u(&clamped),
                x25519(&scalar, &BASE_POINT),
                "scalar {:02x?}",
                scalar[0]
            );
        }
    }

    #[test]
    fn fixed_base_matches_ladder_for_random_scalars() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..24 {
            let mut scalar = [0u8; 32];
            rng.fill_bytes(&mut scalar);
            assert_eq!(
                scalarmult_base_u(&clamp(scalar)),
                x25519(&scalar, &BASE_POINT)
            );
        }
    }

    #[test]
    fn point_table_matches_ladder_for_random_points() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let mut point_scalar = [0u8; 32];
            rng.fill_bytes(&mut point_scalar);
            // k·B is always on the curve, so the table must build.
            let point_u = x25519(&point_scalar, &BASE_POINT);
            let table = PointTable::new(&point_u).expect("curve point has a table");
            for _ in 0..4 {
                let mut scalar = [0u8; 32];
                rng.fill_bytes(&mut scalar);
                assert_eq!(
                    table.scalarmult_u(&clamp(scalar)),
                    x25519(&scalar, &point_u),
                    "comb DH diverged from ladder"
                );
            }
        }
    }

    #[test]
    fn batch_resolution_matches_individual_inversions() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut scalars = [[0u8; 32]; 7];
        for s in &mut scalars {
            rng.fill_bytes(s);
        }
        let pending: Vec<PendingU> = scalars
            .iter()
            .map(|s| scalarmult_base_pending(&clamp(*s)))
            .collect();
        let batch = resolve_batch(&pending);
        for (p, (s, got)) in pending.iter().zip(scalars.iter().zip(batch.iter())) {
            assert_eq!(p.resolve(), *got);
            assert_eq!(x25519(s, &BASE_POINT), *got);
        }
        // Pre-resolved (ladder fallback) entries pass through unchanged,
        // and zero denominators resolve to zero, even mid-batch.
        let mixed = [
            PendingU::resolved(&batch[0]),
            PendingU {
                num: Fe::ONE,
                den: Fe::ZERO,
            },
            scalarmult_base_pending(&clamp(scalars[1])),
        ];
        let resolved = resolve_batch(&mixed);
        assert_eq!(resolved[0], batch[0]);
        assert_eq!(resolved[1], [0u8; 32]);
        assert_eq!(resolved[2], batch[1]);
    }

    #[test]
    fn twist_points_are_rejected_not_miscomputed() {
        // Find a u that is NOT on the curve (it is then on the twist):
        // roughly half of all field elements qualify.
        let mut rng = StdRng::seed_from_u64(8);
        let mut found = 0;
        for _ in 0..64 {
            let mut u = [0u8; 32];
            rng.fill_bytes(&mut u);
            u[31] &= 0x7f;
            if PointTable::new(&u).is_none() {
                found += 1;
            }
        }
        assert!(found > 8, "expected a healthy share of twist points");
    }

    #[test]
    fn sqrt_finds_roots_and_rejects_nonresidues() {
        let four = Fe::ONE.mul_small(4);
        let two = Fe::ONE.add(&Fe::ONE);
        let r = fe_sqrt(&four).expect("4 is a square");
        assert!(r == two || r == Fe::ZERO.sub(&two));
        // 2 is a non-residue mod 2^255−19.
        assert!(fe_sqrt(&two).is_none());
    }
}
