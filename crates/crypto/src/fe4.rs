//! Four-wide struct-of-arrays arithmetic in GF(2^255 − 19).
//!
//! [`Fe4`] holds **four independent field elements** limb-sliced as
//! `[[u64; 4]; 5]`: `limbs[i][lane]` is limb `i` (radix 2^51) of element
//! `lane`. Every operation processes all four lanes in one pass, so the
//! inner loops are straight-line quads of identical `u64`/`u128`
//! operations: the conditional-swap masks and lane adds autovectorize,
//! and the four multiplication chains — each latency-bound on its own —
//! interleave in the out-of-order window and keep the 64-bit multiplier
//! port saturated. [`crate::x25519`] steps four onions' ladders in
//! lockstep on this type.
//!
//! (A 10×25.5-bit `u32`-sliced variant whose products map to
//! `pmuludq`/`vpmuludq` was prototyped and measured 2–5× *slower* here,
//! both rolled — per-term loop overhead — and fully unrolled — SROA
//! scalarizes the limb arrays and the SLP vectorizer never reassembles
//! them, and even when it does, 40 live vector values spill. The 51-bit
//! scalar kernel interleaved four-wide is the fastest shape safe Rust
//! reaches on x86-64; the remaining headroom is latency-hiding, which
//! is exactly what this layout buys.)
//!
//! # Loose-reduction invariant
//!
//! Unlike [`Fe`](crate::field::Fe), which re-carries after *every*
//! operation, `Fe4` is **lazily reduced** — the second saving. The
//! contract, stated as a per-limb bound:
//!
//! * *loose* means every limb is below 2^52 — the state produced by
//!   [`Fe4::mul`], [`Fe4::square`], [`Fe4::mul_small`], [`Fe4::carry`]
//!   and [`Fe4::from_fes`] of loosely-reduced `Fe`s;
//! * [`Fe4::add`] does **not** carry: it may be applied to inputs with
//!   limbs below 2^53 and yields limbs below 2^54;
//! * [`Fe4::sub`] does **not** carry: it adds 4p first, so it accepts a
//!   subtrahend with limbs below 2^53 − 76 (any loose value qualifies)
//!   and a minuend with limbs below 2^53, yielding limbs below 2^54;
//! * [`Fe4::mul`] / [`Fe4::square`] accept limbs up to 2^54 and carry
//!   their result back to loose. With 2^54-bounded inputs the widest
//!   accumulator term is `5 · 19 · 2^54 · 2^54 < 2^115`, comfortably
//!   inside `u128`, and the final ×19 fold is performed in `u128`
//!   because its carry can exceed 64 − 51 bits.
//!
//! Every add/sub in one Montgomery ladder step takes loose inputs and
//! feeds a multiplication, so the whole step runs carry-free between
//! products: 8 full carry propagations per step per element in the
//! scalar ladder simply disappear. The equivalence proptests
//! (`crates/crypto/tests/proptests.rs`) pin each `Fe4` operation against
//! four independent scalar [`Fe`](crate::field::Fe) operations, and the
//! ladder built on this type is byte-identical to the scalar RFC 7748
//! ladder.

// The limb/lane index loops below are written as explicit counted loops
// on purpose: they mirror the generated quad structure one-to-one and
// keep the codegen shape the bench was tuned against. Iterator-chain
// rewrites obscure that without changing the semantics.
#![allow(clippy::needless_range_loop)]

use crate::field::Fe;

/// Number of field elements processed in lockstep.
pub const LANES: usize = 4;

/// Mask selecting the low 51 bits of a limb.
const LOW_51: u64 = (1 << 51) - 1;

/// Four independent elements of GF(2^255 − 19), limb-sliced for
/// batch processing. See the module docs for the reduction invariant.
#[derive(Clone, Copy, Debug)]
pub struct Fe4 {
    /// `limbs[i][lane]`: limb `i` of element `lane`.
    limbs: [[u64; LANES]; 5],
}

impl Fe4 {
    /// Packs four independent field elements into lanes `0..4`.
    ///
    /// Loosely-reduced inputs (every public [`Fe`] constructor and
    /// operation yields limbs < 2^52) produce a loose `Fe4`.
    #[must_use]
    pub fn from_fes(elements: [Fe; LANES]) -> Fe4 {
        let mut limbs = [[0u64; LANES]; 5];
        for (lane, fe) in elements.iter().enumerate() {
            for i in 0..5 {
                limbs[i][lane] = fe.0[i];
            }
        }
        Fe4 { limbs }
    }

    /// Broadcasts one element into all four lanes.
    #[must_use]
    pub fn splat(element: Fe) -> Fe4 {
        Fe4::from_fes([element; LANES])
    }

    /// Extracts lane `lane` as a scalar [`Fe`], carried back to the
    /// loose representation scalar code expects.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4`.
    #[must_use]
    pub fn lane(&self, lane: usize) -> Fe {
        let mut limbs = [0u64; 5];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = self.limbs[i][lane];
        }
        Fe(limbs).carry()
    }

    /// Lane-wise field addition. Does **not** carry: inputs with limbs
    /// below 2^53 yield limbs below 2^54 (valid [`Fe4::mul`] input).
    #[must_use]
    #[inline(always)]
    pub fn add(&self, rhs: &Fe4) -> Fe4 {
        let mut out = [[0u64; LANES]; 5];
        for i in 0..5 {
            for l in 0..LANES {
                out[i][l] = self.limbs[i][l] + rhs.limbs[i][l];
            }
        }
        Fe4 { limbs: out }
    }

    /// Lane-wise field subtraction via the add-4p trick; no carry. The
    /// subtrahend's limbs must be below 2^53 − 76 (loose values always
    /// are) so no limb underflows; minuend limbs below 2^53 yield limbs
    /// below 2^54.
    #[must_use]
    #[inline(always)]
    pub fn sub(&self, rhs: &Fe4) -> Fe4 {
        // 4p limb-wise, as in `Fe::sub`: tolerates loose inputs without
        // underflow while staying within the 2^54 mul-input budget.
        const FOUR_P0: u64 = 0x1F_FFFF_FFFF_FFB4; // 4 · (2^51 − 19)
        const FOUR_P1234: u64 = 0x1F_FFFF_FFFF_FFFC; // 4 · (2^51 − 1)
        let mut out = [[0u64; LANES]; 5];
        for l in 0..LANES {
            out[0][l] = self.limbs[0][l] + FOUR_P0 - rhs.limbs[0][l];
        }
        for i in 1..5 {
            for l in 0..LANES {
                out[i][l] = self.limbs[i][l] + FOUR_P1234 - rhs.limbs[i][l];
            }
        }
        Fe4 { limbs: out }
    }

    /// Lane-wise field multiplication (schoolbook over `u128` with the
    /// ×19 wraparound, as [`Fe::mul`]). Accepts limbs up to 2^54 and
    /// carries the result back to loose (< 2^52).
    #[must_use]
    #[inline(always)]
    pub fn mul(&self, rhs: &Fe4) -> Fe4 {
        let m = |x: u64, y: u64| -> u128 { u128::from(x) * u128::from(y) };
        let mut t = [[0u128; LANES]; 5];
        let (a, b) = (&self.limbs, &rhs.limbs);
        for l in 0..LANES {
            let a = [a[0][l], a[1][l], a[2][l], a[3][l], a[4][l]];
            let b = [b[0][l], b[1][l], b[2][l], b[3][l], b[4][l]];
            // 19·b fits u64 for b < 2^54 (19 · 2^54 < 2^59).
            let b1_19 = 19 * b[1];
            let b2_19 = 19 * b[2];
            let b3_19 = 19 * b[3];
            let b4_19 = 19 * b[4];

            t[0][l] =
                m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
            t[1][l] =
                m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
            t[2][l] =
                m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
            t[3][l] =
                m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
            t[4][l] = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        }
        Fe4::reduce_wide(&mut t)
    }

    /// Lane-wise squaring with the symmetric-product shortcut (as
    /// [`Fe::square`], ~30% fewer limb multiplications than
    /// [`Fe4::mul`]). Accepts limbs up to 2^54, outputs loose.
    #[must_use]
    #[inline(always)]
    pub fn square(&self) -> Fe4 {
        let m = |x: u64, y: u64| -> u128 { u128::from(x) * u128::from(y) };
        let mut t = [[0u128; LANES]; 5];
        let f = &self.limbs;
        for l in 0..LANES {
            let a = [f[0][l], f[1][l], f[2][l], f[3][l], f[4][l]];
            let d0 = 2 * a[0];
            let d1 = 2 * a[1];
            let d2 = 2 * a[2];
            let d3 = 2 * a[3];
            let a4_19 = 19 * a[4];
            let a3_19 = 19 * a[3];

            t[0][l] = m(a[0], a[0]) + m(d1, a4_19) + m(d2, a3_19);
            t[1][l] = m(d0, a[1]) + m(d2, a4_19) + m(a[3], a3_19);
            t[2][l] = m(d0, a[2]) + m(a[1], a[1]) + m(d3, a4_19);
            t[3][l] = m(d0, a[3]) + m(d1, a[2]) + m(a[4], a4_19);
            t[4][l] = m(d0, a[4]) + m(d1, a[3]) + m(a[2], a[2]);
        }
        Fe4::reduce_wide(&mut t)
    }

    /// Lane-wise multiplication by one small constant (the ladder's
    /// a24 = 121665). Accepts limbs up to 2^54, outputs loose.
    #[must_use]
    #[inline(always)]
    pub fn mul_small(&self, n: u32) -> Fe4 {
        let n = u128::from(n);
        let mut t = [[0u128; LANES]; 5];
        for i in 0..5 {
            for l in 0..LANES {
                t[i][l] = u128::from(self.limbs[i][l]) * n;
            }
        }
        Fe4::reduce_wide(&mut t)
    }

    /// Fused `addend + self · n` (the ladder's `AA + a24·E` line),
    /// sharing one carry pass instead of `mul_small` + `add`'s two.
    /// Accepts limbs up to 2^54 in `self` and loose limbs in `addend`;
    /// outputs loose. Canonically equal to
    /// `addend.add(&self.mul_small(n))` (the representations differ,
    /// the field elements do not — pinned by the proptests).
    #[must_use]
    #[inline]
    pub fn mul_small_add(&self, n: u32, addend: &Fe4) -> Fe4 {
        let n = u128::from(n);
        let mut t = [[0u128; LANES]; 5];
        for i in 0..5 {
            for l in 0..LANES {
                t[i][l] = u128::from(self.limbs[i][l]) * n + u128::from(addend.limbs[i][l]);
            }
        }
        Fe4::reduce_wide(&mut t)
    }

    /// One explicit carry pass per lane, bringing limbs back to loose.
    /// The ladder never needs this between steps (mul/square re-carry);
    /// it exists for callers composing longer add/sub chains.
    #[must_use]
    pub fn carry(&self) -> Fe4 {
        let mut out = [[0u64; LANES]; 5];
        for lane in 0..LANES {
            let carried = self.lane(lane);
            for i in 0..5 {
                out[i][lane] = carried.0[i];
            }
        }
        Fe4 { limbs: out }
    }

    /// Branch-free per-lane conditional swap: exchanges lane `l` of `a`
    /// and `b` iff `swap[l] == 1`. The mask expansion and XOR quads are
    /// pure `u64` bit-ops, the one genuinely SIMD-shaped loop in the
    /// ladder step.
    ///
    /// # Panics
    ///
    /// Debug-asserts every `swap[l]` is 0 or 1.
    #[inline(always)]
    pub fn cswap(swap: &[u64; LANES], a: &mut Fe4, b: &mut Fe4) {
        let mut masks = [0u64; LANES];
        for lane in 0..LANES {
            debug_assert!(swap[lane] <= 1);
            masks[lane] = 0u64.wrapping_sub(swap[lane]);
        }
        for i in 0..5 {
            for lane in 0..LANES {
                let x = masks[lane] & (a.limbs[i][lane] ^ b.limbs[i][lane]);
                a.limbs[i][lane] ^= x;
                b.limbs[i][lane] ^= x;
            }
        }
    }

    /// Carries each lane's wide (`u128`-limb) accumulators back to the
    /// loose radix-2^51 representation. Identical structure to the
    /// scalar `Fe::reduce_wide`, except the final ×19 fold stays in
    /// `u128`: with 2^54-bounded multiplier inputs the top carry can
    /// reach 2^64, so `19 · carry` must not be computed in `u64`.
    #[inline(always)]
    fn reduce_wide(t: &mut [[u128; LANES]; 5]) -> Fe4 {
        let mut out = [[0u64; LANES]; 5];
        for l in 0..LANES {
            let mut c: u128;
            c = t[0][l] >> 51;
            out[0][l] = (t[0][l] as u64) & LOW_51;
            t[1][l] += c;
            c = t[1][l] >> 51;
            out[1][l] = (t[1][l] as u64) & LOW_51;
            t[2][l] += c;
            c = t[2][l] >> 51;
            out[2][l] = (t[2][l] as u64) & LOW_51;
            t[3][l] += c;
            c = t[3][l] >> 51;
            out[3][l] = (t[3][l] as u64) & LOW_51;
            t[4][l] += c;
            c = t[4][l] >> 51;
            out[4][l] = (t[4][l] as u64) & LOW_51;
            let fold = u128::from(out[0][l]) + 19 * c;
            out[0][l] = (fold as u64) & LOW_51;
            out[1][l] += (fold >> 51) as u64;
        }
        Fe4 { limbs: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe([n, 0, 0, 0, 0])
    }

    fn sample_fes() -> [Fe; LANES] {
        [
            fe(7),
            Fe::from_bytes(&[0xAB; 32]),
            Fe::from_bytes(&{
                let mut b = [0u8; 32];
                b[0] = 0xED;
                b[31] = 0x7F; // p itself: canonically zero
                b
            }),
            Fe([
                0x7_FFFF_FFFF_FFFF,
                0x7_FFFF_FFFF_FFFF,
                0x7_FFFF_FFFF_FFFF,
                0x7_FFFF_FFFF_FFFF,
                0x7_FFFF_FFFF_FFFF,
            ]),
        ]
    }

    #[test]
    fn roundtrip_lanes() {
        let fes = sample_fes();
        let v = Fe4::from_fes(fes);
        for (i, f) in fes.iter().enumerate() {
            assert_eq!(v.lane(i), *f, "lane {i}");
        }
    }

    #[test]
    fn lanewise_ops_match_scalar() {
        let a = sample_fes();
        let b = [fe(3), fe(1 << 40), Fe::from_bytes(&[0x5C; 32]), Fe::ONE];
        let va = Fe4::from_fes(a);
        let vb = Fe4::from_fes(b);
        for i in 0..LANES {
            assert_eq!(va.add(&vb).lane(i), a[i].add(&b[i]), "add lane {i}");
            assert_eq!(va.sub(&vb).lane(i), a[i].sub(&b[i]), "sub lane {i}");
            assert_eq!(va.mul(&vb).lane(i), a[i].mul(&b[i]), "mul lane {i}");
            assert_eq!(va.square().lane(i), a[i].square(), "square lane {i}");
            assert_eq!(
                va.mul_small(121_665).lane(i),
                a[i].mul_small(121_665),
                "mul_small lane {i}"
            );
            assert_eq!(va.carry().lane(i), a[i], "carry lane {i}");
        }
    }

    #[test]
    fn lazy_add_then_mul_is_exact() {
        // The ladder's characteristic shape: uncarried add/sub feeding a
        // multiplication. (a+b)·(a−b) must equal a²−b² lane-wise.
        let a = sample_fes();
        let b = [Fe::from_bytes(&[0x11; 32]), fe(19), fe(0), fe(1 << 50)];
        let va = Fe4::from_fes(a);
        let vb = Fe4::from_fes(b);
        let lhs = va.add(&vb).mul(&va.sub(&vb));
        let rhs = va.square().sub(&vb.square());
        for i in 0..LANES {
            assert_eq!(lhs.lane(i), rhs.lane(i), "lane {i}");
        }
    }

    #[test]
    fn sub_and_square_at_ladder_bounds() {
        // Worst case the ladder produces: subtraction of two
        // freshly-multiplied (loose) values, then the difference is both
        // squared and multiplied — exercising the widest accumulator
        // paths with near-maximal loose limbs.
        let near_p = Fe::ZERO.sub(&Fe::ONE); // p − 1, maximal canonical
        let a = Fe4::splat(near_p).mul(&Fe4::splat(near_p));
        let b = Fe4::splat(near_p.square());
        let diff = a.sub(&b);
        let sum = a.add(&b);
        let prod = diff.mul(&sum);
        let sq = diff.square();
        for i in 0..LANES {
            let sa = near_p.mul(&near_p);
            let sb = near_p.square();
            assert_eq!(diff.lane(i), sa.sub(&sb), "sub lane {i}");
            assert_eq!(prod.lane(i), sa.sub(&sb).mul(&sa.add(&sb)), "mul lane {i}");
            assert_eq!(sq.lane(i), sa.sub(&sb).square(), "square lane {i}");
        }
    }

    #[test]
    fn cswap_per_lane_masks() {
        let a = sample_fes();
        let b = [fe(100), fe(200), fe(300), fe(400)];
        let mut va = Fe4::from_fes(a);
        let mut vb = Fe4::from_fes(b);
        Fe4::cswap(&[1, 0, 1, 0], &mut va, &mut vb);
        assert_eq!(va.lane(0), b[0]);
        assert_eq!(vb.lane(0), a[0]);
        assert_eq!(va.lane(1), a[1]);
        assert_eq!(vb.lane(1), b[1]);
        assert_eq!(va.lane(2), b[2]);
        assert_eq!(vb.lane(2), a[2]);
        assert_eq!(va.lane(3), a[3]);
        assert_eq!(vb.lane(3), b[3]);
    }

    #[test]
    fn splat_broadcasts() {
        let v = Fe4::splat(fe(42));
        for i in 0..LANES {
            assert_eq!(v.lane(i), fe(42));
        }
    }
}
