//! Arithmetic in the field GF(2^255 − 19).
//!
//! Elements are held as five 51-bit limbs in radix 2^51, the standard
//! representation for 64-bit targets (as in curve25519-donna / ref10).
//! All arithmetic is branch-free; conditional swaps are mask-based so the
//! Montgomery ladder in [`crate::x25519`] does not branch on secret bits.
//!
//! Every operation here is eagerly carried: limbs re-enter the loose
//! (< 2^52) range after each add/sub/mul. The batch-oriented sibling
//! [`crate::fe4`] relaxes exactly that — it processes four elements in
//! lockstep with *lazy* reduction (adds and subs don't carry at all, the
//! bounds are re-established by the next multiplication), which is what
//! makes the 4-wide Montgomery ladder on the peel hot path cheaper than
//! four scalar ladders. See the `fe4` module docs for the precise limb
//! bounds.

/// Mask selecting the low 51 bits of a limb.
const LOW_51: u64 = (1 << 51) - 1;

/// An element of GF(2^255 − 19) in radix-2^51 representation.
///
/// Invariant: after any public constructor or arithmetic operation, each
/// limb is below 2^52 (loosely reduced); [`Fe::to_bytes`] performs the full
/// canonical reduction.
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Decodes a little-endian 32-byte string into a field element.
    ///
    /// Per RFC 7748 §5, the top bit (bit 255) is masked off rather than
    /// rejected.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&b[..8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load(&bytes[0..8]) & LOW_51,
            (load(&bytes[6..14]) >> 3) & LOW_51,
            (load(&bytes[12..20]) >> 6) & LOW_51,
            (load(&bytes[19..27]) >> 1) & LOW_51,
            (load(&bytes[24..32]) >> 12) & LOW_51,
        ])
    }

    /// Encodes the element canonically (fully reduced mod 2^255 − 19) as 32
    /// little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        // First bring every limb below 2^51.
        let mut h = self.carry().0;

        // Compute q = floor((h + 19) / 2^255): 1 iff h >= p.
        let mut q = (h[0].wrapping_add(19)) >> 51;
        q = (h[1].wrapping_add(q)) >> 51;
        q = (h[2].wrapping_add(q)) >> 51;
        q = (h[3].wrapping_add(q)) >> 51;
        q = (h[4].wrapping_add(q)) >> 51;

        // h += 19 q, then reduce mod 2^255 by masking the final carry.
        h[0] = h[0].wrapping_add(19 * q);
        let mut c = h[0] >> 51;
        h[0] &= LOW_51;
        for limb in h.iter_mut().skip(1) {
            *limb = limb.wrapping_add(c);
            c = *limb >> 51;
            *limb &= LOW_51;
        }
        // The carry out of the top limb is exactly the subtracted 2^255.

        let mut out = [0u8; 32];
        let packed = [
            h[0] | (h[1] << 51),
            (h[1] >> 13) | (h[2] << 38),
            (h[2] >> 26) | (h[3] << 25),
            (h[3] >> 39) | (h[4] << 12),
        ];
        for (i, word) in packed.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// One pass of carry propagation, bringing limbs below 2^51 (the top
    /// carry folds back into limb 0 as ×19). Crate-visible so the
    /// limb-sliced [`crate::fe4::Fe4`] lanes can re-enter the loose
    /// representation.
    #[must_use]
    pub(crate) fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        c = l[0] >> 51;
        l[0] &= LOW_51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= LOW_51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= LOW_51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= LOW_51;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= LOW_51;
        l[0] += 19 * c;
        // l[0] may now be marginally above 2^51; one more ripple keeps the
        // loose invariant (< 2^52) comfortably.
        c = l[0] >> 51;
        l[0] &= LOW_51;
        l[1] += c;
        Fe(l)
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
        .carry()
    }

    /// Field subtraction. Adds 2p before subtracting so limbs never
    /// underflow (inputs are loosely reduced, so limbs are < 2^52 < 2p's
    /// per-limb values plus slack).
    #[must_use]
    pub fn sub(&self, rhs: &Fe) -> Fe {
        // Limbs of 4p = 4 * (2^255 - 19); using 4p instead of 2p tolerates
        // inputs up to 2^53 per limb.
        const FOUR_P0: u64 = 0x1F_FFFF_FFFF_FFB4; // 4 * (2^51 - 19) = 2^53 - 76
        const FOUR_P1234: u64 = 0x1F_FFFF_FFFF_FFFC; // 4 * (2^51 - 1) = 2^53 - 4
        let a = &self.0;
        let b = &rhs.0;
        Fe([
            a[0] + FOUR_P0 - b[0],
            a[1] + FOUR_P1234 - b[1],
            a[2] + FOUR_P1234 - b[2],
            a[3] + FOUR_P1234 - b[3],
            a[4] + FOUR_P1234 - b[4],
        ])
        .carry()
    }

    /// Field multiplication (schoolbook over u128 with the ×19 wraparound).
    #[must_use]
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| -> u128 { u128::from(x) * u128::from(y) };

        // 19-fold wraparound terms: limb i of a times limb j of b lands at
        // position i+j; positions >= 5 wrap to i+j-5 scaled by 19.
        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];

        let mut t = [0u128; 5];
        t[0] = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        t[1] = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        t[2] = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        t[3] = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        t[4] = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Fe::reduce_wide(t)
    }

    /// Field squaring. Uses the symmetric-product shortcut (~30% fewer
    /// limb multiplications than [`Fe::mul`]); the Montgomery ladder is
    /// squaring-heavy so this matters for end-to-end round latency.
    #[must_use]
    pub fn square(&self) -> Fe {
        let a = &self.0;
        let m = |x: u64, y: u64| -> u128 { u128::from(x) * u128::from(y) };
        let d0 = 2 * a[0];
        let d1 = 2 * a[1];
        let d2 = 2 * a[2];
        let d3 = 2 * a[3];
        let a4_19 = 19 * a[4];
        let a3_19 = 19 * a[3];

        let mut t = [0u128; 5];
        t[0] = m(a[0], a[0]) + m(d1, a4_19) + m(d2, a3_19);
        t[1] = m(d0, a[1]) + m(d2, a4_19) + m(a[3], a3_19);
        t[2] = m(d0, a[2]) + m(a[1], a[1]) + m(d3, a4_19);
        t[3] = m(d0, a[3]) + m(d1, a[2]) + m(a[4], a4_19);
        t[4] = m(d0, a[4]) + m(d1, a[3]) + m(a[2], a[2]);

        Fe::reduce_wide(t)
    }

    /// Squares the element `k` times in place-returning style.
    ///
    /// Total over all `k`: `pow2k(0)` is the identity (`x^(2^0) = x`).
    /// Earlier versions only `debug_assert!`ed `k > 0` and silently
    /// returned `x²` for `k = 0` in release builds.
    #[must_use]
    pub fn pow2k(&self, k: u32) -> Fe {
        let mut out = *self;
        for _ in 0..k {
            out = out.square();
        }
        out
    }

    /// Multiplication by a small constant (fits in 32 bits), used for the
    /// curve constant a24 = 121665 in the ladder.
    #[must_use]
    pub fn mul_small(&self, n: u32) -> Fe {
        let n = u128::from(n);
        let mut t = [0u128; 5];
        for (wide, limb) in t.iter_mut().zip(self.0.iter()) {
            *wide = u128::from(*limb) * n;
        }
        Fe::reduce_wide(t)
    }

    /// Carries a wide (u128-limb) intermediate back to the loose
    /// radix-2^51 representation.
    fn reduce_wide(mut t: [u128; 5]) -> Fe {
        let mut l = [0u64; 5];
        let mut c: u128;
        c = t[0] >> 51;
        l[0] = (t[0] as u64) & LOW_51;
        t[1] += c;
        c = t[1] >> 51;
        l[1] = (t[1] as u64) & LOW_51;
        t[2] += c;
        c = t[2] >> 51;
        l[2] = (t[2] as u64) & LOW_51;
        t[3] += c;
        c = t[3] >> 51;
        l[3] = (t[3] as u64) & LOW_51;
        t[4] += c;
        c = t[4] >> 51;
        l[4] = (t[4] as u64) & LOW_51;
        l[0] += 19 * (c as u64);
        let c64 = l[0] >> 51;
        l[0] &= LOW_51;
        l[1] += c64;
        Fe(l)
    }

    /// Multiplicative inverse via Fermat's little theorem (z^(p−2)), using
    /// the standard ref10 addition chain (11 multiplications, 254 squarings).
    ///
    /// The inverse of zero is zero, which is exactly the behaviour the
    /// X25519 ladder relies on for low-order inputs.
    #[must_use]
    pub fn invert(&self) -> Fe {
        let z = self;
        let t0 = z.square(); // 2
        let mut t1 = t0.pow2k(2); // 8
        t1 = z.mul(&t1); // 9
        let t0 = t0.mul(&t1); // 11
        let t2 = t0.square(); // 22
        let t1 = t1.mul(&t2); // 31 = 2^5 - 1
        let t2 = t1.pow2k(5); // 2^10 - 2^5
        let t1 = t2.mul(&t1); // 2^10 - 1
        let t2 = t1.pow2k(10); // 2^20 - 2^10
        let t2 = t2.mul(&t1); // 2^20 - 1
        let t3 = t2.pow2k(20); // 2^40 - 2^20
        let t2 = t3.mul(&t2); // 2^40 - 1
        let t2 = t2.pow2k(10); // 2^50 - 2^10
        let t1 = t2.mul(&t1); // 2^50 - 1
        let t2 = t1.pow2k(50); // 2^100 - 2^50
        let t2 = t2.mul(&t1); // 2^100 - 1
        let t3 = t2.pow2k(100); // 2^200 - 2^100
        let t2 = t3.mul(&t2); // 2^200 - 1
        let t2 = t2.pow2k(50); // 2^250 - 2^50
        let t1 = t2.mul(&t1); // 2^250 - 1
        let t1 = t1.pow2k(5); // 2^255 - 2^5
        t1.mul(&t0) // 2^255 - 21 = p - 2
    }

    /// Branch-free conditional swap: exchanges `a` and `b` iff `swap == 1`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `swap` is 0 or 1.
    pub fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        debug_assert!(swap <= 1);
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }

    /// Whether the canonical encoding of this element is all zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }
}

impl PartialEq for Fe {
    /// Equality on the canonical encodings (so loosely-reduced
    /// representations of the same element compare equal).
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for Fe {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe([n, 0, 0, 0, 0])
    }

    /// p as bytes: 2^255 - 19 little-endian.
    fn p_bytes() -> [u8; 32] {
        let mut b = [0xffu8; 32];
        b[0] = 0xed;
        b[31] = 0x7f;
        b
    }

    #[test]
    fn encode_decode_roundtrip_small() {
        for n in [0u64, 1, 2, 19, 255, 1 << 40] {
            let e = fe(n);
            let b = e.to_bytes();
            assert_eq!(Fe::from_bytes(&b), e);
        }
    }

    #[test]
    fn p_is_canonically_zero() {
        let e = Fe::from_bytes(&p_bytes());
        assert!(e.is_zero(), "p must reduce to 0");
    }

    #[test]
    fn p_plus_one_is_one() {
        let mut b = p_bytes();
        b[0] = 0xee; // p + 1
        assert_eq!(Fe::from_bytes(&b), Fe::ONE);
    }

    #[test]
    fn top_bit_is_masked() {
        // 2^255 ≡ 19 (mod p)
        let mut b = [0u8; 32];
        b[31] = 0x80;
        assert_eq!(Fe::from_bytes(&b), fe(19).sub(&fe(19)), "bit 255 ignored");
        assert_eq!(Fe::from_bytes(&b), Fe::ZERO);
    }

    #[test]
    fn add_sub_inverse() {
        let a = fe(123_456_789);
        let b = fe(987_654_321);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn sub_wraps_mod_p() {
        // 0 - 1 = p - 1
        let got = Fe::ZERO.sub(&Fe::ONE).to_bytes();
        let mut want = p_bytes();
        want[0] = 0xec; // p - 1
        assert_eq!(got, want);
    }

    #[test]
    fn mul_matches_known_small_products() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(0).mul(&fe(7)), Fe::ZERO);
        assert_eq!(fe(1).mul(&fe(7)), fe(7));
    }

    #[test]
    fn mul_by_19_wraps() {
        // (2^255 - 19 + 19) * x == 19 x  i.e. 2^255 * x ≡ 19 x.
        // Construct 2^254 as a limb pattern and double it.
        let two_254 = Fe([0, 0, 0, 0, 1 << 50]);
        let two_255 = two_254.add(&two_254);
        assert_eq!(two_255, fe(19));
    }

    #[test]
    fn square_matches_mul() {
        let a = Fe([
            0x1234_5678_9abc,
            0x7_ffff_ffff_ffff,
            0x42,
            0x3_1415_9265_3589,
            0x2_7182_8182_8459,
        ]);
        assert_eq!(a.square(), a.mul(&a));
        assert_eq!(a.pow2k(3), a.mul(&a).mul(&a.mul(&a)).square());
    }

    #[test]
    fn pow2k_zero_is_identity() {
        // Regression: pow2k(0) used to return x² in release builds (the
        // k > 0 contract was only a debug_assert). It must be x.
        let a = Fe([
            0x1234_5678_9abc,
            0x7_ffff_ffff_ffff,
            0x42,
            0x3_1415_9265_3589,
            0x2_7182_8182_8459,
        ]);
        assert_eq!(a.pow2k(0), a);
        assert_eq!(a.pow2k(1), a.square());
        assert_eq!(Fe::ZERO.pow2k(0), Fe::ZERO);
    }

    #[test]
    fn mul_small_matches_mul() {
        let a = Fe([99, 1 << 50, 7, 0, 1 << 44]);
        assert_eq!(a.mul_small(121_665), a.mul(&fe(121_665)));
    }

    #[test]
    fn invert_small() {
        let a = fe(2);
        let inv = a.invert();
        assert_eq!(a.mul(&inv), Fe::ONE);
    }

    #[test]
    fn invert_of_zero_is_zero() {
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn cswap_behaviour() {
        let mut a = fe(1);
        let mut b = fe(2);
        Fe::cswap(0, &mut a, &mut b);
        assert_eq!((a, b), (fe(1), fe(2)));
        Fe::cswap(1, &mut a, &mut b);
        assert_eq!((a, b), (fe(2), fe(1)));
    }
}
