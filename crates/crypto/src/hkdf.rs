//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! Raw X25519 outputs are never used directly as cipher keys; every shared
//! secret is expanded through HKDF with a domain-separation label (one for
//! onion layers, one for end-to-end payloads, one for dead-drop IDs), so a
//! transcript captured in one role is useless in another.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// HMAC-SHA256 of `data` under `key` (any key length).
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hm = HmacSha256::new(key);
    hm.update(data);
    hm.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initialises HMAC with an arbitrary-length key.
    #[must_use]
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte MAC.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// HKDF-Extract: PRK = HMAC(salt, ikm).
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `okm.len()` bytes from a PRK and an info string.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit);
/// Vuvuzela never derives more than 64 bytes at a time.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], okm: &mut [u8]) {
    assert!(okm.len() <= 255 * DIGEST_LEN, "HKDF-Expand output too long");
    // T(0) is empty; afterwards T(i) is the previous block. Fixed buffer:
    // this runs once per onion layer, so it must not allocate.
    let mut t = [0u8; DIGEST_LEN];
    let mut t_len = 0usize;
    let mut counter = 1u8;
    let mut written = 0;
    while written < okm.len() {
        let mut hm = HmacSha256::new(prk);
        hm.update(&t[..t_len]);
        hm.update(info);
        hm.update(&[counter]);
        let block = hm.finalize();
        let take = (okm.len() - written).min(DIGEST_LEN);
        okm[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block;
        t_len = DIGEST_LEN;
        counter = counter.wrapping_add(1);
    }
}

/// One-call HKDF (extract + expand) producing a 32-byte key.
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let prk = hkdf_extract(salt, ikm);
    let mut okm = [0u8; 32];
    hkdf_expand(&prk, info, &mut okm);
    okm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex"))
            .collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let want = hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
        assert_eq!(&hmac_sha256(&key, b"Hi There")[..], &want[..]);
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn hmac_rfc4231_case2() {
        let want = hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
        assert_eq!(
            &hmac_sha256(b"Jefe", b"what do ya want for nothing?")[..],
            &want[..]
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn hmac_rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let want = hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
        assert_eq!(&hmac_sha256(&key, &data)[..], &want[..]);
    }

    /// RFC 4231 test case 6: key longer than one block.
    #[test]
    fn hmac_rfc4231_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        let want = hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
        assert_eq!(&hmac_sha256(&key, data)[..], &want[..]);
    }

    /// RFC 5869 test case 1.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        let want_prk = hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        assert_eq!(&prk[..], &want_prk[..]);

        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        let want_okm = hex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865",
        );
        assert_eq!(&okm[..], &want_okm[..]);
    }

    /// RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn hkdf_rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = hkdf_extract(b"", &ikm);
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, b"", &mut okm);
        let want = hex(
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8",
        );
        assert_eq!(&okm[..], &want[..]);
    }

    #[test]
    fn incremental_hmac_matches_oneshot() {
        let key = b"some key";
        let data: Vec<u8> = (0..200u8).collect();
        let oneshot = hmac_sha256(key, &data);
        let mut hm = HmacSha256::new(key);
        for piece in data.chunks(13) {
            hm.update(piece);
        }
        assert_eq!(hm.finalize(), oneshot);
    }

    #[test]
    fn hkdf_labels_separate_domains() {
        let ikm = [0x77u8; 32];
        assert_ne!(hkdf(b"", &ikm, b"label-a"), hkdf(b"", &ikm, b"label-b"));
    }
}
