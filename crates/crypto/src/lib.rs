//! From-scratch cryptographic primitives for Vuvuzela.
//!
//! Vuvuzela (van den Hooff et al., SOSP 2015) relies on a small set of
//! standard primitives: Curve25519 Diffie-Hellman for per-round ephemeral
//! key agreement, an indistinguishable authenticated symmetric cipher for
//! message payloads and onion layers, and a hash for dead-drop derivation.
//! This crate implements all of them in pure safe Rust:
//!
//! * [`x25519`] — RFC 7748 X25519 over a 51-bit-limb field implementation.
//! * [`chacha20`] / [`poly1305`] / [`aead`] — RFC 8439 ChaCha20-Poly1305.
//! * [`sha256`] / [`hkdf`] — FIPS 180-4 SHA-256, RFC 2104 HMAC, RFC 5869
//!   HKDF.
//! * [`onion`] — the layered encryption used by Vuvuzela's mixnet chain
//!   (paper §4.1, Algorithm 1 step 2 / Algorithm 2 steps 1 and 4).
//! * [`sealedbox`] — anonymous public-key boxes for dialing invitations
//!   (paper §5.2).
//!
//! Every primitive carries the RFC known-answer tests in its module.
//!
//! # Security note
//!
//! The field and scalar arithmetic use the standard constant-time-friendly
//! algorithms (Montgomery ladder with conditional swaps, branch-free limb
//! arithmetic), but this code has not been audited and makes no hard
//! constant-time guarantee on every compiler/target; it reproduces the
//! *functional* behaviour and cost structure of the paper's prototype.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub(crate) mod edwards;
pub mod fe4;
pub mod field;
pub mod hkdf;
pub mod onion;
pub mod poly1305;
pub mod sealedbox;
pub mod sha256;
pub mod x25519;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// An authenticated decryption failed: the ciphertext or tag was
    /// malformed or tampered with.
    DecryptFailed,
    /// An input buffer had an invalid length for the operation.
    BadLength {
        /// The length the operation required.
        expected: usize,
        /// The length that was provided.
        got: usize,
    },
    /// An onion had fewer layers than the chain expected.
    TooFewLayers,
    /// A Diffie-Hellman exchange produced the all-zero point (non-contributory
    /// key exchange; indicates a malicious low-order public key).
    DegenerateSharedSecret,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::DecryptFailed => write!(f, "authenticated decryption failed"),
            CryptoError::BadLength { expected, got } => {
                write!(f, "bad input length: expected {expected}, got {got}")
            }
            CryptoError::TooFewLayers => write!(f, "onion has too few layers"),
            CryptoError::DegenerateSharedSecret => {
                write!(f, "Diffie-Hellman produced an all-zero shared secret")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

/// Compares two byte slices in constant time (with respect to contents;
/// the comparison short-circuits only on *length* mismatch, which is public).
///
/// Used for MAC verification so that an attacker cannot learn tag prefixes
/// through timing.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CryptoError::BadLength {
            expected: 32,
            got: 16,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("16"));
        assert!(!CryptoError::DecryptFailed.to_string().is_empty());
        assert!(!CryptoError::TooFewLayers.to_string().is_empty());
        assert!(!CryptoError::DegenerateSharedSecret.to_string().is_empty());
    }
}
