//! Layered ("onion") encryption for the Vuvuzela server chain.
//!
//! Implements Algorithm 1 step 2 (client-side wrapping), Algorithm 2
//! step 1 (server-side peeling) and Algorithm 2 step 4 / Algorithm 1
//! step 3 (the reply path) from the paper.
//!
//! Wire layout of one request layer:
//!
//! ```text
//! ┌────────────────────┬──────────────────────────────────┐
//! │ ephemeral pk (32B) │ ChaCha20-Poly1305(inner) (…+16B) │
//! └────────────────────┴──────────────────────────────────┘
//! ```
//!
//! The client generates a fresh X25519 keypair *per layer per round*; the
//! layer key is `HKDF(DH(eph_sk, server_pk))`. The same layer key encrypts
//! the server's reply on the way back (with a direction-separated nonce),
//! which is the "temporary key for that server to use to encrypt the
//! user's result on the way back" of §4.1. Each request layer therefore
//! adds [`LAYER_OVERHEAD`] bytes, and each reply layer adds
//! [`REPLY_LAYER_OVERHEAD`] bytes.

use crate::aead;
use crate::hkdf::hkdf;
use crate::x25519::{Keypair, PublicKey, SecretKey};
use crate::CryptoError;
use rand::{CryptoRng, RngCore};

/// Bytes added per onion layer on the request path (ephemeral public key
/// plus AEAD tag).
pub const LAYER_OVERHEAD: usize = 32 + aead::TAG_LEN;

/// Bytes added per onion layer on the reply path (AEAD tag only; the key
/// was established on the way in).
pub const REPLY_LAYER_OVERHEAD: usize = aead::TAG_LEN;

/// HKDF domain-separation label for onion layer keys.
const LAYER_INFO: &[u8] = b"vuvuzela/onion/layer/v1";

/// Direction of travel through the chain, used for nonce separation so the
/// request and reply under one layer key never share a nonce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → last server.
    Request,
    /// Last server → client.
    Reply,
}

/// Builds the deterministic per-round nonce for one direction.
///
/// Safe because every layer key is fresh per round: a (key, nonce) pair is
/// never reused.
#[must_use]
pub fn round_nonce(round: u64, direction: Direction) -> [u8; aead::NONCE_LEN] {
    let mut nonce = [0u8; aead::NONCE_LEN];
    nonce[0] = match direction {
        Direction::Request => 0x01,
        Direction::Reply => 0x02,
    };
    nonce[4..12].copy_from_slice(&round.to_le_bytes());
    nonce
}

/// The symmetric key shared between a client and one server for one round.
#[derive(Clone)]
pub struct LayerKey(pub [u8; 32]);

impl core::fmt::Debug for LayerKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LayerKey(..)")
    }
}

/// Derives a layer key from a DH exchange, rejecting degenerate (all-zero)
/// shared secrets produced by low-order public keys.
///
/// # Errors
///
/// [`CryptoError::DegenerateSharedSecret`] when the DH output is zero.
pub fn derive_layer_key(
    my_secret: &SecretKey,
    their_public: &PublicKey,
    eph_public: &PublicKey,
    server_public: &PublicKey,
) -> Result<LayerKey, CryptoError> {
    let shared = my_secret.diffie_hellman(their_public);
    if shared.0 == [0u8; 32] {
        return Err(CryptoError::DegenerateSharedSecret);
    }
    // Salt binds the key to the specific (ephemeral, server) pair.
    let mut salt = [0u8; 64];
    salt[..32].copy_from_slice(eph_public.as_bytes());
    salt[32..].copy_from_slice(server_public.as_bytes());
    Ok(LayerKey(hkdf(&salt, &shared.0, LAYER_INFO)))
}

/// Client side: onion-wraps `payload` for the given server chain.
///
/// `server_pks[0]` is the first server (outermost layer). Returns the wire
/// bytes and the per-layer keys (ordered like `server_pks`) needed to
/// decrypt the reply with [`unwrap_reply_layers`].
pub fn wrap<R: RngCore + CryptoRng>(
    rng: &mut R,
    server_pks: &[PublicKey],
    round: u64,
    payload: &[u8],
) -> (Vec<u8>, Vec<LayerKey>) {
    let nonce = round_nonce(round, Direction::Request);
    let mut keys = Vec::with_capacity(server_pks.len());
    // Generate layer keys in forward order so `keys[i]` belongs to server i.
    let mut headers: Vec<(PublicKey, LayerKey)> = Vec::with_capacity(server_pks.len());
    for server_pk in server_pks {
        let eph = Keypair::generate(rng);
        let key = derive_layer_key(&eph.secret, server_pk, &eph.public, server_pk)
            .expect("freshly generated ephemeral key cannot be low-order");
        headers.push((eph.public, key.clone()));
        keys.push(key);
    }

    // Encrypt from the innermost (last server) outwards.
    let mut onion = payload.to_vec();
    for (eph_pk, key) in headers.iter().rev() {
        let sealed = aead::seal(&key.0, &nonce, &[], &onion);
        let mut layer = Vec::with_capacity(32 + sealed.len());
        layer.extend_from_slice(eph_pk.as_bytes());
        layer.extend_from_slice(&sealed);
        onion = layer;
    }
    (onion, keys)
}

/// The exact on-the-wire size of a request onion for a given inner payload
/// size and chain length.
#[must_use]
pub const fn wrapped_len(payload_len: usize, chain_len: usize) -> usize {
    payload_len + chain_len * LAYER_OVERHEAD
}

/// The size of a fully-wrapped reply for a given result payload size.
#[must_use]
pub const fn reply_len(payload_len: usize, chain_len: usize) -> usize {
    payload_len + chain_len * REPLY_LAYER_OVERHEAD
}

/// Server side: peels one onion layer.
///
/// Returns the layer key (to be kept for the reply path) and the inner
/// onion destined for the next server.
///
/// # Errors
///
/// * [`CryptoError::BadLength`] if the layer is too short to contain a key
///   and a tag.
/// * [`CryptoError::DegenerateSharedSecret`] for low-order ephemeral keys.
/// * [`CryptoError::DecryptFailed`] if authentication fails.
pub fn peel(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    layer: &[u8],
) -> Result<(LayerKey, Vec<u8>), CryptoError> {
    if layer.len() < LAYER_OVERHEAD {
        return Err(CryptoError::BadLength {
            expected: LAYER_OVERHEAD,
            got: layer.len(),
        });
    }
    let mut eph_bytes = [0u8; 32];
    eph_bytes.copy_from_slice(&layer[..32]);
    let eph_pk = PublicKey::from_bytes(eph_bytes);
    let key = derive_layer_key(server_secret, &eph_pk, &eph_pk, server_public)?;
    let nonce = round_nonce(round, Direction::Request);
    let inner = aead::open(&key.0, &nonce, &[], &layer[32..])?;
    Ok((key, inner))
}

/// Server side: wraps a reply payload under a layer key captured by
/// [`peel`] on the request path.
#[must_use]
pub fn wrap_reply_layer(key: &LayerKey, round: u64, payload: &[u8]) -> Vec<u8> {
    let nonce = round_nonce(round, Direction::Reply);
    aead::seal(&key.0, &nonce, &[], payload)
}

/// Client side: unwraps all reply layers (server 1's layer is outermost).
///
/// # Errors
///
/// [`CryptoError::DecryptFailed`] / [`CryptoError::BadLength`] if any layer
/// fails to authenticate.
pub fn unwrap_reply_layers(
    keys: &[LayerKey],
    round: u64,
    reply: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let nonce = round_nonce(round, Direction::Reply);
    let mut current = reply.to_vec();
    for key in keys {
        current = aead::open(&key.0, &nonce, &[], &current)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize, rng: &mut StdRng) -> Vec<Keypair> {
        (0..n).map(|_| Keypair::generate(rng)).collect()
    }

    #[test]
    fn wrap_peel_roundtrip_three_servers() {
        let mut rng = StdRng::seed_from_u64(1);
        let servers = chain(3, &mut rng);
        let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
        let payload = b"dead drop request".to_vec();

        let (mut onion, keys) = wrap(&mut rng, &pks, 42, &payload);
        assert_eq!(onion.len(), wrapped_len(payload.len(), 3));
        assert_eq!(keys.len(), 3);

        let mut server_keys = Vec::new();
        for kp in &servers {
            let (k, inner) = peel(&kp.secret, &kp.public, 42, &onion).expect("peel");
            server_keys.push(k);
            onion = inner;
        }
        assert_eq!(onion, payload);

        // Reply path: last server seals first, then back through the chain.
        let mut reply = b"dead drop result".to_vec();
        for k in server_keys.iter().rev() {
            reply = wrap_reply_layer(k, 42, &reply);
        }
        assert_eq!(reply.len(), reply_len(16, 3));
        let out = unwrap_reply_layers(&keys, 42, &reply).expect("unwrap replies");
        assert_eq!(out, b"dead drop result");
    }

    #[test]
    fn single_server_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let server = Keypair::generate(&mut rng);
        let (onion, keys) = wrap(&mut rng, &[server.public], 0, b"x");
        let (k, inner) = peel(&server.secret, &server.public, 0, &onion).expect("peel");
        assert_eq!(inner, b"x");
        let reply = wrap_reply_layer(&k, 0, b"y");
        assert_eq!(unwrap_reply_layers(&keys, 0, &reply).expect("reply"), b"y");
    }

    #[test]
    fn wrong_round_fails() {
        let mut rng = StdRng::seed_from_u64(3);
        let server = Keypair::generate(&mut rng);
        let (onion, _) = wrap(&mut rng, &[server.public], 7, b"payload");
        assert!(peel(&server.secret, &server.public, 8, &onion).is_err());
    }

    #[test]
    fn wrong_server_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Keypair::generate(&mut rng);
        let b = Keypair::generate(&mut rng);
        let (onion, _) = wrap(&mut rng, &[a.public], 7, b"payload");
        assert!(peel(&b.secret, &b.public, 7, &onion).is_err());
    }

    #[test]
    fn tampered_layer_fails() {
        let mut rng = StdRng::seed_from_u64(5);
        let server = Keypair::generate(&mut rng);
        let (mut onion, _) = wrap(&mut rng, &[server.public], 7, b"payload");
        let last = onion.len() - 1;
        onion[last] ^= 1;
        assert!(peel(&server.secret, &server.public, 7, &onion).is_err());
    }

    #[test]
    fn too_short_layer_is_bad_length() {
        let mut rng = StdRng::seed_from_u64(6);
        let server = Keypair::generate(&mut rng);
        let err = peel(&server.secret, &server.public, 0, &[0u8; 10]).unwrap_err();
        assert!(matches!(err, CryptoError::BadLength { .. }));
    }

    #[test]
    fn low_order_ephemeral_is_rejected_not_panicking() {
        let mut rng = StdRng::seed_from_u64(7);
        let server = Keypair::generate(&mut rng);
        // An attacker-crafted layer with an all-zero "ephemeral key".
        let mut forged = vec![0u8; LAYER_OVERHEAD + 8];
        forged[32..].fill(0xAB);
        let err = peel(&server.secret, &server.public, 0, &forged).unwrap_err();
        assert_eq!(err, CryptoError::DegenerateSharedSecret);
    }

    #[test]
    fn request_and_reply_nonces_differ() {
        assert_ne!(
            round_nonce(5, Direction::Request),
            round_nonce(5, Direction::Reply)
        );
        assert_ne!(
            round_nonce(5, Direction::Request),
            round_nonce(6, Direction::Request)
        );
    }

    #[test]
    fn onions_are_unlinkable_across_wraps() {
        // Same payload, same chain, two wraps: every byte of the onion
        // should differ (fresh ephemerals + pseudorandom ciphertexts).
        let mut rng = StdRng::seed_from_u64(8);
        let servers = chain(2, &mut rng);
        let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
        let (a, _) = wrap(&mut rng, &pks, 1, b"same payload");
        let (b, _) = wrap(&mut rng, &pks, 1, b"same payload");
        assert_ne!(a, b);
    }
}
