//! Layered ("onion") encryption for the Vuvuzela server chain.
//!
//! Implements Algorithm 1 step 2 (client-side wrapping), Algorithm 2
//! step 1 (server-side peeling) and Algorithm 2 step 4 / Algorithm 1
//! step 3 (the reply path) from the paper.
//!
//! Wire layout of one request layer:
//!
//! ```text
//! ┌────────────────────┬──────────────────────────────────┐
//! │ ephemeral pk (32B) │ ChaCha20-Poly1305(inner) (…+16B) │
//! └────────────────────┴──────────────────────────────────┘
//! ```
//!
//! The client generates a fresh X25519 keypair *per layer per round*; the
//! layer key is `HKDF(DH(eph_sk, server_pk))`. The same layer key encrypts
//! the server's reply on the way back (with a direction-separated nonce),
//! which is the "temporary key for that server to use to encrypt the
//! user's result on the way back" of §4.1. Each request layer therefore
//! adds [`LAYER_OVERHEAD`] bytes, and each reply layer adds
//! [`REPLY_LAYER_OVERHEAD`] bytes.

use crate::aead;
use crate::hkdf::hkdf;
use crate::x25519::{DhTable, Keypair, PublicKey, SecretKey, SharedSecret};
use crate::CryptoError;
use rand::{CryptoRng, RngCore};

/// Bytes added per onion layer on the request path (ephemeral public key
/// plus AEAD tag).
pub const LAYER_OVERHEAD: usize = 32 + aead::TAG_LEN;

/// Bytes added per onion layer on the reply path (AEAD tag only; the key
/// was established on the way in).
pub const REPLY_LAYER_OVERHEAD: usize = aead::TAG_LEN;

/// HKDF domain-separation label for onion layer keys.
const LAYER_INFO: &[u8] = b"vuvuzela/onion/layer/v1";

/// Direction of travel through the chain, used for nonce separation so the
/// request and reply under one layer key never share a nonce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → last server.
    Request,
    /// Last server → client.
    Reply,
}

/// Builds the deterministic per-round nonce for one direction.
///
/// Safe because every layer key is fresh per round: a (key, nonce) pair is
/// never reused.
#[must_use]
pub fn round_nonce(round: u64, direction: Direction) -> [u8; aead::NONCE_LEN] {
    let mut nonce = [0u8; aead::NONCE_LEN];
    nonce[0] = match direction {
        Direction::Request => 0x01,
        Direction::Reply => 0x02,
    };
    nonce[4..12].copy_from_slice(&round.to_le_bytes());
    nonce
}

/// The symmetric key shared between a client and one server for one round.
#[derive(Clone)]
pub struct LayerKey(pub [u8; 32]);

impl core::fmt::Debug for LayerKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LayerKey(..)")
    }
}

/// Derives a layer key from a DH exchange, rejecting degenerate (all-zero)
/// shared secrets produced by low-order public keys.
///
/// # Errors
///
/// [`CryptoError::DegenerateSharedSecret`] when the DH output is zero.
pub fn derive_layer_key(
    my_secret: &SecretKey,
    their_public: &PublicKey,
    eph_public: &PublicKey,
    server_public: &PublicKey,
) -> Result<LayerKey, CryptoError> {
    layer_key_from_shared(
        &my_secret.diffie_hellman(their_public),
        eph_public,
        server_public,
    )
}

/// The KDF half of [`derive_layer_key`], for callers that computed the
/// shared secret through a precomputed table.
///
/// # Errors
///
/// [`CryptoError::DegenerateSharedSecret`] when the DH output is zero.
pub fn layer_key_from_shared(
    shared: &SharedSecret,
    eph_public: &PublicKey,
    server_public: &PublicKey,
) -> Result<LayerKey, CryptoError> {
    if shared.0 == [0u8; 32] {
        return Err(CryptoError::DegenerateSharedSecret);
    }
    // Salt binds the key to the specific (ephemeral, server) pair.
    let mut salt = [0u8; 64];
    salt[..32].copy_from_slice(eph_public.as_bytes());
    salt[32..].copy_from_slice(server_public.as_bytes());
    Ok(LayerKey(hkdf(&salt, &shared.0, LAYER_INFO)))
}

/// A chain server's public key plus (when the key lies on the curve
/// proper) a precomputed Edwards comb table accelerating the per-onion
/// `eph_sk · server_pk` Diffie-Hellman. Built once per long-lived server
/// key; used by the bulk noise-wrapping path, which performs this DH for
/// every cover onion, every round.
pub struct PrecomputedServer {
    /// The server's long-term public key.
    pub public: PublicKey,
    table: Option<DhTable>,
}

impl PrecomputedServer {
    /// Precomputes for one server key (falls back to the plain ladder at
    /// use time if the key is a twist point, which honest servers never
    /// publish).
    #[must_use]
    pub fn new(public: PublicKey) -> PrecomputedServer {
        PrecomputedServer {
            table: DhTable::new(&public),
            public,
        }
    }

    /// `eph_sk · server_pk` with its field inversion deferred, through
    /// the table when available (ladder fallbacks resolve trivially:
    /// their inversion already happened inside the ladder).
    fn shared_with_pending(&self, eph_secret: &SecretKey) -> crate::edwards::PendingU {
        match &self.table {
            Some(table) => table.diffie_hellman_pending(eph_secret),
            None => crate::edwards::PendingU::resolved(&eph_secret.diffie_hellman(&self.public).0),
        }
    }
}

/// Client side: onion-wraps `payload` for the given server chain.
///
/// `server_pks[0]` is the first server (outermost layer). Returns the wire
/// bytes and the per-layer keys (ordered like `server_pks`) needed to
/// decrypt the reply with [`unwrap_reply_layers`].
///
/// This is the **pre-refactor reference path**: ladder keygen, one heap
/// allocation per layer. [`wrap_into`] / [`wrap_into_with`] produce
/// byte-identical onions (equal RNG state) without the allocations and
/// with table-accelerated scalar multiplication; the equivalence property
/// tests and the round benchmarks hold the two sides against each other.
pub fn wrap<R: RngCore + CryptoRng>(
    rng: &mut R,
    server_pks: &[PublicKey],
    round: u64,
    payload: &[u8],
) -> (Vec<u8>, Vec<LayerKey>) {
    let nonce = round_nonce(round, Direction::Request);
    let mut keys = Vec::with_capacity(server_pks.len());
    // Generate layer keys in forward order so `keys[i]` belongs to server i.
    let mut headers: Vec<(PublicKey, LayerKey)> = Vec::with_capacity(server_pks.len());
    for server_pk in server_pks {
        let eph = Keypair::generate_reference(rng);
        let key = derive_layer_key(&eph.secret, server_pk, &eph.public, server_pk)
            .expect("freshly generated ephemeral key cannot be low-order");
        headers.push((eph.public, key.clone()));
        keys.push(key);
    }

    // Encrypt from the innermost (last server) outwards.
    let mut onion = payload.to_vec();
    for (eph_pk, key) in headers.iter().rev() {
        let sealed = aead::seal(&key.0, &nonce, &[], &onion);
        let mut layer = Vec::with_capacity(32 + sealed.len());
        layer.extend_from_slice(eph_pk.as_bytes());
        layer.extend_from_slice(&sealed);
        onion = layer;
    }
    (onion, keys)
}

/// Client side: onion-wraps a payload **in place**, without allocating.
///
/// The caller places the payload at
/// `buf[32 * chain_len .. 32 * chain_len + payload_len]` and provides at
/// least [`wrapped_len`]`(payload_len, chain_len)` bytes of buffer; on
/// return the finished onion occupies `buf[..wrapped_len(..)]`. Output is
/// byte-identical to [`wrap`] for the same RNG state (the allocating
/// version is kept as the reference the property tests compare against).
///
/// Returns the per-layer keys, ordered like `server_pks`.
///
/// # Panics
///
/// Panics if `buf` is too short — a caller bug, since every round buffer
/// reserves the full onion stride up front.
pub fn wrap_into<R: RngCore + CryptoRng>(
    rng: &mut R,
    server_pks: &[PublicKey],
    round: u64,
    buf: &mut [u8],
    payload_len: usize,
) -> Vec<LayerKey> {
    // Transient untabled servers: the per-layer DH falls back to the
    // ladder, everything else shares the stack-batched core.
    let servers: Vec<PrecomputedServer> = server_pks
        .iter()
        .map(|pk| PrecomputedServer {
            public: *pk,
            table: None,
        })
        .collect();
    wrap_into_with(rng, &servers, round, buf, payload_len)
}

/// Like [`wrap_into`], but performing each layer's Diffie-Hellman through
/// the servers' precomputed comb tables — the bulk cover-traffic path,
/// where the same chain suffix is wrapped thousands of times per round.
/// Byte-identical output and RNG consumption.
pub fn wrap_into_with<R: RngCore + CryptoRng>(
    rng: &mut R,
    servers: &[PrecomputedServer],
    round: u64,
    buf: &mut [u8],
    payload_len: usize,
) -> Vec<LayerKey> {
    let mut keys = [[0u8; 32]; MAX_CHAIN];
    wrap_with_core(rng, servers, round, buf, payload_len, &mut keys);
    keys[..servers.len()].iter().map(|k| LayerKey(*k)).collect()
}

/// [`wrap_into_with`] for callers that discard the layer keys — the bulk
/// cover-traffic path, which never sees a reply to its own noise. Runs
/// entirely on the stack (zero heap allocations per onion); identical RNG
/// consumption and output bytes.
///
/// # Panics
///
/// Panics if `buf` is too short or the chain exceeds [`MAX_CHAIN`]
/// servers.
pub fn wrap_noise_into<R: RngCore + CryptoRng>(
    rng: &mut R,
    servers: &[PrecomputedServer],
    round: u64,
    buf: &mut [u8],
    payload_len: usize,
) {
    let mut keys = [[0u8; 32]; MAX_CHAIN];
    wrap_with_core(rng, servers, round, buf, payload_len, &mut keys);
}

/// Longest chain the stack-batched wrapping paths support (the paper
/// evaluates up to 6 servers).
pub const MAX_CHAIN: usize = 16;

/// Shared core of [`wrap_into_with`] / [`wrap_noise_into`]: draws all
/// ephemeral secrets first (the same RNG order as `wrap`), runs every
/// layer's keygen and DH with the field inversions deferred — 2·chain_len
/// scalar multiplications share a single inversion, the whole batch on
/// the stack — then seals innermost-outwards in place: each layer
/// encrypts where it stands, appends its tag, and prefixes its ephemeral
/// key. Layer keys are written to `keys_out[..servers.len()]`.
fn wrap_with_core<R: RngCore + CryptoRng>(
    rng: &mut R,
    servers: &[PrecomputedServer],
    round: u64,
    buf: &mut [u8],
    payload_len: usize,
    keys_out: &mut [[u8; 32]; MAX_CHAIN],
) {
    let chain_len = servers.len();
    assert!(chain_len <= MAX_CHAIN, "chain too long for stack batching");
    let total = wrapped_len(payload_len, chain_len);
    assert!(buf.len() >= total, "wrapping needs the full onion stride");

    let nonce = round_nonce(round, Direction::Request);
    let mut secret_bytes = [[0u8; 32]; MAX_CHAIN];
    for secret in secret_bytes.iter_mut().take(chain_len) {
        rng.fill_bytes(secret);
    }
    let mut pending = [crate::edwards::PendingU::PLACEHOLDER; 2 * MAX_CHAIN];
    for (i, server) in servers.iter().enumerate() {
        let secret = SecretKey::from_bytes(secret_bytes[i]);
        pending[2 * i] = crate::x25519::x25519_base_pending(secret.as_bytes());
        pending[2 * i + 1] = server.shared_with_pending(&secret);
    }
    let mut resolved = [[0u8; 32]; 2 * MAX_CHAIN];
    crate::x25519::resolve_pending_into(&pending[..2 * chain_len], &mut resolved[..2 * chain_len]);

    for (i, server) in servers.iter().enumerate() {
        let eph_public = PublicKey::from_bytes(resolved[2 * i]);
        let shared = SharedSecret(resolved[2 * i + 1]);
        keys_out[i] = layer_key_from_shared(&shared, &eph_public, &server.public)
            .expect("freshly generated ephemeral key cannot be low-order")
            .0;
    }

    let mut start = 32 * chain_len;
    let mut content_len = payload_len;
    for i in (0..chain_len).rev() {
        let sealed = aead::seal_in_place(&keys_out[i], &nonce, &[], &mut buf[start..], content_len);
        buf[start - 32..start].copy_from_slice(&resolved[2 * i]);
        start -= 32;
        content_len = sealed + 32;
    }
}

/// The exact on-the-wire size of a request onion for a given inner payload
/// size and chain length.
#[must_use]
pub const fn wrapped_len(payload_len: usize, chain_len: usize) -> usize {
    payload_len + chain_len * LAYER_OVERHEAD
}

/// The size of a fully-wrapped reply for a given result payload size.
#[must_use]
pub const fn reply_len(payload_len: usize, chain_len: usize) -> usize {
    payload_len + chain_len * REPLY_LAYER_OVERHEAD
}

/// Server side: peels one onion layer.
///
/// Returns the layer key (to be kept for the reply path) and the inner
/// onion destined for the next server.
///
/// # Errors
///
/// * [`CryptoError::BadLength`] if the layer is too short to contain a key
///   and a tag.
/// * [`CryptoError::DegenerateSharedSecret`] for low-order ephemeral keys.
/// * [`CryptoError::DecryptFailed`] if authentication fails.
pub fn peel(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    layer: &[u8],
) -> Result<(LayerKey, Vec<u8>), CryptoError> {
    if layer.len() < LAYER_OVERHEAD {
        return Err(CryptoError::BadLength {
            expected: LAYER_OVERHEAD,
            got: layer.len(),
        });
    }
    let mut eph_bytes = [0u8; 32];
    eph_bytes.copy_from_slice(&layer[..32]);
    let eph_pk = PublicKey::from_bytes(eph_bytes);
    let key = derive_layer_key(server_secret, &eph_pk, &eph_pk, server_public)?;
    let nonce = round_nonce(round, Direction::Request);
    let inner = aead::open(&key.0, &nonce, &[], &layer[32..])?;
    Ok((key, inner))
}

/// Server side: peels one onion layer **in place**.
///
/// The layer occupies `slot[..width]`; on success the inner onion is
/// moved to `slot[..width - LAYER_OVERHEAD]` and the layer key is
/// returned. On failure the slot contents are unspecified but the same
/// length, and nothing was decrypted (authentication runs first).
///
/// Byte-identical results to [`peel`], which is kept as the allocating
/// reference.
///
/// # Errors
///
/// Same conditions as [`peel`].
pub fn peel_in_place(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    slot: &mut [u8],
    width: usize,
) -> Result<(LayerKey, usize), CryptoError> {
    if width < LAYER_OVERHEAD || slot.len() < width {
        return Err(CryptoError::BadLength {
            expected: LAYER_OVERHEAD,
            got: width.min(slot.len()),
        });
    }
    let mut eph_bytes = [0u8; 32];
    eph_bytes.copy_from_slice(&slot[..32]);
    let eph_pk = PublicKey::from_bytes(eph_bytes);
    let key = derive_layer_key(server_secret, &eph_pk, &eph_pk, server_public)?;
    let nonce = round_nonce(round, Direction::Request);
    let inner_len = aead::open_in_place(&key.0, &nonce, &[], &mut slot[32..], width - 32)?;
    // Slide the inner onion to the front of the slot so the next layer
    // starts at offset 0 again.
    slot.copy_within(32..32 + inner_len, 0);
    Ok((key, inner_len))
}

/// Which Montgomery-ladder implementation a chunk peel drives: the
/// production four-wide lockstep ladder, or the one-onion-at-a-time
/// scalar ladder kept as the equivalence/benchmark reference.
#[derive(Clone, Copy)]
enum LadderMode {
    /// Four onions per [`crate::fe4::Fe4`] ladder, scalar tail.
    Quad,
    /// One scalar ladder per onion (the pre-`Fe4` committed path).
    Scalar,
}

/// Server side: peels one layer of **every onion in a chunk of slots**,
/// in place. Slot `i` occupies `chunk[i * stride .. i * stride + width]`;
/// per slot the semantics — success, error classification, and every
/// output byte — are identical to calling [`peel_in_place`]. Two batch
/// optimisations stack on the hot path:
///
/// * the variable-base x25519 ladders step **four onions in lockstep**
///   over the limb-sliced [`crate::fe4::Fe4`] type (scalar ladder for
///   the `count % 4` tail), eliminating the per-add carry chains and
///   interleaving four multiplication dependency chains;
/// * each ladder's final field inversion is deferred and batched across
///   the whole chunk (Montgomery's trick, sub-batched at
///   [`crate::edwards`]'s resolver width): `n` slots pay one
///   `Fe::invert` (~250 squarings) plus `3(n−1)` multiplications
///   instead of `n` inversions.
///
/// This is the peel hot path's entry point: the worker pool hands each
/// worker a chunk of contiguous slots rather than one slot at a time.
/// [`peel_chunk_in_place_reference`] runs the same chunk protocol over
/// the scalar ladder and is held byte-identical by the equivalence
/// tests.
///
/// Returns one result per slot, in slot order.
pub fn peel_chunk_in_place(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    chunk: &mut [u8],
    stride: usize,
    width: usize,
) -> Vec<Result<(LayerKey, usize), CryptoError>> {
    peel_chunk_core(
        server_secret,
        server_public,
        round,
        chunk,
        stride,
        width,
        LadderMode::Quad,
    )
}

/// [`peel_chunk_in_place`] over the scalar (one-onion-at-a-time)
/// Montgomery ladder — the committed pre-`Fe4` peel path, kept so the
/// equivalence tests can hold the four-wide ladder to byte-identical
/// outputs and the round benchmarks can price the batching honestly.
pub fn peel_chunk_in_place_reference(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    chunk: &mut [u8],
    stride: usize,
    width: usize,
) -> Vec<Result<(LayerKey, usize), CryptoError>> {
    peel_chunk_core(
        server_secret,
        server_public,
        round,
        chunk,
        stride,
        width,
        LadderMode::Scalar,
    )
}

/// Shared chunk-peel engine behind both ladder modes.
#[allow(clippy::too_many_arguments)]
fn peel_chunk_core(
    server_secret: &SecretKey,
    server_public: &PublicKey,
    round: u64,
    chunk: &mut [u8],
    stride: usize,
    width: usize,
    mode: LadderMode,
) -> Vec<Result<(LayerKey, usize), CryptoError>> {
    assert!(stride > 0, "stride must be positive");
    let count = chunk.len().div_ceil(stride);
    let mut results: Vec<Result<(LayerKey, usize), CryptoError>> = Vec::with_capacity(count);
    let nonce = round_nonce(round, Direction::Request);

    const GROUP: usize = crate::edwards::MAX_RESOLVE_BATCH;
    const LANES: usize = crate::fe4::LANES;
    for group_start in (0..count).step_by(GROUP) {
        let group_len = (count - group_start).min(GROUP);

        // Pass 1: length checks, gathering the admitted slots' ephemeral
        // keys so their ladders can run four-wide.
        let mut pending = [crate::edwards::PendingU::PLACEHOLDER; GROUP];
        let mut eph = [[0u8; 32]; GROUP];
        let mut admitted = [false; GROUP];
        let mut admitted_idx = [0usize; GROUP];
        let mut admitted_len = 0usize;
        for j in 0..group_len {
            let start = (group_start + j) * stride;
            let slot_len = (chunk.len() - start).min(stride);
            if width < LAYER_OVERHEAD || slot_len < width {
                continue; // reported as BadLength below, like peel_in_place
            }
            eph[j].copy_from_slice(&chunk[start..start + 32]);
            admitted[j] = true;
            admitted_idx[admitted_len] = j;
            admitted_len += 1;
        }

        // The ladders, inversions still deferred. In quad mode full
        // quads run in lockstep (the per-onion scalar is the server's
        // one secret, so the lanes differ only in their base point);
        // the tail and the reference mode take the scalar ladder.
        let scalar_from = match mode {
            LadderMode::Scalar => 0,
            LadderMode::Quad => {
                let full = admitted_len / LANES * LANES;
                for quad in admitted_idx[..full].chunks_exact(LANES) {
                    let out = crate::x25519::x25519_pending_quad(
                        server_secret.as_bytes(),
                        [&eph[quad[0]], &eph[quad[1]], &eph[quad[2]], &eph[quad[3]]],
                    );
                    for (lane, p) in out.into_iter().enumerate() {
                        pending[quad[lane]] = p;
                    }
                }
                full
            }
        };
        for &j in &admitted_idx[scalar_from..admitted_len] {
            pending[j] = crate::x25519::x25519_pending(server_secret.as_bytes(), &eph[j]);
        }

        // One shared inversion for the whole group.
        let mut shared = [[0u8; 32]; GROUP];
        crate::x25519::resolve_pending_into(&pending[..group_len], &mut shared[..group_len]);

        // Pass 2: KDF + in-place AEAD open per admitted slot.
        for j in 0..group_len {
            let start = (group_start + j) * stride;
            let slot_len = (chunk.len() - start).min(stride);
            if !admitted[j] {
                results.push(Err(CryptoError::BadLength {
                    expected: LAYER_OVERHEAD,
                    got: width.min(slot_len),
                }));
                continue;
            }
            let eph_pk = PublicKey::from_bytes(eph[j]);
            let result = layer_key_from_shared(&SharedSecret(shared[j]), &eph_pk, server_public)
                .and_then(|key| {
                    let slot = &mut chunk[start..start + slot_len];
                    let inner_len =
                        aead::open_in_place(&key.0, &nonce, &[], &mut slot[32..], width - 32)?;
                    slot.copy_within(32..32 + inner_len, 0);
                    Ok((key, inner_len))
                });
            results.push(result);
        }
    }
    results
}

/// Server side: wraps a reply payload under a layer key captured by
/// [`peel`] on the request path.
#[must_use]
pub fn wrap_reply_layer(key: &LayerKey, round: u64, payload: &[u8]) -> Vec<u8> {
    let nonce = round_nonce(round, Direction::Reply);
    aead::seal(&key.0, &nonce, &[], payload)
}

/// Server side: wraps a reply layer **in place**. The payload occupies
/// `slot[..payload_len]`; the sealed reply overwrites
/// `slot[..payload_len + REPLY_LAYER_OVERHEAD]` and its length is
/// returned. Byte-identical to [`wrap_reply_layer`].
///
/// # Panics
///
/// Panics if the slot lacks [`REPLY_LAYER_OVERHEAD`] bytes of headroom —
/// reply buffers reserve the full chain's overhead up front.
pub fn wrap_reply_in_place(
    key: &LayerKey,
    round: u64,
    slot: &mut [u8],
    payload_len: usize,
) -> usize {
    let nonce = round_nonce(round, Direction::Reply);
    aead::seal_in_place(&key.0, &nonce, &[], slot, payload_len)
}

/// Client side: unwraps all reply layers (server 1's layer is outermost).
///
/// # Errors
///
/// [`CryptoError::DecryptFailed`] / [`CryptoError::BadLength`] if any layer
/// fails to authenticate.
pub fn unwrap_reply_layers(
    keys: &[LayerKey],
    round: u64,
    reply: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let nonce = round_nonce(round, Direction::Reply);
    let mut current = reply.to_vec();
    for key in keys {
        current = aead::open(&key.0, &nonce, &[], &current)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize, rng: &mut StdRng) -> Vec<Keypair> {
        (0..n).map(|_| Keypair::generate(rng)).collect()
    }

    #[test]
    fn wrap_peel_roundtrip_three_servers() {
        let mut rng = StdRng::seed_from_u64(1);
        let servers = chain(3, &mut rng);
        let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
        let payload = b"dead drop request".to_vec();

        let (mut onion, keys) = wrap(&mut rng, &pks, 42, &payload);
        assert_eq!(onion.len(), wrapped_len(payload.len(), 3));
        assert_eq!(keys.len(), 3);

        let mut server_keys = Vec::new();
        for kp in &servers {
            let (k, inner) = peel(&kp.secret, &kp.public, 42, &onion).expect("peel");
            server_keys.push(k);
            onion = inner;
        }
        assert_eq!(onion, payload);

        // Reply path: last server seals first, then back through the chain.
        let mut reply = b"dead drop result".to_vec();
        for k in server_keys.iter().rev() {
            reply = wrap_reply_layer(k, 42, &reply);
        }
        assert_eq!(reply.len(), reply_len(16, 3));
        let out = unwrap_reply_layers(&keys, 42, &reply).expect("unwrap replies");
        assert_eq!(out, b"dead drop result");
    }

    #[test]
    fn single_server_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let server = Keypair::generate(&mut rng);
        let (onion, keys) = wrap(&mut rng, &[server.public], 0, b"x");
        let (k, inner) = peel(&server.secret, &server.public, 0, &onion).expect("peel");
        assert_eq!(inner, b"x");
        let reply = wrap_reply_layer(&k, 0, b"y");
        assert_eq!(unwrap_reply_layers(&keys, 0, &reply).expect("reply"), b"y");
    }

    #[test]
    fn wrong_round_fails() {
        let mut rng = StdRng::seed_from_u64(3);
        let server = Keypair::generate(&mut rng);
        let (onion, _) = wrap(&mut rng, &[server.public], 7, b"payload");
        assert!(peel(&server.secret, &server.public, 8, &onion).is_err());
    }

    #[test]
    fn wrong_server_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Keypair::generate(&mut rng);
        let b = Keypair::generate(&mut rng);
        let (onion, _) = wrap(&mut rng, &[a.public], 7, b"payload");
        assert!(peel(&b.secret, &b.public, 7, &onion).is_err());
    }

    #[test]
    fn tampered_layer_fails() {
        let mut rng = StdRng::seed_from_u64(5);
        let server = Keypair::generate(&mut rng);
        let (mut onion, _) = wrap(&mut rng, &[server.public], 7, b"payload");
        let last = onion.len() - 1;
        onion[last] ^= 1;
        assert!(peel(&server.secret, &server.public, 7, &onion).is_err());
    }

    #[test]
    fn too_short_layer_is_bad_length() {
        let mut rng = StdRng::seed_from_u64(6);
        let server = Keypair::generate(&mut rng);
        let err = peel(&server.secret, &server.public, 0, &[0u8; 10]).unwrap_err();
        assert!(matches!(err, CryptoError::BadLength { .. }));
    }

    #[test]
    fn low_order_ephemeral_is_rejected_not_panicking() {
        let mut rng = StdRng::seed_from_u64(7);
        let server = Keypair::generate(&mut rng);
        // An attacker-crafted layer with an all-zero "ephemeral key".
        let mut forged = vec![0u8; LAYER_OVERHEAD + 8];
        forged[32..].fill(0xAB);
        let err = peel(&server.secret, &server.public, 0, &forged).unwrap_err();
        assert_eq!(err, CryptoError::DegenerateSharedSecret);
    }

    #[test]
    fn request_and_reply_nonces_differ() {
        assert_ne!(
            round_nonce(5, Direction::Request),
            round_nonce(5, Direction::Reply)
        );
        assert_ne!(
            round_nonce(5, Direction::Request),
            round_nonce(6, Direction::Request)
        );
    }

    #[test]
    fn wrap_into_matches_wrap_bytewise() {
        for chain_len in 1..=4usize {
            let mut rng = StdRng::seed_from_u64(100 + chain_len as u64);
            let servers = chain(chain_len, &mut rng);
            let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
            let payload = b"equivalence payload".to_vec();

            // Identical RNG states feed both paths.
            let mut rng_a = StdRng::seed_from_u64(7_000 + chain_len as u64);
            let mut rng_b = rng_a.clone();
            let (reference, ref_keys) = wrap(&mut rng_a, &pks, 9, &payload);

            let mut buf = vec![0u8; wrapped_len(payload.len(), chain_len)];
            buf[32 * chain_len..32 * chain_len + payload.len()].copy_from_slice(&payload);
            let keys = wrap_into(&mut rng_b, &pks, 9, &mut buf, payload.len());

            assert_eq!(buf, reference, "chain_len {chain_len}");
            assert_eq!(keys.len(), ref_keys.len());
            for (a, b) in keys.iter().zip(ref_keys.iter()) {
                assert_eq!(a.0, b.0);
            }
        }
    }

    #[test]
    fn wrap_into_with_tables_matches_wrap_bytewise() {
        for chain_len in 1..=3usize {
            let mut rng = StdRng::seed_from_u64(400 + chain_len as u64);
            let servers = chain(chain_len, &mut rng);
            let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
            let precomp: Vec<PrecomputedServer> =
                pks.iter().map(|pk| PrecomputedServer::new(*pk)).collect();
            let payload = b"table-accelerated".to_vec();

            let mut rng_a = StdRng::seed_from_u64(9_000 + chain_len as u64);
            let mut rng_b = rng_a.clone();
            let (reference, ref_keys) = wrap(&mut rng_a, &pks, 3, &payload);

            let mut buf = vec![0u8; wrapped_len(payload.len(), chain_len)];
            buf[32 * chain_len..32 * chain_len + payload.len()].copy_from_slice(&payload);
            let keys = wrap_into_with(&mut rng_b, &precomp, 3, &mut buf, payload.len());

            assert_eq!(buf, reference, "chain_len {chain_len}");
            for (a, b) in keys.iter().zip(ref_keys.iter()) {
                assert_eq!(a.0, b.0);
            }
        }
    }

    #[test]
    fn peel_in_place_matches_peel() {
        let mut rng = StdRng::seed_from_u64(31);
        let servers = chain(3, &mut rng);
        let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
        let (onion_bytes, _) = wrap(&mut rng, &pks, 4, b"roundtrip me");

        let mut flat = onion_bytes.clone();
        let mut reference = onion_bytes;
        let mut width = flat.len();
        for kp in &servers {
            let (ref_key, ref_inner) = peel(&kp.secret, &kp.public, 4, &reference).expect("peel");
            let (key, new_width) =
                peel_in_place(&kp.secret, &kp.public, 4, &mut flat, width).expect("peel_in_place");
            assert_eq!(key.0, ref_key.0);
            assert_eq!(new_width, ref_inner.len());
            assert_eq!(&flat[..new_width], &ref_inner[..]);
            width = new_width;
            reference = ref_inner;
        }
        assert_eq!(&flat[..width], b"roundtrip me");
    }

    #[test]
    fn peel_in_place_rejects_what_peel_rejects() {
        let mut rng = StdRng::seed_from_u64(32);
        let server = Keypair::generate(&mut rng);
        let (mut onion_bytes, _) = wrap(&mut rng, &[server.public], 7, b"payload");
        let width = onion_bytes.len();
        onion_bytes[width - 1] ^= 1;
        assert!(peel_in_place(&server.secret, &server.public, 7, &mut onion_bytes, width).is_err());
        let mut short = [0u8; 10];
        assert!(matches!(
            peel_in_place(&server.secret, &server.public, 0, &mut short, 10),
            Err(CryptoError::BadLength { .. })
        ));
    }

    #[test]
    fn wrap_reply_in_place_matches_wrap_reply_layer() {
        let mut rng = StdRng::seed_from_u64(33);
        let server = Keypair::generate(&mut rng);
        let (onion_bytes, _) = wrap(&mut rng, &[server.public], 2, b"req");
        let (key, _) = peel(&server.secret, &server.public, 2, &onion_bytes).expect("peel");

        let payload = b"reply body".to_vec();
        let reference = wrap_reply_layer(&key, 2, &payload);

        let mut slot = vec![0u8; payload.len() + REPLY_LAYER_OVERHEAD];
        slot[..payload.len()].copy_from_slice(&payload);
        let sealed = wrap_reply_in_place(&key, 2, &mut slot, payload.len());
        assert_eq!(&slot[..sealed], &reference[..]);
    }

    #[test]
    fn peel_chunk_matches_per_slot_peel() {
        // A chunk mixing valid onions, corrupted onions, and a forged
        // low-order ephemeral must classify and transform every slot
        // exactly like the per-slot path — across group boundaries (the
        // batch resolver's width is 32, so 70 slots span three groups).
        let mut rng = StdRng::seed_from_u64(90);
        let server = Keypair::generate(&mut rng);
        let (sample, _) = wrap(&mut rng, &[server.public], 6, b"chunk me");
        let width = sample.len();
        let stride = width + 8; // headroom, like a real round arena

        let count = 70;
        let mut chunk = vec![0u8; count * stride];
        let mut reference: Vec<Vec<u8>> = Vec::new();
        for i in 0..count {
            let onion = match i % 5 {
                // Forged all-zero ephemeral: degenerate shared secret.
                3 => vec![0u8; width],
                // Bit-flipped ciphertext: authentication failure.
                4 => {
                    let (mut o, _) = wrap(&mut rng, &[server.public], 6, b"chunk me");
                    o[40] ^= 1;
                    o
                }
                _ => wrap(&mut rng, &[server.public], 6, b"chunk me").0,
            };
            chunk[i * stride..i * stride + width].copy_from_slice(&onion);
            reference.push(onion);
        }

        let results =
            peel_chunk_in_place(&server.secret, &server.public, 6, &mut chunk, stride, width);
        assert_eq!(results.len(), count);
        for (i, result) in results.iter().enumerate() {
            let mut slot = reference[i].clone();
            let expected = peel_in_place(&server.secret, &server.public, 6, &mut slot, width);
            match (result, expected) {
                (Ok((key, len)), Ok((ref_key, ref_len))) => {
                    assert_eq!(key.0, ref_key.0, "slot {i} key");
                    assert_eq!(*len, ref_len, "slot {i} length");
                    assert_eq!(
                        &chunk[i * stride..i * stride + len],
                        &slot[..ref_len],
                        "slot {i} payload"
                    );
                }
                (Err(e), Err(ref_e)) => assert_eq!(*e, ref_e, "slot {i} error"),
                (got, want) => panic!("slot {i}: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn peel_chunk_small_sizes_match_per_slot() {
        // Chunks of 1–5 slots cover the empty-quad and 1–3-onion
        // scalar-tail paths of the 4-wide ladder; every slot must match
        // the per-slot reference bytewise, as must the scalar-ladder
        // chunk reference.
        let mut rng = StdRng::seed_from_u64(91);
        let server = Keypair::generate(&mut rng);
        for count in 1..=5usize {
            let (sample, _) = wrap(&mut rng, &[server.public], 11, b"tail case");
            let width = sample.len();
            let stride = width + 4;
            let mut chunk = vec![0u8; count * stride];
            let mut slots: Vec<Vec<u8>> = Vec::new();
            for i in 0..count {
                let (onion, _) = wrap(&mut rng, &[server.public], 11, b"tail case");
                chunk[i * stride..i * stride + width].copy_from_slice(&onion);
                slots.push(onion);
            }
            let mut chunk_ref = chunk.clone();

            let results = peel_chunk_in_place(
                &server.secret,
                &server.public,
                11,
                &mut chunk,
                stride,
                width,
            );
            let ref_results = peel_chunk_in_place_reference(
                &server.secret,
                &server.public,
                11,
                &mut chunk_ref,
                stride,
                width,
            );
            assert_eq!(results.len(), count, "count {count}");
            assert_eq!(chunk, chunk_ref, "count {count}: ladder modes diverged");
            for (i, (result, ref_result)) in results.iter().zip(&ref_results).enumerate() {
                let (key, len) = result.as_ref().expect("valid onion");
                let (ref_key, ref_len) = ref_result.as_ref().expect("valid onion");
                assert_eq!((key.0, len), (ref_key.0, ref_len), "count {count} slot {i}");
                let mut slot = slots[i].clone();
                let (want_key, want_len) =
                    peel_in_place(&server.secret, &server.public, 11, &mut slot, width)
                        .expect("per-slot");
                assert_eq!(key.0, want_key.0, "count {count} slot {i} key");
                assert_eq!(*len, want_len, "count {count} slot {i} len");
                assert_eq!(
                    &chunk[i * stride..i * stride + len],
                    &slot[..want_len],
                    "count {count} slot {i} payload"
                );
            }
        }
    }

    #[test]
    fn peel_chunk_all_low_order_batch() {
        // A whole chunk of forged low-order ephemerals (u = 0 and the
        // order-4 point u = 1): every ladder lane ends with z2 = 0, the
        // shared batch inversion must survive the inverse-of-zero edge
        // in all lanes at once, and every slot must be classified
        // DegenerateSharedSecret exactly like the per-slot path.
        let mut rng = StdRng::seed_from_u64(92);
        let server = Keypair::generate(&mut rng);
        let (sample, _) = wrap(&mut rng, &[server.public], 12, b"low order");
        let width = sample.len();
        let stride = width;
        for count in [1usize, 4, 5, 9] {
            let mut chunk = vec![0u8; count * stride];
            for i in 0..count {
                // Alternate the two low-order encodings; the rest of the
                // slot is arbitrary ciphertext bytes.
                chunk[i * stride + 32..(i + 1) * stride].fill(0xCD);
                if i % 2 == 1 {
                    chunk[i * stride] = 1;
                }
            }
            let results = peel_chunk_in_place(
                &server.secret,
                &server.public,
                12,
                &mut chunk,
                stride,
                width,
            );
            assert_eq!(results.len(), count);
            for (i, result) in results.iter().enumerate() {
                assert_eq!(
                    result.as_ref().unwrap_err(),
                    &CryptoError::DegenerateSharedSecret,
                    "count {count} slot {i}"
                );
            }
        }
    }

    #[test]
    fn onions_are_unlinkable_across_wraps() {
        // Same payload, same chain, two wraps: every byte of the onion
        // should differ (fresh ephemerals + pseudorandom ciphertexts).
        let mut rng = StdRng::seed_from_u64(8);
        let servers = chain(2, &mut rng);
        let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();
        let (a, _) = wrap(&mut rng, &pks, 1, b"same payload");
        let (b, _) = wrap(&mut rng, &pks, 1, b"same payload");
        assert_ne!(a, b);
    }
}
