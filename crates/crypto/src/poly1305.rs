//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with 26-bit limbs and 64-bit intermediates (the widely
//! deployed "donna-32" strategy), which is straightforward to verify
//! against the RFC arithmetic while staying allocation-free.

/// Poly1305 key length (r ‖ s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

const MASK_26: u32 = (1 << 26) - 1;

/// Incremental Poly1305 state.
///
/// Usable either one-shot via [`poly1305`] or incrementally via
/// [`Poly1305::update`] / [`Poly1305::finalize`], which is what the AEAD
/// construction needs (aad ‖ padding ‖ ciphertext ‖ padding ‖ lengths).
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialises the authenticator with a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Poly1305 {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        // Clamp r per RFC 8439 §2.5.
        let r = [
            le32(&key[0..4]) & 0x03ff_ffff,
            (le32(&key[3..7]) >> 2) & 0x03ff_ff03,
            (le32(&key[6..10]) >> 4) & 0x03ff_c0ff,
            (le32(&key[9..13]) >> 6) & 0x03f0_3fff,
            (le32(&key[12..16]) >> 8) & 0x000f_ffff,
        ];
        let s = [
            le32(&key[16..20]),
            le32(&key[20..24]),
            le32(&key[24..28]),
            le32(&key[28..32]),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs one 16-byte block. `hibit` is 1<<24 for full blocks and 0
    /// for the padded final partial block.
    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
        let h = &mut self.h;
        h[0] = h[0].wrapping_add(le32(&block[0..4]) & MASK_26);
        h[1] = h[1].wrapping_add((le32(&block[3..7]) >> 2) & MASK_26);
        h[2] = h[2].wrapping_add((le32(&block[6..10]) >> 4) & MASK_26);
        h[3] = h[3].wrapping_add((le32(&block[9..13]) >> 6) & MASK_26);
        h[4] = h[4].wrapping_add((le32(&block[12..16]) >> 8) | hibit);

        let r = &self.r;
        let s1 = r[1] * 5;
        let s2 = r[2] * 5;
        let s3 = r[3] * 5;
        let s4 = r[4] * 5;
        let m = |a: u32, b: u32| u64::from(a) * u64::from(b);

        let d0 = m(h[0], r[0]) + m(h[1], s4) + m(h[2], s3) + m(h[3], s2) + m(h[4], s1);
        let d1 = m(h[0], r[1]) + m(h[1], r[0]) + m(h[2], s4) + m(h[3], s3) + m(h[4], s2);
        let d2 = m(h[0], r[2]) + m(h[1], r[1]) + m(h[2], r[0]) + m(h[3], s4) + m(h[4], s3);
        let d3 = m(h[0], r[3]) + m(h[1], r[2]) + m(h[2], r[1]) + m(h[3], r[0]) + m(h[4], s4);
        let d4 = m(h[0], r[4]) + m(h[1], r[3]) + m(h[2], r[2]) + m(h[3], r[1]) + m(h[4], r[0]);

        let mut c: u64;
        c = d0 >> 26;
        h[0] = (d0 as u32) & MASK_26;
        let d1 = d1 + c;
        c = d1 >> 26;
        h[1] = (d1 as u32) & MASK_26;
        let d2 = d2 + c;
        c = d2 >> 26;
        h[2] = (d2 as u32) & MASK_26;
        let d3 = d3 + c;
        c = d3 >> 26;
        h[3] = (d3 as u32) & MASK_26;
        let d4 = d4 + c;
        c = d4 >> 26;
        h[4] = (d4 as u32) & MASK_26;
        h[0] = h[0].wrapping_add((c as u32) * 5);
        let c32 = h[0] >> 26;
        h[0] &= MASK_26;
        h[1] = h[1].wrapping_add(c32);
    }

    /// Feeds message bytes into the authenticator.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1 << 24);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1; // RFC padding byte for a partial block
            self.process_block(&block, 0);
        }

        let h = &mut self.h;
        // Fully carry h.
        let mut c: u32;
        c = h[1] >> 26;
        h[1] &= MASK_26;
        h[2] = h[2].wrapping_add(c);
        c = h[2] >> 26;
        h[2] &= MASK_26;
        h[3] = h[3].wrapping_add(c);
        c = h[3] >> 26;
        h[3] &= MASK_26;
        h[4] = h[4].wrapping_add(c);
        c = h[4] >> 26;
        h[4] &= MASK_26;
        h[0] = h[0].wrapping_add(c * 5);
        c = h[0] >> 26;
        h[0] &= MASK_26;
        h[1] = h[1].wrapping_add(c);

        // Compute g = h + 5 - 2^130 and select it iff h >= p.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..5 {
            let t = h[i].wrapping_add(carry);
            carry = t >> 26;
            g[i] = t & MASK_26;
        }
        // carry is the bit at 2^130; select g when it is 1.
        let mask = carry.wrapping_neg(); // all-ones iff h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Pack h into 128 bits and add s mod 2^128.
        let packed = [
            h[0] | (h[1] << 26),
            (h[1] >> 6) | (h[2] << 20),
            (h[2] >> 12) | (h[3] << 14),
            (h[3] >> 18) | (h[4] << 8),
        ];
        let mut tag = [0u8; TAG_LEN];
        let mut carry64 = 0u64;
        for i in 0..4 {
            let v = u64::from(packed[i]) + u64::from(self.s[i]) + carry64;
            tag[4 * i..4 * i + 4].copy_from_slice(&(v as u32).to_le_bytes());
            carry64 = v >> 32;
        }
        tag
    }
}

/// One-shot Poly1305: authenticates `data` under the one-time `key`.
#[must_use]
pub fn poly1305(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
    let mut st = Poly1305::new(key);
    st.update(data);
    st.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex"))
            .collect()
    }

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag_vector() {
        let key_bytes = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        let want = hex("a8061dc1305136c6c22b8baf0c0127a9");
        assert_eq!(&tag[..], &want[..]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x42u8; 32];
        let data: Vec<u8> = (0..255u8).collect();
        let oneshot = poly1305(&key, &data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 15, 16, 17, 31, 64] {
            let mut st = Poly1305::new(&key);
            for piece in data.chunks(chunk) {
                st.update(piece);
            }
            assert_eq!(st.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn empty_message() {
        let key = [9u8; 32];
        // Tag of empty message is just s (h stays 0).
        let tag = poly1305(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }

    #[test]
    fn tag_depends_on_message() {
        let key = [1u8; 32];
        assert_ne!(poly1305(&key, b"hello"), poly1305(&key, b"hellp"));
        assert_ne!(poly1305(&key, b"hello"), poly1305(&key, b"hello\0"));
    }

    /// Exercises the h >= p final-reduction branch.
    #[test]
    fn final_reduction_edge() {
        // r = 2 (0x02 survives clamping), s = 0. A full block of 0xff plus
        // the high bit is n = 2^128 + (2^128 - 1) = 2^129 - 1, so
        // h = 2n = 2^130 - 2 >= p, and h mod (2^130 - 5) = 3; the tag is
        // h + s = 3.
        let mut key = [0u8; 32];
        key[0] = 2;
        let tag = poly1305(&key, &[0xffu8; 16]);
        let mut want = [0u8; 16];
        want[0] = 0x03;
        assert_eq!(tag, want);
    }
}
