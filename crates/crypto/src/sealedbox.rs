//! Anonymous "sealed box" encryption for dialing invitations.
//!
//! A dialing invitation (paper §5.2) is "the sender's public key, a nonce,
//! and a MAC, all encrypted with the recipient's public key". We realise
//! this with an ephemeral-static X25519 exchange: the wire form is
//!
//! ```text
//! ┌────────────────────┬───────────────────────────────────┐
//! │ ephemeral pk (32B) │ ChaCha20-Poly1305(plaintext)+16B  │
//! └────────────────────┴───────────────────────────────────┘
//! ```
//!
//! giving exactly the paper's 48 bytes of overhead on top of the 32-byte
//! invitation payload (80-byte invitations, §8.1). Only the holder of the
//! recipient's secret key can even *detect* that an invitation is
//! addressed to them — trial decryption of a full dead drop is the
//! intended access pattern (§5.1).

use crate::aead;
use crate::hkdf::hkdf;
use crate::x25519::{Keypair, PublicKey, SecretKey};
use crate::CryptoError;
use rand::{CryptoRng, RngCore};

/// Bytes of overhead a sealed box adds to its plaintext.
pub const OVERHEAD: usize = 32 + aead::TAG_LEN;

const INFO: &[u8] = b"vuvuzela/sealedbox/v1";
/// Sealed boxes are one-shot (fresh ephemeral per box), so a fixed nonce is
/// safe.
const NONCE: [u8; aead::NONCE_LEN] = [0x5b; aead::NONCE_LEN];

fn derive_key(
    shared: &[u8; 32],
    eph_pk: &PublicKey,
    recipient_pk: &PublicKey,
) -> Result<[u8; 32], CryptoError> {
    if shared == &[0u8; 32] {
        return Err(CryptoError::DegenerateSharedSecret);
    }
    let mut salt = [0u8; 64];
    salt[..32].copy_from_slice(eph_pk.as_bytes());
    salt[32..].copy_from_slice(recipient_pk.as_bytes());
    Ok(hkdf(&salt, shared, INFO))
}

/// Seals `plaintext` so that only `recipient` can open it, leaving no
/// sender-identifying material on the wire.
pub fn seal<R: RngCore + CryptoRng>(
    rng: &mut R,
    recipient: &PublicKey,
    plaintext: &[u8],
) -> Vec<u8> {
    let eph = Keypair::generate(rng);
    let shared = eph.secret.diffie_hellman(recipient);
    let key = derive_key(&shared.0, &eph.public, recipient)
        .expect("fresh ephemeral key cannot produce a degenerate secret");
    let sealed = aead::seal(&key, &NONCE, &[], plaintext);
    let mut out = Vec::with_capacity(32 + sealed.len());
    out.extend_from_slice(eph.public.as_bytes());
    out.extend_from_slice(&sealed);
    out
}

/// Attempts to open a sealed box with the recipient's secret key.
///
/// # Errors
///
/// * [`CryptoError::BadLength`] when the box is shorter than [`OVERHEAD`].
/// * [`CryptoError::DecryptFailed`] when the box is not addressed to this
///   key (the common case during trial decryption) or was tampered with.
/// * [`CryptoError::DegenerateSharedSecret`] for malicious low-order
///   ephemerals.
pub fn open(
    recipient_secret: &SecretKey,
    recipient_public: &PublicKey,
    boxed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if boxed.len() < OVERHEAD {
        return Err(CryptoError::BadLength {
            expected: OVERHEAD,
            got: boxed.len(),
        });
    }
    let mut eph_bytes = [0u8; 32];
    eph_bytes.copy_from_slice(&boxed[..32]);
    let eph_pk = PublicKey::from_bytes(eph_bytes);
    let shared = recipient_secret.diffie_hellman(&eph_pk);
    let key = derive_key(&shared.0, &eph_pk, recipient_public)?;
    aead::open(&key, &NONCE, &[], &boxed[32..])
}

/// The sealed size of a plaintext of the given length.
#[must_use]
pub const fn sealed_len(plaintext_len: usize) -> usize {
    plaintext_len + OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let recipient = Keypair::generate(&mut rng);
        let boxed = seal(&mut rng, &recipient.public, b"call me maybe");
        assert_eq!(boxed.len(), sealed_len(13));
        let opened = open(&recipient.secret, &recipient.public, &boxed).expect("open");
        assert_eq!(opened, b"call me maybe");
    }

    #[test]
    fn paper_invitation_size_is_80_bytes() {
        // §8.1: "Invitations are 80 bytes long (including 48 bytes of
        // overhead)" — a 32-byte sender public key sealed in a box.
        assert_eq!(sealed_len(32), 80);
        assert_eq!(OVERHEAD, 48);
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = Keypair::generate(&mut rng);
        let eve = Keypair::generate(&mut rng);
        let boxed = seal(&mut rng, &alice.public, b"secret invite");
        assert_eq!(
            open(&eve.secret, &eve.public, &boxed),
            Err(CryptoError::DecryptFailed)
        );
    }

    #[test]
    fn trial_decryption_distinguishes_own_invitations() {
        let mut rng = StdRng::seed_from_u64(3);
        let me = Keypair::generate(&mut rng);
        let other = Keypair::generate(&mut rng);
        let drop_contents = [
            seal(&mut rng, &other.public, b"not for me"),
            seal(&mut rng, &me.public, b"for me!"),
            seal(&mut rng, &other.public, b"also not for me"),
        ];
        let mine: Vec<Vec<u8>> = drop_contents
            .iter()
            .filter_map(|b| open(&me.secret, &me.public, b).ok())
            .collect();
        assert_eq!(mine, vec![b"for me!".to_vec()]);
    }

    #[test]
    fn tampering_detected() {
        let mut rng = StdRng::seed_from_u64(4);
        let recipient = Keypair::generate(&mut rng);
        let mut boxed = seal(&mut rng, &recipient.public, b"payload");
        boxed[40] ^= 0xFF;
        assert!(open(&recipient.secret, &recipient.public, &boxed).is_err());
    }

    #[test]
    fn short_box_is_bad_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let recipient = Keypair::generate(&mut rng);
        let err = open(&recipient.secret, &recipient.public, &[0u8; 12]).unwrap_err();
        assert!(matches!(err, CryptoError::BadLength { .. }));
    }

    #[test]
    fn low_order_ephemeral_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let recipient = Keypair::generate(&mut rng);
        let forged = vec![0u8; OVERHEAD + 4];
        assert_eq!(
            open(&recipient.secret, &recipient.public, &forged),
            Err(CryptoError::DegenerateSharedSecret)
        );
    }

    #[test]
    fn boxes_are_unlinkable() {
        let mut rng = StdRng::seed_from_u64(7);
        let recipient = Keypair::generate(&mut rng);
        let a = seal(&mut rng, &recipient.public, b"same");
        let b = seal(&mut rng, &recipient.public, b"same");
        assert_ne!(a, b);
    }
}
