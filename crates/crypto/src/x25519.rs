//! X25519 Diffie-Hellman key exchange (RFC 7748).
//!
//! Vuvuzela performs one fresh X25519 exchange per onion layer per round
//! (paper Algorithm 1 step 2 and Algorithm 2 step 1) — this function
//! dominates server CPU time (paper §8.2), so its cost model is the basis
//! for the throughput/latency extrapolations in the benchmark harness.

use crate::fe4::{Fe4, LANES};
use crate::field::Fe;
use rand::{CryptoRng, RngCore};

/// The length in bytes of scalars, public keys and shared secrets.
pub const KEY_LEN: usize = 32;

/// The X25519 base point (u = 9).
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// A Curve25519 secret scalar.
///
/// Stored unclamped; clamping happens inside the ladder, per RFC 7748.
#[derive(Clone)]
pub struct SecretKey([u8; 32]);

/// A Curve25519 public key (Montgomery u-coordinate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

/// A 32-byte Diffie-Hellman shared secret.
///
/// Callers should pass this through a KDF ([`crate::hkdf`]) before using it
/// as a cipher key; [`crate::onion`] does so internally.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SharedSecret(pub [u8; 32]);

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SecretKey(..)") // never print key material
    }
}

impl core::fmt::Debug for SharedSecret {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SharedSecret(..)")
    }
}

impl core::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl SecretKey {
    /// Generates a fresh random secret key.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> SecretKey {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        SecretKey(bytes)
    }

    /// Builds a secret key from raw bytes (useful for tests and key
    /// derivation); the bytes are clamped when used.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> SecretKey {
        SecretKey(bytes)
    }

    /// The raw (unclamped) scalar bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Derives the corresponding public key: `X25519(sk, 9)`.
    ///
    /// Uses the fixed-base comb table ([`x25519_base`]) rather than the
    /// general ladder — keygen is the half of every onion layer's cost
    /// that *can* exploit a fixed base.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519_base(&self.0))
    }

    /// Computes the Diffie-Hellman shared secret with a peer public key.
    ///
    /// The all-zero output (low-order peer point) is *not* rejected here —
    /// Vuvuzela's onion layer rejects it at KDF time so the mixnet can still
    /// count the malformed request. See
    /// [`CryptoError::DegenerateSharedSecret`](crate::CryptoError).
    #[must_use]
    pub fn diffie_hellman(&self, peer: &PublicKey) -> SharedSecret {
        SharedSecret(x25519(&self.0, &peer.0))
    }
}

impl PublicKey {
    /// Builds a public key from its 32-byte u-coordinate encoding.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> PublicKey {
        PublicKey(bytes)
    }

    /// The raw u-coordinate bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A keypair convenience bundle.
#[derive(Clone, Debug)]
pub struct Keypair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

impl Keypair {
    /// Generates a fresh random keypair (comb-table keygen).
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Keypair {
        let secret = SecretKey::generate(rng);
        let public = secret.public_key();
        Keypair { secret, public }
    }

    /// Generates a keypair deriving the public key through the general
    /// Montgomery ladder instead of the fixed-base table. Bit-identical
    /// keys and identical RNG consumption; pre-refactor cost. Used by the
    /// reference onion path so benchmarks measure the seed
    /// implementation's real price.
    pub fn generate_reference<R: RngCore + CryptoRng>(rng: &mut R) -> Keypair {
        let secret = SecretKey::generate(rng);
        let public = PublicKey(x25519(&secret.0, &BASE_POINT));
        Keypair { secret, public }
    }
}

/// A precomputed Diffie-Hellman accelerator for one long-lived public
/// key: `DhTable::new(pk)` builds an Edwards comb table once, after which
/// [`DhTable::diffie_hellman`] computes `sk · pk` ~3–6× faster than the
/// ladder, bit-identically. Mix servers keep one per downstream server so
/// cover-traffic wrapping (a fresh ephemeral scalar against the same
/// server keys, thousands of times per round) runs at comb speed.
///
/// Construction returns `None` for u-coordinates on the curve's
/// quadratic twist (the Edwards form cannot represent them); callers fall
/// back to [`SecretKey::diffie_hellman`], which handles both.
pub struct DhTable {
    inner: crate::edwards::PointTable,
}

impl DhTable {
    /// Builds the table (≈1 ms; amortized over a key's lifetime).
    #[must_use]
    pub fn new(pk: &PublicKey) -> Option<DhTable> {
        crate::edwards::PointTable::new(&pk.0).map(|inner| DhTable { inner })
    }

    /// `sk · pk`, bit-identical to [`SecretKey::diffie_hellman`] with the
    /// key this table was built from.
    #[must_use]
    pub fn diffie_hellman(&self, sk: &SecretKey) -> SharedSecret {
        SharedSecret(self.inner.scalarmult_u(&clamp(sk.0)))
    }

    /// `sk · pk` with the final field inversion deferred, for batch
    /// resolution via [`resolve_pending`].
    pub(crate) fn diffie_hellman_pending(&self, sk: &SecretKey) -> crate::edwards::PendingU {
        self.inner.scalarmult_pending(&clamp(sk.0))
    }
}

/// `X25519(scalar, 9)` with the final field inversion deferred; resolve
/// with [`resolve_pending`]. Crate-internal: the onion wrapper batches
/// one onion's keygens and DHs into a single inversion.
pub(crate) fn x25519_base_pending(scalar: &[u8; 32]) -> crate::edwards::PendingU {
    crate::edwards::scalarmult_base_pending(&clamp(*scalar))
}

/// Resolves deferred scalar-multiplication results into `out` with one
/// shared field inversion (Montgomery's trick).
pub(crate) fn resolve_pending_into(pending: &[crate::edwards::PendingU], out: &mut [[u8; 32]]) {
    crate::edwards::resolve_batch_into(pending, out);
}

/// Clamps a scalar per RFC 7748 §5: clear the low 3 bits, clear bit 255,
/// set bit 254.
#[must_use]
fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Fixed-base X25519: computes `X25519(scalar, 9)` (public-key
/// derivation / ephemeral keygen) via the precomputed Edwards comb table
/// in [`crate::edwards`] — ~3× fewer field multiplications than running
/// the general [`x25519`] ladder against the base point. Bit-identical
/// results to `x25519(scalar, &BASE_POINT)`.
#[must_use]
pub fn x25519_base(scalar: &[u8; 32]) -> [u8; 32] {
    crate::edwards::scalarmult_base_u(&clamp(*scalar))
}

/// The X25519 function: scalar multiplication on the Montgomery curve,
/// implemented with the RFC 7748 ladder.
#[must_use]
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let pending = ladder(&clamp(*scalar), u);
    let mut out = [[0u8; 32]];
    resolve_pending_into(&[pending], &mut out);
    out[0]
}

/// `X25519(scalar, u)` with the ladder's final field inversion deferred;
/// resolve with [`resolve_pending_into`]. Crate-internal: the onion
/// peeler batches the inversion across a whole worker chunk of onions
/// (Montgomery's trick), shaving ~one `Fe::invert` per onion off the
/// peel hot path while producing bit-identical shared secrets.
pub(crate) fn x25519_pending(scalar: &[u8; 32], u: &[u8; 32]) -> crate::edwards::PendingU {
    ladder(&clamp(*scalar), u)
}

/// Four `X25519(scalar, u)` ladders in lockstep with every inversion
/// deferred; resolve with [`resolve_pending_into`]. Crate-internal: the
/// onion peeler runs each worker chunk's variable-base DHs through this
/// (the per-onion scalar is the server's one secret, so all four lanes
/// share `scalar`), then batches the final inversions across the whole
/// chunk. Byte-identical to four scalar [`x25519`] calls.
pub(crate) fn x25519_pending_quad(
    scalar: &[u8; 32],
    us: [&[u8; 32]; LANES],
) -> [crate::edwards::PendingU; LANES] {
    let k = clamp(*scalar);
    ladder4([&k; LANES], us)
}

/// Batched X25519: computes `X25519(scalars[i], us[i])` for parallel
/// slices of scalars and u-coordinates, stepping the Montgomery ladder
/// four-wide over [`crate::fe4::Fe4`] (scalar ladder for the `len % 4`
/// tail) and sharing the final field inversions across sub-batches of
/// [`crate::edwards::MAX_RESOLVE_BATCH`] via Montgomery's trick.
/// Bit-identical to calling [`x25519`] element-wise — low-order inputs
/// yield the all-zero output in their lane without disturbing the rest
/// of the batch.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn x25519_batch(scalars: &[[u8; 32]], us: &[[u8; 32]]) -> Vec<[u8; 32]> {
    assert_eq!(scalars.len(), us.len(), "parallel slices must match");
    let n = scalars.len();
    let mut pending = Vec::with_capacity(n);
    let mut quads = scalars.chunks_exact(LANES).zip(us.chunks_exact(LANES));
    for (ks, points) in &mut quads {
        let clamped: [[u8; 32]; LANES] = core::array::from_fn(|l| clamp(ks[l]));
        let out = ladder4(
            core::array::from_fn(|l| &clamped[l]),
            core::array::from_fn(|l| &points[l]),
        );
        pending.extend_from_slice(&out);
    }
    for (k, u) in scalars[n - n % LANES..].iter().zip(&us[n - n % LANES..]) {
        pending.push(ladder(&clamp(*k), u));
    }

    let mut out = vec![[0u8; 32]; n];
    for (pending_chunk, out_chunk) in pending
        .chunks(crate::edwards::MAX_RESOLVE_BATCH)
        .zip(out.chunks_mut(crate::edwards::MAX_RESOLVE_BATCH))
    {
        resolve_pending_into(pending_chunk, out_chunk);
    }
    out
}

/// The RFC 7748 Montgomery ladder stepped **four-wide**: one
/// [`Fe4`] operation per formula line advances four independent
/// `(scalar, u)` ladders at once. The arithmetic sequence per lane is
/// exactly [`ladder`]'s — same formulas, same swap schedule — but the
/// adds and subs between multiplications run carry-free under `Fe4`'s
/// lazy-reduction contract (see [`crate::fe4`]), and the four
/// multiplication chains interleave instead of serializing. Low-order
/// inputs leave `z2 = 0` in their lane, resolving to zero exactly like
/// the scalar path.
fn ladder4(ks: [&[u8; 32]; LANES], us: [&[u8; 32]; LANES]) -> [crate::edwards::PendingU; LANES] {
    /// One full ladder step: conditional swap plus the differential
    /// add-and-double formulas. Kept `inline(never)` deliberately — the
    /// nine field operations fuse inside this one medium-sized function
    /// (good scheduling, no 160-byte argument copies per op), while the
    /// 255-iteration loop stays a tight call site instead of a
    /// several-thousand-instruction body that overflows the µop cache.
    /// Measured on the 1-core bench box this shape beats both
    /// per-operation calls and full inlining into the loop.
    #[inline(never)]
    fn step(swap: &[u64; LANES], x1: &Fe4, x2: &mut Fe4, z2: &mut Fe4, x3: &mut Fe4, z3: &mut Fe4) {
        Fe4::cswap(swap, x2, x3);
        Fe4::cswap(swap, z2, z3);

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        *x3 = da.add(&cb).square();
        *z3 = x1.mul(&da.sub(&cb).square());
        *x2 = aa.mul(&bb);
        *z2 = e.mul(&e.mul_small_add(121_665, &aa));
    }

    let x1 = Fe4::from_fes(core::array::from_fn(|l| Fe::from_bytes(us[l])));

    let mut x2 = Fe4::splat(Fe::ONE);
    let mut z2 = Fe4::splat(Fe::ZERO);
    let mut x3 = x1;
    let mut z3 = Fe4::splat(Fe::ONE);
    let mut swap = [0u64; LANES];

    for t in (0..255).rev() {
        let mut k_t = [0u64; LANES];
        for (lane, k) in ks.iter().enumerate() {
            k_t[lane] = u64::from((k[t / 8] >> (t % 8)) & 1);
            swap[lane] ^= k_t[lane];
        }
        step(&swap, &x1, &mut x2, &mut z2, &mut x3, &mut z3);
        swap = k_t;
    }
    Fe4::cswap(&swap, &mut x2, &mut x3);
    Fe4::cswap(&swap, &mut z2, &mut z3);

    core::array::from_fn(|l| crate::edwards::PendingU::from_ratio(x2.lane(l), z2.lane(l)))
}

/// The raw RFC 7748 Montgomery ladder, stopping before the final
/// `x2 · z2⁻¹` inversion. A low-order input leaves `z2 = 0`, which the
/// batch resolver maps to the all-zero output exactly as
/// `Fe::invert(0) == 0` does on the immediate path.
fn ladder(k: &[u8; 32], u: &[u8; 32]) -> crate::edwards::PendingU {
    let x1 = Fe::from_bytes(u);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    crate::edwards::PendingU::from_ratio(x2, z2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex");
        }
        out
    }

    /// RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = hex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = hex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let want = hex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(&scalar, &u), want);
    }

    /// RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = hex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = hex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let want = hex32("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(x25519(&scalar, &u), want);
    }

    /// RFC 7748 §5.2 iterated ladder, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let k = BASE_POINT;
        let u = BASE_POINT;
        let want = hex32("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
        assert_eq!(x25519(&k, &u), want);
    }

    /// RFC 7748 §5.2 iterated ladder, 1000 iterations (slow-ish; still
    /// comfortably fast at opt-level >= 1).
    #[test]
    fn rfc7748_iterated_1000() {
        let mut k = BASE_POINT;
        let mut u = BASE_POINT;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        let want = hex32("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
        assert_eq!(k, want);
    }

    /// RFC 7748 §6.1 Diffie-Hellman test vectors (Alice/Bob).
    #[test]
    fn rfc7748_dh_alice_bob() {
        let alice_sk = SecretKey::from_bytes(hex32(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        ));
        let bob_sk = SecretKey::from_bytes(hex32(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        ));
        let alice_pk = alice_sk.public_key();
        let bob_pk = bob_sk.public_key();
        assert_eq!(
            alice_pk.0,
            hex32("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob_pk.0,
            hex32("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let k1 = alice_sk.diffie_hellman(&bob_pk);
        let k2 = bob_sk.diffie_hellman(&alice_pk);
        let want = hex32("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(k1.0, want);
        assert_eq!(k2.0, want);
    }

    #[test]
    fn dh_is_commutative_for_random_keys() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let a = Keypair::generate(&mut rng);
            let b = Keypair::generate(&mut rng);
            assert_eq!(
                a.secret.diffie_hellman(&b.public).0,
                b.secret.diffie_hellman(&a.public).0
            );
        }
    }

    #[test]
    fn low_order_point_yields_zero_secret() {
        let sk = SecretKey::from_bytes([0x42; 32]);
        let zero_point = PublicKey::from_bytes([0u8; 32]);
        assert_eq!(sk.diffie_hellman(&zero_point).0, [0u8; 32]);
    }

    #[test]
    fn batch_matches_scalar_across_sizes_and_tails() {
        // Sizes 1..=9 cover the empty-quad, exact-quad and 1–3-lane
        // scalar-tail paths; every output must equal the scalar ladder's.
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1usize..=9 {
            let mut scalars = vec![[0u8; 32]; n];
            let mut us = vec![[0u8; 32]; n];
            for i in 0..n {
                rng.fill_bytes(&mut scalars[i]);
                rng.fill_bytes(&mut us[i]);
            }
            let batch = x25519_batch(&scalars, &us);
            for i in 0..n {
                assert_eq!(batch[i], x25519(&scalars[i], &us[i]), "n {n} lane {i}");
            }
        }
        assert!(x25519_batch(&[], &[]).is_empty());
    }

    #[test]
    fn batch_lanes_carry_rfc7748_vectors() {
        // The two RFC 7748 §5.2 vectors placed in every lane position of
        // one quad, padded with random pairs.
        let s1 = hex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u1 = hex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let w1 = hex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        let s2 = hex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u2 = hex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let w2 = hex32("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        let mut rng = StdRng::seed_from_u64(12);
        for position in 0..4 {
            let mut scalars = vec![[0u8; 32]; 4];
            let mut us = vec![[0u8; 32]; 4];
            for i in 0..4 {
                rng.fill_bytes(&mut scalars[i]);
                rng.fill_bytes(&mut us[i]);
            }
            scalars[position] = s1;
            us[position] = u1;
            scalars[(position + 2) % 4] = s2;
            us[(position + 2) % 4] = u2;
            let batch = x25519_batch(&scalars, &us);
            assert_eq!(batch[position], w1, "vector 1 in lane {position}");
            assert_eq!(batch[(position + 2) % 4], w2, "vector 2 in lane {position}");
        }
    }

    #[test]
    fn batch_low_order_lanes_resolve_to_zero() {
        // Low-order u-coordinates (0 and 1) must produce the all-zero
        // secret in their lane — including an all-low-order quad, the
        // inverse-of-zero edge the shared batch inversion must survive —
        // without corrupting honest lanes.
        let mut rng = StdRng::seed_from_u64(13);
        let mut scalars = vec![[0u8; 32]; 6];
        let mut us = vec![[0u8; 32]; 6];
        for i in 0..6 {
            rng.fill_bytes(&mut scalars[i]);
            rng.fill_bytes(&mut us[i]);
        }
        us[1] = [0u8; 32]; // the identity
        us[3] = {
            let mut u = [0u8; 32];
            u[0] = 1; // order-4 point
            u
        };
        let batch = x25519_batch(&scalars, &us);
        for i in 0..6 {
            assert_eq!(batch[i], x25519(&scalars[i], &us[i]), "lane {i}");
        }
        assert_eq!(batch[1], [0u8; 32]);
        assert_eq!(batch[3], [0u8; 32]);

        let zeros = vec![[0u8; 32]; 4];
        let all_low = x25519_batch(&scalars[..4], &zeros);
        assert_eq!(all_low, vec![[0u8; 32]; 4], "all-low-order quad");
    }

    #[test]
    fn secret_key_debug_redacts() {
        let sk = SecretKey::from_bytes([0xAA; 32]);
        let dbg = format!("{sk:?}");
        assert!(!dbg.contains("aa"), "secret bytes must not leak via Debug");
    }
}
