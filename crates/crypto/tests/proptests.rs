//! Property-based tests for the field arithmetic and primitives.
//!
//! The 51-bit-limb field implementation is the foundation under every
//! onion layer; these properties (ring laws, canonical encoding,
//! inversion) would catch the classic carry/reduction bugs that
//! hand-rolled curve arithmetic is prone to.

use proptest::prelude::*;
use vuvuzela_crypto::fe4::Fe4;
use vuvuzela_crypto::field::Fe;
use vuvuzela_crypto::{chacha20, poly1305, sha256};

/// Strategy: arbitrary canonical field elements (from 32 bytes, top bit
/// masked by the decoder).
fn fe_strategy() -> impl Strategy<Value = Fe> {
    any::<[u8; 32]>().prop_map(|b| Fe::from_bytes(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn multiplication_commutes(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn addition_associates(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn multiplication_associates(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn multiplication_distributes(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_sub_cancel(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn square_matches_self_multiplication(a in fe_strategy()) {
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn inversion_roundtrips(a in fe_strategy()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
        prop_assert_eq!(a.invert().invert(), a);
    }

    #[test]
    fn encoding_is_canonical_fixed_point(a in fe_strategy()) {
        // to_bytes ∘ from_bytes is idempotent: encodings are canonical.
        let bytes = a.to_bytes();
        prop_assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
        // And canonical encodings are < p (top byte ≤ 0x7f trivially;
        // full check: re-decoding preserves equality).
        prop_assert_eq!(Fe::from_bytes(&bytes), a);
    }

    #[test]
    fn identities(a in fe_strategy()) {
        prop_assert_eq!(a.add(&Fe::ZERO), a);
        prop_assert_eq!(a.mul(&Fe::ONE), a);
        prop_assert_eq!(a.mul(&Fe::ZERO), Fe::ZERO);
        prop_assert_eq!(a.sub(&a), Fe::ZERO);
    }

    #[test]
    fn mul_small_is_repeated_addition(a in fe_strategy(), n in 0u32..50) {
        let mut sum = Fe::ZERO;
        for _ in 0..n {
            sum = sum.add(&a);
        }
        prop_assert_eq!(a.mul_small(n), sum);
    }

    /// Every `Fe4` lane operation must agree with four independent
    /// scalar `Fe` operations — the four-wide Montgomery ladder's
    /// correctness reduces to exactly this property.
    #[test]
    fn fe4_ops_match_four_scalar_ops(
        a0 in fe_strategy(), a1 in fe_strategy(), a2 in fe_strategy(), a3 in fe_strategy(),
        b0 in fe_strategy(), b1 in fe_strategy(), b2 in fe_strategy(), b3 in fe_strategy(),
        n in 0u32..200_000,
        swap_bits in 0u8..16,
    ) {
        let swap = [
            swap_bits & 1 != 0,
            swap_bits & 2 != 0,
            swap_bits & 4 != 0,
            swap_bits & 8 != 0,
        ];
        let a = [a0, a1, a2, a3];
        let b = [b0, b1, b2, b3];
        let va = Fe4::from_fes(a);
        let vb = Fe4::from_fes(b);
        for lane in 0..4 {
            prop_assert_eq!(va.lane(lane), a[lane], "from_fes/lane roundtrip");
            prop_assert_eq!(va.add(&vb).lane(lane), a[lane].add(&b[lane]), "add");
            prop_assert_eq!(va.sub(&vb).lane(lane), a[lane].sub(&b[lane]), "sub");
            prop_assert_eq!(va.mul(&vb).lane(lane), a[lane].mul(&b[lane]), "mul");
            prop_assert_eq!(va.square().lane(lane), a[lane].square(), "square");
            prop_assert_eq!(va.mul_small(n).lane(lane), a[lane].mul_small(n), "mul_small");
            prop_assert_eq!(
                va.mul_small_add(n, &vb).lane(lane),
                b[lane].add(&a[lane].mul_small(n)),
                "mul_small_add"
            );
            prop_assert_eq!(va.carry().lane(lane), a[lane], "carry");
        }
        // The ladder's composition shape: lazy add/sub straight into
        // mul/square, still exact lane-wise.
        let prod = va.add(&vb).mul(&va.sub(&vb));
        let sq = va.sub(&vb).square();
        for lane in 0..4 {
            prop_assert_eq!(
                prod.lane(lane),
                a[lane].add(&b[lane]).mul(&a[lane].sub(&b[lane])),
                "lazy add/sub feeding mul"
            );
            prop_assert_eq!(sq.lane(lane), a[lane].sub(&b[lane]).square(), "lazy sub feeding square");
        }
        // Per-lane conditional swap.
        let mut x = va;
        let mut y = vb;
        let masks = [
            u64::from(swap[0]), u64::from(swap[1]), u64::from(swap[2]), u64::from(swap[3]),
        ];
        Fe4::cswap(&masks, &mut x, &mut y);
        for lane in 0..4 {
            let (want_x, want_y) = if swap[lane] { (b[lane], a[lane]) } else { (a[lane], b[lane]) };
            prop_assert_eq!(x.lane(lane), want_x, "cswap x");
            prop_assert_eq!(y.lane(lane), want_y, "cswap y");
        }
    }

    /// The batched (4-wide + shared-inversion) X25519 must be
    /// bit-identical to the scalar ladder for arbitrary scalars and
    /// u-coordinates, at every batch size that exercises the quad and
    /// tail paths, including low-order points mixed into arbitrary
    /// lanes.
    #[test]
    fn x25519_batch_matches_scalar(
        seed in any::<u64>(),
        count in 1usize..10,
        low_order_lane in any::<Option<(u8, bool)>>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scalars = vec![[0u8; 32]; count];
        let mut us = vec![[0u8; 32]; count];
        for i in 0..count {
            rng.fill_bytes(&mut scalars[i]);
            rng.fill_bytes(&mut us[i]);
        }
        if let Some((lane, order4)) = low_order_lane {
            let lane = lane as usize % count;
            us[lane] = [0u8; 32];
            if order4 {
                us[lane][0] = 1;
            }
        }
        let batch = vuvuzela_crypto::x25519::x25519_batch(&scalars, &us);
        for i in 0..count {
            prop_assert_eq!(
                batch[i],
                vuvuzela_crypto::x25519::x25519(&scalars[i], &us[i]),
                "lane {} of {}", i, count
            );
        }
    }

    /// ChaCha20 is length-preserving XOR: double application is identity.
    #[test]
    fn chacha_is_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = data.clone();
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Poly1305 incremental equals one-shot for arbitrary chunkings.
    #[test]
    fn poly1305_chunking_invariant(
        key in any::<[u8; 32]>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        split in 0usize..200,
    ) {
        let oneshot = poly1305::poly1305(&key, &data);
        let cut = split.min(data.len());
        let mut st = poly1305::Poly1305::new(&key);
        st.update(&data[..cut]);
        st.update(&data[cut..]);
        prop_assert_eq!(st.finalize(), oneshot);
    }

    /// SHA-256 incremental equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let oneshot = sha256::sha256(&data);
        let cut = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }
}

mod in_place {
    //! The in-place AEAD/onion fast paths must be byte-identical to the
    //! allocating reference versions for arbitrary inputs — the round
    //! pipeline's correctness rests on this.

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::x25519::{Keypair, PublicKey};
    use vuvuzela_crypto::{aead, onion};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn seal_in_place_matches_seal(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..48),
            payload in proptest::collection::vec(any::<u8>(), 0..400),
        ) {
            let reference = aead::seal(&key, &nonce, &aad, &payload);
            let mut buf = vec![0u8; payload.len() + aead::TAG_LEN];
            buf[..payload.len()].copy_from_slice(&payload);
            let sealed = aead::seal_in_place(&key, &nonce, &aad, &mut buf, payload.len());
            prop_assert_eq!(sealed, reference.len());
            prop_assert_eq!(&buf[..sealed], &reference[..]);
        }

        #[test]
        fn open_in_place_matches_open(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..48),
            payload in proptest::collection::vec(any::<u8>(), 0..400),
            flip in any::<Option<(u16, u8)>>(),
        ) {
            let mut boxed = aead::seal(&key, &nonce, &aad, &payload);
            if let Some((byte, bit)) = flip {
                let i = byte as usize % boxed.len();
                boxed[i] ^= 1 << (bit % 8);
            }
            let reference = aead::open(&key, &nonce, &aad, &boxed);
            let mut buf = boxed.clone();
            let boxed_len = buf.len();
            match aead::open_in_place(&key, &nonce, &aad, &mut buf, boxed_len) {
                Ok(n) => {
                    let opened = reference.expect("reference agrees on success");
                    prop_assert_eq!(&buf[..n], &opened[..]);
                }
                Err(e) => {
                    prop_assert_eq!(reference.expect_err("reference agrees on failure"), e);
                    prop_assert_eq!(&buf, &boxed, "failed open must not mutate");
                }
            }
        }

        #[test]
        fn onion_wrap_into_and_peel_in_place_match_reference(
            chain_len in 1usize..=5,
            round in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            seed in any::<u64>(),
        ) {
            let mut key_rng = StdRng::seed_from_u64(seed);
            let servers: Vec<Keypair> =
                (0..chain_len).map(|_| Keypair::generate(&mut key_rng)).collect();
            let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();

            // Same RNG state for both wrap paths → identical onions.
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xABCD);
            let mut rng_b = rng_a.clone();
            let (reference, _) = onion::wrap(&mut rng_a, &pks, round, &payload);
            let mut flat = vec![0u8; onion::wrapped_len(payload.len(), chain_len)];
            flat[32 * chain_len..32 * chain_len + payload.len()].copy_from_slice(&payload);
            let _keys = onion::wrap_into(&mut rng_b, &pks, round, &mut flat, payload.len());
            prop_assert_eq!(&flat, &reference);

            // Peel both ways down the whole chain.
            let mut width = flat.len();
            let mut reference_onion = reference;
            for kp in &servers {
                let (ref_key, ref_inner) =
                    onion::peel(&kp.secret, &kp.public, round, &reference_onion).expect("peel");
                let (key, new_width) =
                    onion::peel_in_place(&kp.secret, &kp.public, round, &mut flat, width)
                        .expect("peel_in_place");
                prop_assert_eq!(key.0, ref_key.0);
                prop_assert_eq!(&flat[..new_width], &ref_inner[..]);
                width = new_width;
                reference_onion = ref_inner;
            }
            prop_assert_eq!(&flat[..width], &payload[..]);
        }

        /// The 4-wide-ladder chunk peel must classify and transform
        /// every slot exactly like the scalar-ladder chunk reference
        /// and the per-slot path, over arbitrary mixes of valid,
        /// corrupted, truncated and low-order slots — covering quad and
        /// tail lanes, group boundaries, and the shared inversion's
        /// zero-denominator edges.
        #[test]
        fn peel_chunk_batched_matches_scalar_reference(
            seed in any::<u64>(),
            count in 1usize..12,
            round in any::<u64>(),
            kinds in proptest::collection::vec(0u8..4, 12),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let server = Keypair::generate(&mut rng);
            let payload = b"proptest payload";
            let (sample, _) = onion::wrap(&mut rng, &[server.public], round, payload);
            let width = sample.len();
            let stride = width + 3;
            let mut chunk = vec![0u8; count * stride];
            let mut slots: Vec<Vec<u8>> = Vec::new();
            for i in 0..count {
                let mut onion_bytes = match kinds[i] {
                    // Forged low-order ephemeral (identity or order-4).
                    1 => {
                        let mut o = vec![0u8; width];
                        o[32..].fill(0x5A);
                        o[0] = u8::from(i % 2 == 0);
                        o
                    }
                    _ => onion::wrap(&mut rng, &[server.public], round, payload).0,
                };
                if kinds[i] == 2 {
                    // Bit-flip: authentication failure.
                    onion_bytes[34] ^= 1;
                }
                chunk[i * stride..i * stride + width].copy_from_slice(&onion_bytes);
                slots.push(onion_bytes);
            }
            let mut chunk_ref = chunk.clone();

            let results = onion::peel_chunk_in_place(
                &server.secret, &server.public, round, &mut chunk, stride, width);
            let ref_results = onion::peel_chunk_in_place_reference(
                &server.secret, &server.public, round, &mut chunk_ref, stride, width);

            prop_assert_eq!(results.len(), count);
            prop_assert_eq!(&chunk, &chunk_ref, "arena bytes diverged between ladder modes");
            for (i, (got, want)) in results.iter().zip(&ref_results).enumerate() {
                // Per-slot reference for ground truth.
                let mut slot = slots[i].clone();
                let per_slot = onion::peel_in_place(
                    &server.secret, &server.public, round, &mut slot, width);
                match (got, want, per_slot) {
                    (Ok((k1, l1)), Ok((k2, l2)), Ok((k3, l3))) => {
                        prop_assert_eq!(k1.0, k2.0, "slot {} key (modes)", i);
                        prop_assert_eq!(k1.0, k3.0, "slot {} key (per-slot)", i);
                        prop_assert_eq!((l1, l2), (&l3, &l3), "slot {} len", i);
                        prop_assert_eq!(
                            &chunk[i * stride..i * stride + l1],
                            &slot[..l3],
                            "slot {} payload", i
                        );
                    }
                    (Err(e1), Err(e2), Err(e3)) => {
                        prop_assert_eq!(e1, e2, "slot {} error (modes)", i);
                        prop_assert_eq!(e1, &e3, "slot {} error (per-slot)", i);
                    }
                    (g, w, p) => panic!("slot {i} disagreement: {g:?} vs {w:?} vs {p:?}"),
                }
            }
        }

        #[test]
        fn reply_wrap_in_place_matches_reference(
            round in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            key_bytes in any::<[u8; 32]>(),
        ) {
            let key = onion::LayerKey(key_bytes);
            let reference = onion::wrap_reply_layer(&key, round, &payload);
            let mut slot = vec![0u8; payload.len() + onion::REPLY_LAYER_OVERHEAD];
            slot[..payload.len()].copy_from_slice(&payload);
            let sealed = onion::wrap_reply_in_place(&key, round, &mut slot, payload.len());
            prop_assert_eq!(&slot[..sealed], &reference[..]);
        }
    }
}
