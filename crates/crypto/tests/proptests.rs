//! Property-based tests for the field arithmetic and primitives.
//!
//! The 51-bit-limb field implementation is the foundation under every
//! onion layer; these properties (ring laws, canonical encoding,
//! inversion) would catch the classic carry/reduction bugs that
//! hand-rolled curve arithmetic is prone to.

use proptest::prelude::*;
use vuvuzela_crypto::field::Fe;
use vuvuzela_crypto::{chacha20, poly1305, sha256};

/// Strategy: arbitrary canonical field elements (from 32 bytes, top bit
/// masked by the decoder).
fn fe_strategy() -> impl Strategy<Value = Fe> {
    any::<[u8; 32]>().prop_map(|b| Fe::from_bytes(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn multiplication_commutes(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn addition_associates(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn multiplication_associates(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn multiplication_distributes(a in fe_strategy(), b in fe_strategy(), c in fe_strategy()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_sub_cancel(a in fe_strategy(), b in fe_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn square_matches_self_multiplication(a in fe_strategy()) {
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn inversion_roundtrips(a in fe_strategy()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
        prop_assert_eq!(a.invert().invert(), a);
    }

    #[test]
    fn encoding_is_canonical_fixed_point(a in fe_strategy()) {
        // to_bytes ∘ from_bytes is idempotent: encodings are canonical.
        let bytes = a.to_bytes();
        prop_assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
        // And canonical encodings are < p (top byte ≤ 0x7f trivially;
        // full check: re-decoding preserves equality).
        prop_assert_eq!(Fe::from_bytes(&bytes), a);
    }

    #[test]
    fn identities(a in fe_strategy()) {
        prop_assert_eq!(a.add(&Fe::ZERO), a);
        prop_assert_eq!(a.mul(&Fe::ONE), a);
        prop_assert_eq!(a.mul(&Fe::ZERO), Fe::ZERO);
        prop_assert_eq!(a.sub(&a), Fe::ZERO);
    }

    #[test]
    fn mul_small_is_repeated_addition(a in fe_strategy(), n in 0u32..50) {
        let mut sum = Fe::ZERO;
        for _ in 0..n {
            sum = sum.add(&a);
        }
        prop_assert_eq!(a.mul_small(n), sum);
    }

    /// ChaCha20 is length-preserving XOR: double application is identity.
    #[test]
    fn chacha_is_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = data.clone();
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        chacha20::xor_stream(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Poly1305 incremental equals one-shot for arbitrary chunkings.
    #[test]
    fn poly1305_chunking_invariant(
        key in any::<[u8; 32]>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        split in 0usize..200,
    ) {
        let oneshot = poly1305::poly1305(&key, &data);
        let cut = split.min(data.len());
        let mut st = poly1305::Poly1305::new(&key);
        st.update(&data[..cut]);
        st.update(&data[cut..]);
        prop_assert_eq!(st.finalize(), oneshot);
    }

    /// SHA-256 incremental equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let oneshot = sha256::sha256(&data);
        let cut = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }
}

mod in_place {
    //! The in-place AEAD/onion fast paths must be byte-identical to the
    //! allocating reference versions for arbitrary inputs — the round
    //! pipeline's correctness rests on this.

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::x25519::{Keypair, PublicKey};
    use vuvuzela_crypto::{aead, onion};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn seal_in_place_matches_seal(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..48),
            payload in proptest::collection::vec(any::<u8>(), 0..400),
        ) {
            let reference = aead::seal(&key, &nonce, &aad, &payload);
            let mut buf = vec![0u8; payload.len() + aead::TAG_LEN];
            buf[..payload.len()].copy_from_slice(&payload);
            let sealed = aead::seal_in_place(&key, &nonce, &aad, &mut buf, payload.len());
            prop_assert_eq!(sealed, reference.len());
            prop_assert_eq!(&buf[..sealed], &reference[..]);
        }

        #[test]
        fn open_in_place_matches_open(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..48),
            payload in proptest::collection::vec(any::<u8>(), 0..400),
            flip in any::<Option<(u16, u8)>>(),
        ) {
            let mut boxed = aead::seal(&key, &nonce, &aad, &payload);
            if let Some((byte, bit)) = flip {
                let i = byte as usize % boxed.len();
                boxed[i] ^= 1 << (bit % 8);
            }
            let reference = aead::open(&key, &nonce, &aad, &boxed);
            let mut buf = boxed.clone();
            let boxed_len = buf.len();
            match aead::open_in_place(&key, &nonce, &aad, &mut buf, boxed_len) {
                Ok(n) => {
                    let opened = reference.expect("reference agrees on success");
                    prop_assert_eq!(&buf[..n], &opened[..]);
                }
                Err(e) => {
                    prop_assert_eq!(reference.expect_err("reference agrees on failure"), e);
                    prop_assert_eq!(&buf, &boxed, "failed open must not mutate");
                }
            }
        }

        #[test]
        fn onion_wrap_into_and_peel_in_place_match_reference(
            chain_len in 1usize..=5,
            round in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            seed in any::<u64>(),
        ) {
            let mut key_rng = StdRng::seed_from_u64(seed);
            let servers: Vec<Keypair> =
                (0..chain_len).map(|_| Keypair::generate(&mut key_rng)).collect();
            let pks: Vec<PublicKey> = servers.iter().map(|kp| kp.public).collect();

            // Same RNG state for both wrap paths → identical onions.
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xABCD);
            let mut rng_b = rng_a.clone();
            let (reference, _) = onion::wrap(&mut rng_a, &pks, round, &payload);
            let mut flat = vec![0u8; onion::wrapped_len(payload.len(), chain_len)];
            flat[32 * chain_len..32 * chain_len + payload.len()].copy_from_slice(&payload);
            let _keys = onion::wrap_into(&mut rng_b, &pks, round, &mut flat, payload.len());
            prop_assert_eq!(&flat, &reference);

            // Peel both ways down the whole chain.
            let mut width = flat.len();
            let mut reference_onion = reference;
            for kp in &servers {
                let (ref_key, ref_inner) =
                    onion::peel(&kp.secret, &kp.public, round, &reference_onion).expect("peel");
                let (key, new_width) =
                    onion::peel_in_place(&kp.secret, &kp.public, round, &mut flat, width)
                        .expect("peel_in_place");
                prop_assert_eq!(key.0, ref_key.0);
                prop_assert_eq!(&flat[..new_width], &ref_inner[..]);
                width = new_width;
                reference_onion = ref_inner;
            }
            prop_assert_eq!(&flat[..width], &payload[..]);
        }

        #[test]
        fn reply_wrap_in_place_matches_reference(
            round in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            key_bytes in any::<[u8; 32]>(),
        ) {
            let key = onion::LayerKey(key_bytes);
            let reference = onion::wrap_reply_layer(&key, round, &payload);
            let mut slot = vec![0u8; payload.len() + onion::REPLY_LAYER_OVERHEAD];
            slot[..payload.len()].copy_from_slice(&payload);
            let sealed = onion::wrap_reply_in_place(&key, round, &mut slot, payload.len());
            prop_assert_eq!(&slot[..sealed], &reference[..]);
        }
    }
}
