//! (ε, δ) accounting for Vuvuzela's observable variables (paper §6).
//!
//! One conversation round exposes two counts — `m1` (dead drops accessed
//! once) and `m2` (dead drops accessed twice). Changing one user's action
//! moves `m1` by at most 2 and `m2` by at most 1 (Figure 6), and the noise
//! added is `⌈max(0, Laplace(µ, b))⌉` on `m1` and
//! `⌈max(0, Laplace(µ/2, b/2))⌉` on `m2`, giving Theorem 1's per-round
//! guarantee. Dialing exposes per-drop invitation counts with sensitivity
//! 1 on at most two drops (§6.5). Theorem 2 composes either guarantee
//! adaptively over k rounds.

/// Which Vuvuzela sub-protocol a noise distribution protects. The two have
/// different sensitivities and hence different per-round (ε, δ) formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The conversation protocol (§4): observables m1, m2 with
    /// sensitivities 2 and 1.
    Conversation,
    /// The dialing protocol (§5): per-dead-drop invitation counts, two
    /// drops each changing by at most 1.
    Dialing,
}

/// The per-round differential-privacy guarantee of a noise configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundPrivacy {
    /// Per-round ε.
    pub epsilon: f64,
    /// Per-round δ.
    pub delta: f64,
}

/// A composed multi-round guarantee (ε′, δ′).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComposedPrivacy {
    /// ε′ over all k rounds.
    pub epsilon: f64,
    /// δ′ over all k rounds.
    pub delta: f64,
}

/// Lemma 3: adding `⌈max(0, Laplace(µ, b))⌉` to a single count with
/// sensitivity `t` is (t/b, ½·e^((t−µ)/b))-differentially private.
#[must_use]
pub fn lemma3(t: f64, mu: f64, b: f64) -> RoundPrivacy {
    RoundPrivacy {
        epsilon: t / b,
        delta: 0.5 * ((t - mu) / b).exp(),
    }
}

/// Theorem 1 (conversation protocol): noise (µ, b) on m1 and (µ/2, b/2)
/// on m2 gives ε = 4/b and δ = e^((2−µ)/b) per round.
#[must_use]
pub fn conversation_round(mu: f64, b: f64) -> RoundPrivacy {
    // Composition of Lemma 3 on m1 (t = 2, scale b) and m2 (t = 1,
    // scale b/2): ε = 2/b + 2/b, δ = ½e^((2−µ)/b) + ½e^((1−µ/2)/(b/2)).
    let m1 = lemma3(2.0, mu, b);
    let m2 = lemma3(1.0, mu / 2.0, b / 2.0);
    RoundPrivacy {
        epsilon: m1.epsilon + m2.epsilon,
        delta: m1.delta + m2.delta,
    }
}

/// §6.5 (dialing protocol): per-drop noise (µ, b) with two drops changing
/// by at most 1 gives ε = 2/b and δ = ½·e^((1−µ)/b) per round (as stated
/// in the paper).
#[must_use]
pub fn dialing_round(mu: f64, b: f64) -> RoundPrivacy {
    RoundPrivacy {
        epsilon: 2.0 / b,
        delta: 0.5 * ((1.0 - mu) / b).exp(),
    }
}

/// The per-round privacy of a (µ, b) noise configuration for a protocol.
#[must_use]
pub fn round_privacy(protocol: Protocol, mu: f64, b: f64) -> RoundPrivacy {
    match protocol {
        Protocol::Conversation => conversation_round(mu, b),
        Protocol::Dialing => dialing_round(mu, b),
    }
}

/// Equation 1 (§6.2): the (µ, b) needed for a *single round* at a target
/// (ε, δ): `b = 4/ε`, `µ = 2 − (4 ln δ)/ε`.
#[must_use]
pub fn conversation_params_for(epsilon: f64, delta: f64) -> (f64, f64) {
    let b = 4.0 / epsilon;
    let mu = 2.0 - 4.0 * delta.ln() / epsilon;
    (mu, b)
}

/// Basic (sequential) composition of two already-composed guarantees:
/// a mechanism running both protocols against the same user is
/// (ε′₁ + ε′₂, δ′₁ + δ′₂)-DP. This is how a whole transcript's budget —
/// conversation rounds Theorem-2-composed, dialing rounds Theorem-2-
/// composed, then the two protocols combined — is quoted as one (ε′, δ′)
/// pair for the attack gate.
#[must_use]
pub fn combine(a: ComposedPrivacy, b: ComposedPrivacy) -> ComposedPrivacy {
    ComposedPrivacy {
        epsilon: a.epsilon + b.epsilon,
        delta: a.delta + b.delta,
    }
}

/// Theorem 2: adaptive ("advanced") composition over `k` rounds.
///
/// `ε′ = √(2k·ln(1/d))·ε + k·ε·(e^ε − 1)` and `δ′ = k·δ + d`, for any free
/// parameter `d > 0` trading ε′ against δ′ (the paper uses d = 10⁻⁵).
///
/// # Panics
///
/// Panics if `d` is not in (0, 1).
#[must_use]
pub fn compose(round: RoundPrivacy, k: u64, d: f64) -> ComposedPrivacy {
    assert!(d > 0.0 && d < 1.0, "free parameter d must be in (0,1)");
    let k_f = k as f64;
    let eps = round.epsilon;
    ComposedPrivacy {
        epsilon: (2.0 * k_f * (1.0 / d).ln()).sqrt() * eps + k_f * eps * (eps.exp() - 1.0),
        delta: k_f * round.delta + d,
    }
}

/// A running privacy-loss account for one deployment: how many rounds of
/// each protocol have been observed, and the Theorem-2 composed (ε′, δ′)
/// spent so far on each.
///
/// The adaptive composition of Theorem 2 is strictly monotone in the
/// round count `k` (both ε′ and δ′ grow with every round), which makes
/// the ledger the reference a deployment-level invariant checker can
/// hold a simulator to: privacy loss only ever goes up, by exactly the
/// planner's per-round schedule, never resets, and never depends on how
/// rounds were interleaved or pipelined — only on how many ran.
#[derive(Clone, Debug)]
pub struct PrivacyLedger {
    conversation: LedgerSide,
    dialing: LedgerSide,
    /// Theorem 2's free parameter d.
    d: f64,
}

#[derive(Clone, Debug)]
struct LedgerSide {
    round: RoundPrivacy,
    rounds: u64,
}

impl PrivacyLedger {
    /// A fresh ledger for a deployment running the given per-round noise
    /// distributions (the same [`crate::laplace::NoiseDistribution`]s
    /// the servers draw cover traffic from), with Theorem 2's free
    /// parameter `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not in (0, 1) — the same contract as [`compose`].
    #[must_use]
    pub fn new(
        conversation: crate::laplace::NoiseDistribution,
        dialing: crate::laplace::NoiseDistribution,
        d: f64,
    ) -> PrivacyLedger {
        assert!(d > 0.0 && d < 1.0, "free parameter d must be in (0,1)");
        PrivacyLedger {
            conversation: LedgerSide {
                round: conversation_round(conversation.mu, conversation.b),
                rounds: 0,
            },
            dialing: LedgerSide {
                round: dialing_round(dialing.mu, dialing.b),
                rounds: 0,
            },
            d,
        }
    }

    fn side(&self, protocol: Protocol) -> &LedgerSide {
        match protocol {
            Protocol::Conversation => &self.conversation,
            Protocol::Dialing => &self.dialing,
        }
    }

    /// Charges one observed round of `protocol` and returns the new
    /// composed (ε′, δ′) for that protocol. Strictly greater than the
    /// previous charge in both components.
    pub fn charge(&mut self, protocol: Protocol) -> ComposedPrivacy {
        let side = match protocol {
            Protocol::Conversation => &mut self.conversation,
            Protocol::Dialing => &mut self.dialing,
        };
        side.rounds += 1;
        let (round, rounds) = (side.round, side.rounds);
        compose(round, rounds, self.d)
    }

    /// Rounds charged so far for `protocol`.
    #[must_use]
    pub fn rounds(&self, protocol: Protocol) -> u64 {
        self.side(protocol).rounds
    }

    /// The composed (ε′, δ′) spent so far on `protocol` — Theorem 2 at
    /// the charged round count (at k = 0 that is (0, d): the free
    /// parameter alone).
    #[must_use]
    pub fn spent(&self, protocol: Protocol) -> ComposedPrivacy {
        let side = self.side(protocol);
        compose(side.round, side.rounds, self.d)
    }

    /// The whole deployment's budget in one pair: both protocols'
    /// Theorem-2 spends, [`combine`]d by basic composition.
    #[must_use]
    pub fn total_spent(&self) -> ComposedPrivacy {
        combine(
            self.spent(Protocol::Conversation),
            self.spent(Protocol::Dialing),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = core::f64::consts::LN_2;

    #[test]
    fn theorem1_matches_closed_form() {
        // The text states ε = 4/b, δ = exp((2−µ)/b); our derivation sums
        // the two Lemma-3 mechanisms, which is algebraically identical.
        let p = conversation_round(300_000.0, 13_800.0);
        assert!((p.epsilon - 4.0 / 13_800.0).abs() < 1e-12);
        let want_delta = ((2.0_f64 - 300_000.0) / 13_800.0).exp();
        assert!((p.delta - want_delta).abs() / want_delta < 1e-9);
    }

    #[test]
    fn lemma3_scales_with_sensitivity() {
        let a = lemma3(1.0, 100.0, 10.0);
        let b = lemma3(2.0, 100.0, 10.0);
        assert!((b.epsilon - 2.0 * a.epsilon).abs() < 1e-12);
        assert!(b.delta > a.delta);
    }

    #[test]
    fn equation1_inverts_theorem1() {
        let (mu, b) = conversation_params_for(LN2, 1e-4);
        let p = conversation_round(mu, b);
        assert!((p.epsilon - LN2).abs() < 1e-9);
        assert!((p.delta - 1e-4).abs() / 1e-4 < 1e-6);
    }

    #[test]
    fn composition_grows_with_k() {
        let round = conversation_round(300_000.0, 13_800.0);
        let c1 = compose(round, 10_000, 1e-5);
        let c2 = compose(round, 100_000, 1e-5);
        assert!(c2.epsilon > c1.epsilon);
        assert!(c2.delta > c1.delta);
    }

    /// §6.4: (µ=300K, b=13800) supports ~250,000 rounds at ε′=ln 2,
    /// δ′=10⁻⁴ with d=10⁻⁵.
    #[test]
    fn paper_configuration_250k_rounds() {
        let round = conversation_round(300_000.0, 13_800.0);
        let c = compose(round, 250_000, 1e-5);
        assert!(
            (c.epsilon - LN2).abs() < 0.05,
            "ε′ at 250k rounds should be ≈ ln 2, got {}",
            c.epsilon
        );
        assert!(c.delta < 1.2e-4, "δ′ should be ≈ 1e-4, got {}", c.delta);
    }

    /// §6.4: µ=150K covers ≈70K rounds, µ=450K covers ≈500K rounds.
    #[test]
    fn paper_configurations_bracket() {
        let small = compose(conversation_round(150_000.0, 7_300.0), 70_000, 1e-5);
        assert!((small.epsilon - LN2).abs() < 0.06, "ε′ {}", small.epsilon);

        let large = compose(conversation_round(450_000.0, 20_000.0), 500_000, 1e-5);
        assert!((large.epsilon - LN2).abs() < 0.06, "ε′ {}", large.epsilon);
    }

    /// §6.5: dialing (µ=13000, b=770) covers ≈3,500 dialing rounds.
    /// (The paper prints "b=7700", an evident typo: it breaks the stated
    /// ε′=ln 2 coverage by 10×, while b=770 matches it and the µ-to-b
    /// ratio of the neighbouring configurations.)
    #[test]
    fn paper_dialing_configuration() {
        let c = compose(dialing_round(13_000.0, 770.0), 3_500, 1e-5);
        assert!(
            (c.epsilon - LN2).abs() < 0.1,
            "ε′ at 3.5k dialing rounds ≈ ln 2, got {}",
            c.epsilon
        );
        assert!(c.delta < 2e-4);
    }

    #[test]
    fn dialing_needs_roughly_half_the_noise() {
        // §6.5: "the number of noise messages is about half as large as in
        // conversations for a given ε′ and δ′". At equal (µ, b), dialing's
        // per-round ε is half of conversation's.
        let conv = conversation_round(10_000.0, 500.0);
        let dial = dialing_round(10_000.0, 500.0);
        assert!((conv.epsilon / dial.epsilon - 2.0).abs() < 1e-9);
    }

    #[test]
    fn delta_shrinks_exponentially_with_mu() {
        let a = conversation_round(10_000.0, 1_000.0);
        let b = conversation_round(20_000.0, 1_000.0);
        assert!(b.delta < a.delta * 1e-4);
    }

    #[test]
    #[should_panic(expected = "free parameter d")]
    fn compose_rejects_bad_d() {
        let _ = compose(conversation_round(100.0, 10.0), 10, 0.0);
    }

    #[test]
    fn ledger_is_strictly_monotone_and_matches_compose() {
        let mut ledger = PrivacyLedger::new(
            crate::laplace::NoiseDistribution::new(50.0, 10.0),
            crate::laplace::NoiseDistribution::new(10.0, 2.0),
            1e-5,
        );
        let mut last = ledger.spent(Protocol::Conversation);
        assert_eq!(last.epsilon, 0.0);
        for k in 1..=40u64 {
            let spent = ledger.charge(Protocol::Conversation);
            assert!(spent.epsilon > last.epsilon, "ε′ not monotone at k={k}");
            assert!(spent.delta > last.delta, "δ′ not monotone at k={k}");
            // The ledger is exactly Theorem 2 at the charged round count.
            let reference = compose(conversation_round(50.0, 10.0), k, 1e-5);
            assert_eq!(spent.epsilon, reference.epsilon);
            assert_eq!(spent.delta, reference.delta);
            assert_eq!(ledger.rounds(Protocol::Conversation), k);
            last = spent;
        }
        // The two protocols account independently.
        assert_eq!(ledger.rounds(Protocol::Dialing), 0);
        let dial = ledger.charge(Protocol::Dialing);
        assert_eq!(
            dial.epsilon,
            compose(dialing_round(10.0, 2.0), 1, 1e-5).epsilon
        );
        assert_eq!(ledger.rounds(Protocol::Conversation), 40);
        assert_eq!(ledger.spent(Protocol::Conversation).epsilon, last.epsilon);
    }

    #[test]
    fn total_spend_is_basic_composition_of_both_protocols() {
        let mut ledger = PrivacyLedger::new(
            crate::laplace::NoiseDistribution::new(50.0, 10.0),
            crate::laplace::NoiseDistribution::new(10.0, 2.0),
            1e-5,
        );
        for _ in 0..3 {
            ledger.charge(Protocol::Conversation);
        }
        ledger.charge(Protocol::Dialing);
        let conv = ledger.spent(Protocol::Conversation);
        let dial = ledger.spent(Protocol::Dialing);
        let total = ledger.total_spent();
        assert_eq!(total.epsilon, conv.epsilon + dial.epsilon);
        assert_eq!(total.delta, conv.delta + dial.delta);
        let combined = combine(conv, dial);
        assert_eq!(total.epsilon, combined.epsilon);
        assert_eq!(total.delta, combined.delta);
    }

    #[test]
    #[should_panic(expected = "free parameter d")]
    fn ledger_rejects_bad_d() {
        let _ = PrivacyLedger::new(
            crate::laplace::NoiseDistribution::new(50.0, 10.0),
            crate::laplace::NoiseDistribution::new(10.0, 2.0),
            1.0,
        );
    }
}
