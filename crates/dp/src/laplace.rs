//! Truncated Laplace noise sampling (paper Algorithm 2 step 2, §4.2, §5.3).
//!
//! Each Vuvuzela server samples noise counts from
//! `⌈max(0, Laplace(µ, b))⌉` — a Laplace distribution centred at µ with
//! scale b, capped below at zero (noise cannot be "subtracted"; this is
//! where the δ term of Theorem 1 comes from) and rounded up to a whole
//! number of cover requests.

use rand::Rng;

/// How servers turn a [`NoiseDistribution`] into concrete cover-traffic
/// counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseMode {
    /// Sample the truncated Laplace distribution (production behaviour).
    Sampled,
    /// Always emit exactly the mean µ. The paper's evaluation (§8.1) uses
    /// this "to not let noise affect the clarity of the graphs"; it has
    /// the same average cost with zero variance but provides no privacy.
    Deterministic,
    /// Emit no noise at all. Only for baselines and attack demonstrations.
    Off,
}

/// A Laplace(µ, b) distribution with the Vuvuzela truncation convention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseDistribution {
    /// Mean (location) of the underlying Laplace distribution — the
    /// average number of noise requests per round.
    pub mu: f64,
    /// Scale of the underlying Laplace distribution. The standard
    /// deviation is `√2·b`.
    pub b: f64,
}

impl NoiseDistribution {
    /// Creates a distribution, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or `b` is not strictly positive — both
    /// would void Theorem 1.
    #[must_use]
    pub fn new(mu: f64, b: f64) -> NoiseDistribution {
        assert!(mu >= 0.0, "noise mean must be non-negative, got {mu}");
        assert!(b > 0.0, "noise scale must be positive, got {b}");
        NoiseDistribution { mu, b }
    }

    /// Draws one raw (untruncated) Laplace sample via inverse-CDF.
    ///
    /// Total over the whole RNG range: a uniform draw of exactly 0
    /// makes `u = −1/2` and the log argument 0, which would produce a
    /// −∞ sample (and, mirrored, +∞ — a server emitting an *infinite*
    /// noise count). The argument is clamped to the smallest positive
    /// double first, capping the tails at `µ ± b·ln(2^−1074)` ≈
    /// `µ ± 744·b` — beyond ±700 standard deviations, so the clamp is
    /// statistically invisible while keeping every sample finite.
    fn sample_raw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in [-1/2, 1/2); x = µ − b·sgn(u)·ln(1 − 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        let tail = (1.0 - 2.0 * u.abs()).max(f64::from_bits(1)); // min subnormal
        self.mu - self.b * u.signum() * tail.ln()
    }

    /// Draws `⌈max(0, Laplace(µ, b))⌉` — a whole number of noise requests.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, mode: NoiseMode) -> u64 {
        match mode {
            NoiseMode::Off => 0,
            NoiseMode::Deterministic => self.mu.ceil() as u64,
            NoiseMode::Sampled => {
                let x = self.sample_raw(rng);
                if x <= 0.0 {
                    0
                } else {
                    x.ceil() as u64
                }
            }
        }
    }

    /// The distribution with the same total mass split over *pairs* of
    /// accesses: Algorithm 2 samples `n2 ~ Laplace(µ, b)` and emits
    /// `⌊n2/2⌋` pairs (the odd leftover is a singleton), so the *pair
    /// count* follows `Laplace(µ/2, b/2)` (this is the (µ/2, b/2)
    /// mechanism of Theorem 1).
    #[must_use]
    pub fn halved(&self) -> NoiseDistribution {
        NoiseDistribution {
            mu: self.mu / 2.0,
            b: self.b / 2.0,
        }
    }

    /// The standard deviation of the (untruncated) distribution, `√2·b`.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        core::f64::consts::SQRT_2 * self.b
    }

    /// The quantile (inverse CDF) of the *untruncated* Laplace(µ, b):
    /// `Q(p) = µ + b·ln(2p)` for `p < ½` and `Q(p) = µ − b·ln(2(1−p))`
    /// for `p ≥ ½`. This is the same closed form the sampler inverts,
    /// so `quantile` is what distributional test bounds must be pinned
    /// against.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs 0 < p < 1, got {p}");
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }

    /// The two-sided tail radius: the deviation `t` with
    /// `P(|X − µ| ≥ t) = p`, i.e. `t = b·ln(1/p)` (each Laplace tail
    /// holds `½·e^(−t/b)` of the mass). Equivalently
    /// `t = (std_dev()/√2)·ln(1/p)` — this is the knob the simulator's
    /// distributional invariants turn: a per-draw budget `p` buys a
    /// certified window `[µ − t, µ + t]` around the mean.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn tail_radius(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "tail_radius needs 0 < p < 1, got {p}");
        self.b * (1.0 / p).ln()
    }

    /// The inclusive `[lo, hi]` range a truncated-and-ceiled count
    /// (`⌈max(0, X)⌉`, exactly what [`NoiseDistribution::sample_count`]
    /// emits in [`NoiseMode::Sampled`]) stays in with per-draw failure
    /// probability at most `p`: the raw sample lies in
    /// `(µ − t, µ + t)` with `t = tail_radius(p)`, and `⌈max(0, ·)⌉` is
    /// monotone, so the count lies in
    /// `[⌈max(0, µ−t)⌉, ⌈max(0, µ+t)⌉]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn count_bounds(&self, p: f64) -> (u64, u64) {
        let t = self.tail_radius(p);
        let clamp_ceil = |x: f64| -> u64 {
            if x <= 0.0 {
                0
            } else {
                x.ceil() as u64
            }
        };
        (clamp_ceil(self.mu - t), clamp_ceil(self.mu + t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_mode_is_exact_mean() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(dist.sample_count(&mut rng, NoiseMode::Deterministic), 300);
        }
    }

    #[test]
    fn off_mode_is_zero() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(dist.sample_count(&mut rng, NoiseMode::Off), 0);
    }

    #[test]
    fn samples_are_nonnegative() {
        // µ = 0 forces heavy truncation; every sample must still be >= 0.
        let dist = NoiseDistribution::new(0.0, 50.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let _v: u64 = dist.sample_count(&mut rng, NoiseMode::Sampled);
            // u64 is non-negative by construction; the real assertion is
            // that sampling does not panic on the truncated branch.
        }
    }

    #[test]
    fn sample_mean_approximates_mu() {
        // With µ >> b the truncation at 0 is negligible, so the empirical
        // mean must be close to µ.
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled))
            .sum();
        let mean = sum as f64 / f64::from(n);
        assert!(
            (mean - 1000.0).abs() < 5.0,
            "empirical mean {mean} too far from 1000 (rounding-up bias < 1)"
        );
    }

    #[test]
    fn sample_spread_approximates_sqrt2_b() {
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        let want = dist.std_dev();
        let got = var.sqrt();
        assert!(
            (got - want).abs() / want < 0.1,
            "std dev {got} vs expected {want}"
        );
    }

    /// An RNG emitting a fixed word stream, for driving the sampler
    /// through adversarially chosen uniform draws.
    struct FixedRng {
        words: Vec<u64>,
        at: usize,
    }

    impl rand::RngCore for FixedRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.at % self.words.len()];
            self.at += 1;
            w
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn sampler_is_finite_on_adversarial_rng_streams() {
        // Regression: a uniform draw of exactly 0 (u = −1/2) used to
        // hit ln(0) and return −∞; the mirrored edge would be +∞ and
        // `x.ceil() as u64` of +∞ is u64::MAX noise requests. Pin the
        // raw sample finite (and the count sane) over the extreme and
        // near-extreme RNG outputs: all-zero words, all-ones words, and
        // the smallest/largest values the f64 mapping can produce.
        let dist = NoiseDistribution::new(300.0, 20.0);
        let cap = 300.0 + 745.0 * 20.0; // µ + |ln(min subnormal)|·b
        for words in [
            vec![0u64],
            vec![u64::MAX],
            vec![1u64 << 11], // smallest nonzero uniform
            vec![u64::MAX - (1 << 11)],
            vec![0, u64::MAX, 0, 1 << 11],
        ] {
            let mut rng = FixedRng { words, at: 0 };
            for _ in 0..32 {
                let x = dist.sample_raw(&mut rng);
                assert!(x.is_finite(), "raw sample must be finite, got {x}");
                assert!(x < cap, "raw sample {x} beyond the clamp cap");
                let n = dist.sample_count(&mut rng, NoiseMode::Sampled);
                assert!(n < cap.ceil() as u64 + 1, "count {n} out of range");
            }
        }
    }

    /// The closed-form Laplace CDF, written independently of the
    /// quantile implementation so the two pin each other.
    fn laplace_cdf(mu: f64, b: f64, x: f64) -> f64 {
        if x < mu {
            0.5 * ((x - mu) / b).exp()
        } else {
            1.0 - 0.5 * (-(x - mu) / b).exp()
        }
    }

    #[test]
    fn quantile_matches_closed_form_cdf() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        // Median is the mean; quartiles sit at µ ± b·ln 2 exactly.
        assert_eq!(dist.quantile(0.5), 300.0);
        assert!((dist.quantile(0.75) - (300.0 + 20.0 * 2f64.ln())).abs() < 1e-12);
        assert!((dist.quantile(0.25) - (300.0 - 20.0 * 2f64.ln())).abs() < 1e-12);
        // Round-trip through the independent CDF across both branches.
        for p in [1e-6, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-6] {
            let x = dist.quantile(p);
            assert!(
                (laplace_cdf(300.0, 20.0, x) - p).abs() < 1e-9,
                "CDF(Q({p})) diverged at {x}"
            );
        }
        // Symmetry about the mean.
        assert!((dist.quantile(0.9) - 300.0 - (300.0 - dist.quantile(0.1))).abs() < 1e-9);
    }

    #[test]
    fn tail_radius_matches_closed_form_tail_mass() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        for p in [1e-9, 1e-6, 0.01, 0.5] {
            let t = dist.tail_radius(p);
            // Two-sided mass beyond µ ± t is e^(−t/b): each side is an
            // upper/lower quantile at p/2.
            let upper = laplace_cdf(300.0, 20.0, 300.0 + t);
            let lower = laplace_cdf(300.0, 20.0, 300.0 - t);
            assert!(
                ((1.0 - upper) + lower - p).abs() < 1e-12,
                "tail mass at p = {p} diverged"
            );
            // `1 − p/2` loses ~half the bits of tiny p to cancellation
            // before the quantile's log sees it, so the extreme-tail
            // comparison gets a tolerance proportional to t.
            let tol = 1e-5 * (1.0 + t);
            assert!((dist.quantile(1.0 - p / 2.0) - (300.0 + t)).abs() < tol);
            assert!((dist.quantile(p / 2.0) - (300.0 - t)).abs() < 1e-9);
        }
        // Pinned value: b = 2, p = 0.05 → t = 2·ln 20.
        let d2 = NoiseDistribution::new(0.0, 2.0);
        assert!((d2.tail_radius(0.05) - 2.0 * 20f64.ln()).abs() < 1e-12);
        // Relation to std_dev: t = (σ/√2)·ln(1/p).
        assert!(
            (d2.tail_radius(0.01) - d2.std_dev() / core::f64::consts::SQRT_2 * 100f64.ln()).abs()
                < 1e-12
        );
    }

    #[test]
    fn count_bounds_contain_every_sample_at_their_budget() {
        let dist = NoiseDistribution::new(6.0, 0.5);
        let (lo, hi) = dist.count_bounds(1e-6);
        // t = 0.5·ln(1e6) ≈ 6.91: the lower edge truncates to 0.
        assert_eq!(lo, 0);
        assert_eq!(hi, (6.0 + 0.5 * 1e6f64.ln()).ceil() as u64);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let n = dist.sample_count(&mut rng, NoiseMode::Sampled);
            assert!(n >= lo && n <= hi, "sample {n} escaped [{lo}, {hi}]");
        }
        // A mean far from zero keeps a nonzero lower bound.
        let wide = NoiseDistribution::new(1000.0, 30.0);
        let (lo, hi) = wide.count_bounds(1e-3);
        assert!(lo > 0 && lo < 1000 && hi > 1000);
    }

    #[test]
    #[should_panic(expected = "quantile needs 0 < p < 1")]
    fn quantile_rejects_p_one() {
        let _ = NoiseDistribution::new(1.0, 1.0).quantile(1.0);
    }

    #[test]
    fn halved_distribution() {
        let dist = NoiseDistribution::new(300.0, 14.0);
        let half = dist.halved();
        assert_eq!(half.mu, 150.0);
        assert_eq!(half.b, 7.0);
    }

    #[test]
    #[should_panic(expected = "noise scale must be positive")]
    fn zero_scale_panics() {
        let _ = NoiseDistribution::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise mean must be non-negative")]
    fn negative_mean_panics() {
        let _ = NoiseDistribution::new(-1.0, 1.0);
    }
}
