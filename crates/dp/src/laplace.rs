//! Truncated Laplace noise sampling (paper Algorithm 2 step 2, §4.2, §5.3).
//!
//! Each Vuvuzela server samples noise counts from
//! `⌈max(0, Laplace(µ, b))⌉` — a Laplace distribution centred at µ with
//! scale b, capped below at zero (noise cannot be "subtracted"; this is
//! where the δ term of Theorem 1 comes from) and rounded up to a whole
//! number of cover requests.

use rand::Rng;

/// How servers turn a [`NoiseDistribution`] into concrete cover-traffic
/// counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseMode {
    /// Sample the truncated Laplace distribution (production behaviour).
    Sampled,
    /// Always emit exactly the mean µ. The paper's evaluation (§8.1) uses
    /// this "to not let noise affect the clarity of the graphs"; it has
    /// the same average cost with zero variance but provides no privacy.
    Deterministic,
    /// Emit no noise at all. Only for baselines and attack demonstrations.
    Off,
}

/// A Laplace(µ, b) distribution with the Vuvuzela truncation convention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseDistribution {
    /// Mean (location) of the underlying Laplace distribution — the
    /// average number of noise requests per round.
    pub mu: f64,
    /// Scale of the underlying Laplace distribution. The standard
    /// deviation is `√2·b`.
    pub b: f64,
}

impl NoiseDistribution {
    /// Creates a distribution, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or `b` is not strictly positive — both
    /// would void Theorem 1.
    #[must_use]
    pub fn new(mu: f64, b: f64) -> NoiseDistribution {
        assert!(mu >= 0.0, "noise mean must be non-negative, got {mu}");
        assert!(b > 0.0, "noise scale must be positive, got {b}");
        NoiseDistribution { mu, b }
    }

    /// Draws one raw (untruncated) Laplace sample via inverse-CDF.
    fn sample_raw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in [-1/2, 1/2); x = µ − b·sgn(u)·ln(1 − 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        self.mu - self.b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Draws `⌈max(0, Laplace(µ, b))⌉` — a whole number of noise requests.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, mode: NoiseMode) -> u64 {
        match mode {
            NoiseMode::Off => 0,
            NoiseMode::Deterministic => self.mu.ceil() as u64,
            NoiseMode::Sampled => {
                let x = self.sample_raw(rng);
                if x <= 0.0 {
                    0
                } else {
                    x.ceil() as u64
                }
            }
        }
    }

    /// The distribution with the same total mass split over *pairs* of
    /// accesses: Algorithm 2 samples `n2 ~ Laplace(µ, b)` and emits
    /// `⌈n2/2⌉` pairs, so the *pair count* follows `Laplace(µ/2, b/2)`
    /// (this is the (µ/2, b/2) mechanism of Theorem 1).
    #[must_use]
    pub fn halved(&self) -> NoiseDistribution {
        NoiseDistribution {
            mu: self.mu / 2.0,
            b: self.b / 2.0,
        }
    }

    /// The standard deviation of the (untruncated) distribution, `√2·b`.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        core::f64::consts::SQRT_2 * self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_mode_is_exact_mean() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(dist.sample_count(&mut rng, NoiseMode::Deterministic), 300);
        }
    }

    #[test]
    fn off_mode_is_zero() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(dist.sample_count(&mut rng, NoiseMode::Off), 0);
    }

    #[test]
    fn samples_are_nonnegative() {
        // µ = 0 forces heavy truncation; every sample must still be >= 0.
        let dist = NoiseDistribution::new(0.0, 50.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let _v: u64 = dist.sample_count(&mut rng, NoiseMode::Sampled);
            // u64 is non-negative by construction; the real assertion is
            // that sampling does not panic on the truncated branch.
        }
    }

    #[test]
    fn sample_mean_approximates_mu() {
        // With µ >> b the truncation at 0 is negligible, so the empirical
        // mean must be close to µ.
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled))
            .sum();
        let mean = sum as f64 / f64::from(n);
        assert!(
            (mean - 1000.0).abs() < 5.0,
            "empirical mean {mean} too far from 1000 (rounding-up bias < 1)"
        );
    }

    #[test]
    fn sample_spread_approximates_sqrt2_b() {
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        let want = dist.std_dev();
        let got = var.sqrt();
        assert!(
            (got - want).abs() / want < 0.1,
            "std dev {got} vs expected {want}"
        );
    }

    #[test]
    fn halved_distribution() {
        let dist = NoiseDistribution::new(300.0, 14.0);
        let half = dist.halved();
        assert_eq!(half.mu, 150.0);
        assert_eq!(half.b, 7.0);
    }

    #[test]
    #[should_panic(expected = "noise scale must be positive")]
    fn zero_scale_panics() {
        let _ = NoiseDistribution::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise mean must be non-negative")]
    fn negative_mean_panics() {
        let _ = NoiseDistribution::new(-1.0, 1.0);
    }
}
