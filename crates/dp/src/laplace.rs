//! Truncated Laplace noise sampling (paper Algorithm 2 step 2, §4.2, §5.3).
//!
//! Each Vuvuzela server samples noise counts from
//! `⌈max(0, Laplace(µ, b))⌉` — a Laplace distribution centred at µ with
//! scale b, capped below at zero (noise cannot be "subtracted"; this is
//! where the δ term of Theorem 1 comes from) and rounded up to a whole
//! number of cover requests.

use rand::Rng;

/// How servers turn a [`NoiseDistribution`] into concrete cover-traffic
/// counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseMode {
    /// Sample the truncated Laplace distribution (production behaviour).
    Sampled,
    /// Always emit exactly the mean µ. The paper's evaluation (§8.1) uses
    /// this "to not let noise affect the clarity of the graphs"; it has
    /// the same average cost with zero variance but provides no privacy.
    Deterministic,
    /// Emit no noise at all. Only for baselines and attack demonstrations.
    Off,
}

/// A Laplace(µ, b) distribution with the Vuvuzela truncation convention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseDistribution {
    /// Mean (location) of the underlying Laplace distribution — the
    /// average number of noise requests per round.
    pub mu: f64,
    /// Scale of the underlying Laplace distribution. The standard
    /// deviation is `√2·b`.
    pub b: f64,
}

impl NoiseDistribution {
    /// Creates a distribution, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is negative or `b` is not strictly positive — both
    /// would void Theorem 1.
    #[must_use]
    pub fn new(mu: f64, b: f64) -> NoiseDistribution {
        assert!(mu >= 0.0, "noise mean must be non-negative, got {mu}");
        assert!(b > 0.0, "noise scale must be positive, got {b}");
        NoiseDistribution { mu, b }
    }

    /// Draws one raw (untruncated) Laplace sample via inverse-CDF.
    ///
    /// Total over the whole RNG range: a uniform draw of exactly 0
    /// makes `u = −1/2` and the log argument 0, which would produce a
    /// −∞ sample (and, mirrored, +∞ — a server emitting an *infinite*
    /// noise count). The argument is clamped to the smallest positive
    /// double first, capping the tails at `µ ± b·ln(2^−1074)` ≈
    /// `µ ± 744·b` — beyond ±700 standard deviations, so the clamp is
    /// statistically invisible while keeping every sample finite.
    fn sample_raw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in [-1/2, 1/2); x = µ − b·sgn(u)·ln(1 − 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        let tail = (1.0 - 2.0 * u.abs()).max(f64::from_bits(1)); // min subnormal
        self.mu - self.b * u.signum() * tail.ln()
    }

    /// Draws `⌈max(0, Laplace(µ, b))⌉` — a whole number of noise requests.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, mode: NoiseMode) -> u64 {
        match mode {
            NoiseMode::Off => 0,
            NoiseMode::Deterministic => self.mu.ceil() as u64,
            NoiseMode::Sampled => {
                let x = self.sample_raw(rng);
                if x <= 0.0 {
                    0
                } else {
                    x.ceil() as u64
                }
            }
        }
    }

    /// The distribution with the same total mass split over *pairs* of
    /// accesses: Algorithm 2 samples `n2 ~ Laplace(µ, b)` and emits
    /// `⌈n2/2⌉` pairs, so the *pair count* follows `Laplace(µ/2, b/2)`
    /// (this is the (µ/2, b/2) mechanism of Theorem 1).
    #[must_use]
    pub fn halved(&self) -> NoiseDistribution {
        NoiseDistribution {
            mu: self.mu / 2.0,
            b: self.b / 2.0,
        }
    }

    /// The standard deviation of the (untruncated) distribution, `√2·b`.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        core::f64::consts::SQRT_2 * self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_mode_is_exact_mean() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(dist.sample_count(&mut rng, NoiseMode::Deterministic), 300);
        }
    }

    #[test]
    fn off_mode_is_zero() {
        let dist = NoiseDistribution::new(300.0, 20.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(dist.sample_count(&mut rng, NoiseMode::Off), 0);
    }

    #[test]
    fn samples_are_nonnegative() {
        // µ = 0 forces heavy truncation; every sample must still be >= 0.
        let dist = NoiseDistribution::new(0.0, 50.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let _v: u64 = dist.sample_count(&mut rng, NoiseMode::Sampled);
            // u64 is non-negative by construction; the real assertion is
            // that sampling does not panic on the truncated branch.
        }
    }

    #[test]
    fn sample_mean_approximates_mu() {
        // With µ >> b the truncation at 0 is negligible, so the empirical
        // mean must be close to µ.
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled))
            .sum();
        let mean = sum as f64 / f64::from(n);
        assert!(
            (mean - 1000.0).abs() < 5.0,
            "empirical mean {mean} too far from 1000 (rounding-up bias < 1)"
        );
    }

    #[test]
    fn sample_spread_approximates_sqrt2_b() {
        let dist = NoiseDistribution::new(1000.0, 30.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| dist.sample_count(&mut rng, NoiseMode::Sampled) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        let want = dist.std_dev();
        let got = var.sqrt();
        assert!(
            (got - want).abs() / want < 0.1,
            "std dev {got} vs expected {want}"
        );
    }

    /// An RNG emitting a fixed word stream, for driving the sampler
    /// through adversarially chosen uniform draws.
    struct FixedRng {
        words: Vec<u64>,
        at: usize,
    }

    impl rand::RngCore for FixedRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.at % self.words.len()];
            self.at += 1;
            w
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn sampler_is_finite_on_adversarial_rng_streams() {
        // Regression: a uniform draw of exactly 0 (u = −1/2) used to
        // hit ln(0) and return −∞; the mirrored edge would be +∞ and
        // `x.ceil() as u64` of +∞ is u64::MAX noise requests. Pin the
        // raw sample finite (and the count sane) over the extreme and
        // near-extreme RNG outputs: all-zero words, all-ones words, and
        // the smallest/largest values the f64 mapping can produce.
        let dist = NoiseDistribution::new(300.0, 20.0);
        let cap = 300.0 + 745.0 * 20.0; // µ + |ln(min subnormal)|·b
        for words in [
            vec![0u64],
            vec![u64::MAX],
            vec![1u64 << 11], // smallest nonzero uniform
            vec![u64::MAX - (1 << 11)],
            vec![0, u64::MAX, 0, 1 << 11],
        ] {
            let mut rng = FixedRng { words, at: 0 };
            for _ in 0..32 {
                let x = dist.sample_raw(&mut rng);
                assert!(x.is_finite(), "raw sample must be finite, got {x}");
                assert!(x < cap, "raw sample {x} beyond the clamp cap");
                let n = dist.sample_count(&mut rng, NoiseMode::Sampled);
                assert!(n < cap.ceil() as u64 + 1, "count {n} out of range");
            }
        }
    }

    #[test]
    fn halved_distribution() {
        let dist = NoiseDistribution::new(300.0, 14.0);
        let half = dist.halved();
        assert_eq!(half.mu, 150.0);
        assert_eq!(half.b, 7.0);
    }

    #[test]
    #[should_panic(expected = "noise scale must be positive")]
    fn zero_scale_panics() {
        let _ = NoiseDistribution::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise mean must be non-negative")]
    fn negative_mean_panics() {
        let _ = NoiseDistribution::new(-1.0, 1.0);
    }
}
