//! Differential-privacy machinery for Vuvuzela (paper §6).
//!
//! Vuvuzela's privacy argument has three moving parts, each a module here:
//!
//! * [`laplace`] — the noise mechanism itself: `⌈max(0, Laplace(µ, b))⌉`
//!   samples that servers turn into cover traffic (Algorithm 2 step 2).
//! * [`accounting`] — closed-form (ε, δ) for one round (Theorem 1 /
//!   Lemma 3 for conversations, §6.5 for dialing) and advanced composition
//!   across k rounds (Theorem 2, after Dwork–Roth Thm 3.20).
//! * [`planner`] — the inverse problem: given a target (ε′, δ′) and a noise
//!   mean µ, find the scale b that protects the most rounds (the parameter
//!   sweep of §6.4), plus the Bayesian-posterior interpretation used in the
//!   paper's examples.
//!
//! The figure-series generators for the paper's Figures 7 and 8 live in
//! [`planner::privacy_series`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod laplace;
pub mod planner;

pub use accounting::{combine, compose, ComposedPrivacy, PrivacyLedger, Protocol, RoundPrivacy};
pub use laplace::{NoiseDistribution, NoiseMode};
pub use planner::{
    expected_noise_requests, max_protected_rounds, posterior_bound, tune_scale, PrivacyTarget,
};
