//! The noise planner: choosing (µ, b) for a target multi-round guarantee
//! (paper §6.4), and generating the privacy-vs-rounds series behind
//! Figures 7 and 8.

use crate::accounting::{compose, round_privacy, ComposedPrivacy, Protocol};

/// A multi-round privacy target (ε′, δ′) with the composition free
/// parameter d.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyTarget {
    /// Target ε′ after composition. The paper's standard is ln 2.
    pub epsilon: f64,
    /// Target δ′ after composition. The paper's standard is 10⁻⁴.
    pub delta: f64,
    /// Theorem 2's free parameter d (paper: 10⁻⁵).
    pub d: f64,
}

impl Default for PrivacyTarget {
    /// The paper's canonical target: ε′ = ln 2, δ′ = 10⁻⁴, d = 10⁻⁵.
    fn default() -> Self {
        PrivacyTarget {
            epsilon: core::f64::consts::LN_2,
            delta: 1e-4,
            d: 1e-5,
        }
    }
}

/// The largest number of rounds k for which noise (µ, b) still meets the
/// target, found by binary search (both ε′ and δ′ are monotone in k).
///
/// Returns 0 if even a single round violates the target.
#[must_use]
pub fn max_protected_rounds(protocol: Protocol, mu: f64, b: f64, target: PrivacyTarget) -> u64 {
    let round = round_privacy(protocol, mu, b);
    let meets = |k: u64| -> bool {
        if k == 0 {
            return true;
        }
        let c = compose(round, k, target.d);
        c.epsilon <= target.epsilon && c.delta <= target.delta
    };
    if !meets(1) {
        return 0;
    }
    // Exponential probe then binary search.
    let mut hi = 1u64;
    while meets(hi) && hi < (1 << 40) {
        hi <<= 1;
    }
    let mut lo = hi >> 1;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Result of a scale sweep: the best b for a given µ and the number of
/// rounds it protects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedScale {
    /// The chosen Laplace scale.
    pub b: f64,
    /// Rounds protected at the target with this (µ, b).
    pub rounds: u64,
}

/// §6.4's parameter sweep: for a fixed mean µ, pick the scale b that
/// maximises the number of protected rounds at the target.
///
/// Larger b improves per-round ε (more smearing) but worsens δ
/// (footnote 10: "δ′ grows with b and ε′ falls with it"), so the optimum
/// is interior; we sweep a geometric grid and refine linearly.
#[must_use]
pub fn tune_scale(protocol: Protocol, mu: f64, target: PrivacyTarget) -> TunedScale {
    let mut best = TunedScale { b: 1.0, rounds: 0 };
    // Geometric coarse sweep: b from µ/1000 to µ.
    let mut b = (mu / 1000.0).max(1.0);
    while b <= mu {
        let rounds = max_protected_rounds(protocol, mu, b, target);
        if rounds > best.rounds {
            best = TunedScale { b, rounds };
        }
        b *= 1.1;
    }
    // Linear refinement around the winner.
    let lo = best.b / 1.1;
    let hi = best.b * 1.1;
    let steps = 40;
    for i in 0..=steps {
        let b = lo + (hi - lo) * f64::from(i) / f64::from(steps);
        let rounds = max_protected_rounds(protocol, mu, b, target);
        if rounds > best.rounds {
            best = TunedScale { b, rounds };
        }
    }
    best
}

/// One point of a Figure 7 / Figure 8 privacy curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyPoint {
    /// Number of composed rounds.
    pub k: u64,
    /// e^ε′ (the paper plots e^ε′ "to let the reader easily see the level
    /// of deniability").
    pub e_epsilon: f64,
    /// δ′.
    pub delta: f64,
}

/// Generates the (k, e^ε′, δ′) series for one noise configuration — the
/// data behind Figures 7 (conversation) and 8 (dialing).
#[must_use]
pub fn privacy_series(
    protocol: Protocol,
    mu: f64,
    b: f64,
    ks: &[u64],
    d: f64,
) -> Vec<PrivacyPoint> {
    let round = round_privacy(protocol, mu, b);
    ks.iter()
        .map(|&k| {
            let ComposedPrivacy { epsilon, delta } = compose(round, k, d);
            PrivacyPoint {
                k,
                e_epsilon: epsilon.exp(),
                delta,
            }
        })
        .collect()
}

/// Per-round-type noise budget: the expected number of cover requests
/// **one** noising server injects into a round of the given protocol.
///
/// Conversation servers draw `n1, n2 ~ Laplace(µ, b)` and emit `n1`
/// singles plus `n2` paired accesses (Algorithm 2 step 2), ≈ `2µ`
/// requests; dialing servers draw `Laplace(µ, b)` noise invitations *per
/// real drop* (§5.3), ≈ `µ·m`. This is the lookup a mixed-round
/// scheduler prices rounds with: at the paper's parameters a dialing
/// round (µ = 13,000 per drop) is far heavier than its client batch
/// alone suggests, so its admission weight must reflect the noise
/// budget, not just the request count.
#[must_use]
pub fn expected_noise_requests(protocol: Protocol, mu: f64, num_drops: u32) -> f64 {
    match protocol {
        Protocol::Conversation => 2.0 * mu,
        Protocol::Dialing => mu * f64::from(num_drops),
    }
}

/// §5.4's invitation-drop count optimization: `m = n·f/µ`.
///
/// With `n` users of which a fraction `f` send real invitations per
/// dialing round and per-drop noise mean `µ` (per server), choosing
/// `m = n·f/µ` makes each drop hold roughly equal parts real and noise
/// invitations, so "the overall processing load on the servers is only
/// 2× the load of the real invitations" while each client downloads just
/// one drop's worth. `m` is "purely an optimization: regardless of m,
/// each user is protected by the level of noise, µ".
///
/// Returns at least 1 (a dialing round always has one real drop).
#[must_use]
pub fn optimal_num_drops(users: u64, dial_fraction: f64, mu: f64) -> u32 {
    assert!((0.0..=1.0).contains(&dial_fraction), "fraction in [0,1]");
    assert!(mu > 0.0, "noise mean must be positive");
    let m = (users as f64 * dial_fraction / mu).round();
    m.max(1.0).min(f64::from(u32::MAX)) as u32
}

/// The per-client download size (in invitations) implied by a choice of
/// `m`: one drop's real share plus every server's noise.
#[must_use]
pub fn drop_download_invitations(
    users: u64,
    dial_fraction: f64,
    mu: f64,
    num_drops: u32,
    servers: usize,
) -> f64 {
    let real_per_drop = users as f64 * dial_fraction / f64::from(num_drops);
    real_per_drop + mu * servers as f64
}

/// Total server-side noise invitations per dialing round for a choice of
/// `m` (the §5.4 trade-off against [`drop_download_invitations`]).
#[must_use]
pub fn total_noise_invitations(mu: f64, num_drops: u32, servers: usize) -> f64 {
    mu * f64::from(num_drops) * servers as f64
}

/// Bayes-rule posterior bound (§6.4): an adversary with prior `p` that two
/// users are talking ends with posterior at most `e^ε·p / (e^ε·p + 1 − p)`
/// after observing an (ε, ·)-DP system.
///
/// # Panics
///
/// Panics if `prior` is outside [0, 1].
#[must_use]
pub fn posterior_bound(prior: f64, epsilon: f64) -> f64 {
    assert!((0.0..=1.0).contains(&prior), "prior must be a probability");
    let amplified = epsilon.exp() * prior;
    amplified / (amplified + (1.0 - prior))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = core::f64::consts::LN_2;
    const LN3: f64 = 1.0986122886681098;

    #[test]
    fn paper_mu_300k_protects_quarter_million_rounds() {
        let rounds = max_protected_rounds(
            Protocol::Conversation,
            300_000.0,
            13_800.0,
            PrivacyTarget::default(),
        );
        // §6.4 claims 250,000 rounds for this configuration.
        assert!((200_000..=300_000).contains(&rounds), "got {rounds} rounds");
    }

    #[test]
    fn paper_mu_150k_protects_70k_rounds() {
        let rounds = max_protected_rounds(
            Protocol::Conversation,
            150_000.0,
            7_300.0,
            PrivacyTarget::default(),
        );
        assert!((55_000..=90_000).contains(&rounds), "got {rounds} rounds");
    }

    #[test]
    fn paper_mu_450k_protects_500k_rounds() {
        let rounds = max_protected_rounds(
            Protocol::Conversation,
            450_000.0,
            20_000.0,
            PrivacyTarget::default(),
        );
        assert!((400_000..=600_000).contains(&rounds), "got {rounds} rounds");
    }

    #[test]
    fn tuning_recovers_paper_scales() {
        // For µ=300K the paper picked b=13,800; the sweep should land in
        // the same neighbourhood and protect at least as many rounds.
        let tuned = tune_scale(Protocol::Conversation, 300_000.0, PrivacyTarget::default());
        assert!(
            (10_000.0..=18_000.0).contains(&tuned.b),
            "tuned b = {}",
            tuned.b
        );
        // The paper quotes "250,000 rounds"; the exact Theorem-2 arithmetic
        // tops out a few percent lower (see EXPERIMENTS.md).
        assert!(tuned.rounds >= 230_000, "tuned rounds = {}", tuned.rounds);
    }

    #[test]
    fn dialing_configurations_cover_paper_rounds() {
        // §6.5: µ=8000/13000/20000 cover ≈1200/3500/8000 dialing rounds.
        // The paper's counts are approximate; the exact Theorem-2
        // arithmetic lands 10–25% lower on the larger two configurations
        // (see EXPERIMENTS.md), so the brackets here are generous below.
        let t = PrivacyTarget::default();
        let small = max_protected_rounds(Protocol::Dialing, 8_000.0, 500.0, t);
        assert!((900..=1_800).contains(&small), "µ=8K got {small}");
        let mid = max_protected_rounds(Protocol::Dialing, 13_000.0, 770.0, t);
        assert!((2_400..=4_500).contains(&mid), "µ=13K got {mid}");
        let large = max_protected_rounds(Protocol::Dialing, 20_000.0, 1_130.0, t);
        assert!((5_500..=10_000).contains(&large), "µ=20K got {large}");
    }

    #[test]
    fn more_noise_protects_more_rounds() {
        let t = PrivacyTarget::default();
        let a = tune_scale(Protocol::Conversation, 150_000.0, t).rounds;
        let b = tune_scale(Protocol::Conversation, 300_000.0, t).rounds;
        let c = tune_scale(Protocol::Conversation, 450_000.0, t).rounds;
        assert!(a < b && b < c, "{a} < {b} < {c} violated");
    }

    #[test]
    fn mu_scales_with_sqrt_k() {
        // §6.4: "µ increases proportionally to √k". Doubling protected
        // rounds four-fold should roughly double the µ needed. We verify
        // the tuned rounds ratio between µ and 2µ is ≈4.
        let t = PrivacyTarget::default();
        let r1 = tune_scale(Protocol::Conversation, 100_000.0, t).rounds as f64;
        let r2 = tune_scale(Protocol::Conversation, 200_000.0, t).rounds as f64;
        let ratio = r2 / r1;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "rounds should scale ~4x when µ doubles, got {ratio}"
        );
    }

    #[test]
    fn posterior_bounds_match_paper_examples() {
        // §6.4: prior 50% → 67% at ε=ln 2, 75% at ε=ln 3; prior 1% → 3%
        // at ε=ln 3.
        assert!((posterior_bound(0.5, LN2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((posterior_bound(0.5, LN3) - 0.75).abs() < 1e-9);
        assert!((posterior_bound(0.01, LN3) - 0.0294).abs() < 5e-4);
    }

    #[test]
    fn posterior_with_zero_epsilon_is_prior() {
        assert!((posterior_bound(0.3, 0.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn figure7_series_shape() {
        // e^ε′ grows monotonically with k and passes 2.0 near the
        // advertised 250K rounds for µ=300K.
        let ks: Vec<u64> = (1..=20).map(|i| i * 50_000).collect();
        let series = privacy_series(Protocol::Conversation, 300_000.0, 13_800.0, &ks, 1e-5);
        for w in series.windows(2) {
            assert!(w[1].e_epsilon > w[0].e_epsilon);
            assert!(w[1].delta > w[0].delta);
        }
        let at_250k = series.iter().find(|p| p.k == 250_000).expect("point");
        assert!(
            (at_250k.e_epsilon - 2.0).abs() < 0.2,
            "e^ε′ at 250K ≈ 2, got {}",
            at_250k.e_epsilon
        );
    }

    #[test]
    fn paper_drop_count_example() {
        // §8.1/§5.4: 1M users, 5% dialing, µ=13,000 → n·f/µ ≈ 3.8, i.e.
        // a handful of drops; at the paper's own evaluation scale the
        // optimum is m=1 ("the optimal number of introduction dead drops
        // is one", §7).
        assert_eq!(optimal_num_drops(1_000_000, 0.05, 13_000.0), 4);
        assert_eq!(optimal_num_drops(1_000, 0.05, 13_000.0), 1);
    }

    #[test]
    fn optimal_m_balances_real_and_noise() {
        // At m = n·f/µ, each drop holds ≈µ real + µ·servers noise; the
        // real share equals one server's noise share.
        let (users, f, mu) = (2_000_000u64, 0.05, 10_000.0);
        let m = optimal_num_drops(users, f, mu);
        let real_per_drop = users as f64 * f / f64::from(m);
        assert!((real_per_drop - mu).abs() / mu < 0.05);
    }

    #[test]
    fn drop_download_tradeoff_is_monotone() {
        // More drops → smaller per-client download, bigger total noise.
        let (users, f, mu, servers) = (1_000_000u64, 0.05, 13_000.0, 3);
        let mut last_download = f64::INFINITY;
        let mut last_noise = 0.0;
        for m in [1u32, 2, 4, 8, 16] {
            let dl = drop_download_invitations(users, f, mu, m, servers);
            let noise = total_noise_invitations(mu, m, servers);
            assert!(dl < last_download);
            assert!(noise > last_noise);
            last_download = dl;
            last_noise = noise;
        }
    }

    #[test]
    fn noise_budget_lookup_matches_the_recipes() {
        // Conversation: n1 + n2 ≈ 2µ. Dialing: µ per real drop.
        assert!(
            (expected_noise_requests(Protocol::Conversation, 300_000.0, 0) - 600_000.0).abs()
                < 1e-9
        );
        assert!((expected_noise_requests(Protocol::Dialing, 13_000.0, 4) - 52_000.0).abs() < 1e-9);
        // A µ=13K dialing round outweighs a µ=1K conversation round —
        // the mixed-scheduler admission case the budget exists for.
        assert!(
            expected_noise_requests(Protocol::Dialing, 13_000.0, 1)
                > expected_noise_requests(Protocol::Conversation, 1_000.0, 0)
        );
    }

    #[test]
    fn zero_rounds_when_noise_is_hopeless() {
        // Tiny µ and b can't even protect one round.
        let rounds =
            max_protected_rounds(Protocol::Conversation, 1.0, 0.5, PrivacyTarget::default());
        assert_eq!(rounds, 0);
    }
}
