//! Property tests pinning the distributional API of
//! [`NoiseDistribution`]: the certified `count_bounds(p)` windows must
//! actually bracket empirical `sample_count` draws at rate ≥ 1 − p, and
//! `quantile` / `tail_radius` must stay mutually consistent — these are
//! the primitives the simulator's sampled-mode invariants and the
//! attack harness's noise sizing both lean on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela_dp::{NoiseDistribution, NoiseMode};

/// A deterministic seed per proptest case, derived from the case's
/// parameters so every (µ, b, p) triple replays identically.
fn case_seed(mu: f64, b: f64, p: f64) -> u64 {
    mu.to_bits() ^ b.to_bits().rotate_left(21) ^ p.to_bits().rotate_left(42)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `count_bounds(p)` certifies a per-draw escape probability ≤ p.
    /// Over n seeded draws the escape count is Binomial(n, ≤p); we allow
    /// the mean plus six standard deviations, so an honest sampler
    /// passes every seed while a mis-derived window (e.g. one-sided, or
    /// using b instead of √2·b) fails immediately.
    #[test]
    fn count_bounds_bracket_empirical_draws(
        mu_tenths in 0u32..30_000,
        b_tenths in 5u32..600,
        p_exp_tenths in 20u32..50,
    ) {
        let mu = f64::from(mu_tenths) / 10.0;
        let b = f64::from(b_tenths) / 10.0;
        let p = 10f64.powf(-f64::from(p_exp_tenths) / 10.0);
        let dist = NoiseDistribution::new(mu, b);
        let (lo, hi) = dist.count_bounds(p);
        let n = 40_000u32;
        let mut rng = StdRng::seed_from_u64(case_seed(mu, b, p));
        let escapes = (0..n)
            .filter(|_| {
                let v = dist.sample_count(&mut rng, NoiseMode::Sampled);
                v < lo || v > hi
            })
            .count() as f64;
        let expected = f64::from(n) * p;
        let slack = 6.0 * (f64::from(n) * p).sqrt().max(1.0);
        prop_assert!(
            escapes <= expected + slack,
            "{escapes} of {n} draws escaped [{lo}, {hi}] (budget {expected:.1} + {slack:.1})"
        );
        // The bracket rate itself clears 1 − p up to that same slack.
        let rate = 1.0 - escapes / f64::from(n);
        prop_assert!(rate >= 1.0 - p - slack / f64::from(n));
    }

    /// `quantile(1 − p/2) − µ == tail_radius(p)` (and mirrored below the
    /// mean): the two closed forms describe the same two-sided tail.
    /// Extreme tails lose ~half the bits of p to `1 − p/2` cancellation
    /// before the log, so the tolerance scales with the radius.
    #[test]
    fn quantile_and_tail_radius_are_mutually_consistent(
        mu_tenths in 0u32..30_000,
        b_tenths in 5u32..600,
        p_millionths in 1u32..500_000,
    ) {
        let mu = f64::from(mu_tenths) / 10.0;
        let b = f64::from(b_tenths) / 10.0;
        let p = f64::from(p_millionths) / 1e6;
        let dist = NoiseDistribution::new(mu, b);
        let t = dist.tail_radius(p);
        let tol = 1e-5 * (1.0 + t);
        prop_assert!(
            (dist.quantile(1.0 - p / 2.0) - mu - t).abs() < tol,
            "upper quantile {} vs µ + t {}",
            dist.quantile(1.0 - p / 2.0),
            mu + t
        );
        prop_assert!(
            (dist.quantile(p / 2.0) - (mu - t)).abs() < tol,
            "lower quantile {} vs µ − t {}",
            dist.quantile(p / 2.0),
            mu - t
        );
        // tail_radius is monotone decreasing in p: half the budget, a
        // wider certified window.
        prop_assert!(dist.tail_radius(p / 2.0) > t);
    }
}
