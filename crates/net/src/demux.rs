//! Demuxed receive over blocking transports: one reader thread per
//! link, one event queue per node.
//!
//! The windowed (pipelined) wire mode interleaves rounds on every
//! link, and a node terminating two blocking links (its upstream and
//! downstream neighbours) cannot `recv` on either without risking a
//! deadlock: a frame it needs next may be waiting on the *other*
//! socket while both peers block on sends. The fix is the classic
//! reactor shape scaled down to std threads: every [`Transport`] gets
//! a dedicated reader thread that does nothing but pull frames and
//! push them — round tags and all — onto one unbounded mpsc queue the
//! node drains. Every socket's receive side is therefore *always*
//! drained, so a blocking send anywhere in the chain eventually makes
//! progress, and the admission window (at most `chain_len` rounds in
//! flight) bounds how much the queues can hold.
//!
//! Reader threads are detached, not scoped: a scoped join would hang
//! on a reader still blocked in `recv` when the node errors out early.
//! Each reader exits deterministically in normal operation — after
//! forwarding its link's `Bye` (each direction of each link carries
//! exactly one, see the wire crate's framing rules) or its first
//! error — and an abandoned reader holds only its `Arc<dyn Transport>`
//! until the peer endpoint drops.

use crate::error::Error;
use crate::transport::Transport;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use vuvuzela_wire::Frame;

/// One frame (or terminal error) pulled off one of a node's links.
pub struct DemuxEvent<T> {
    /// The caller's tag for the link the event arrived on.
    pub from: T,
    /// The frame, or the error that ended the link. After an `Err`
    /// event no further events arrive from that link.
    pub event: Result<Frame, Error>,
}

/// Merges any number of blocking transports into one event stream.
pub struct Demux<T> {
    // Senders live only in the reader threads, so `recv` observes
    // hangup exactly when every reader has exited.
    rx: Receiver<DemuxEvent<T>>,
}

impl<T: Copy + Send + 'static> Demux<T> {
    /// Spawns one detached reader per `(tag, transport)` pair. Each
    /// reader forwards frames until its link yields `Bye` (forwarded,
    /// then the reader exits) or an error (forwarded, then the reader
    /// exits).
    #[must_use]
    pub fn new(links: impl IntoIterator<Item = (T, Arc<dyn Transport>)>) -> Demux<T> {
        let (tx, rx) = channel();
        for (from, transport) in links {
            let tx: Sender<DemuxEvent<T>> = tx.clone();
            std::thread::spawn(move || loop {
                let event = transport.recv();
                let done = !matches!(event, Ok(ref frame) if !matches!(frame, Frame::Bye));
                if tx.send(DemuxEvent { from, event }).is_err() || done {
                    return;
                }
            });
        }
        drop(tx);
        Demux { rx }
    }

    /// The next event from any link, blocking until one arrives.
    /// `None` means every reader has exited (all links saw their `Bye`
    /// or failed) and the queue is drained.
    pub fn recv(&self) -> Option<DemuxEvent<T>> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;
    use crate::Link;
    use vuvuzela_wire::LinkId;

    #[test]
    fn merges_two_links_and_ends_on_byes() {
        let (a_near, a_far) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
        let (b_near, b_far) = memory_pair(Arc::new(Link::new(LinkId::Hop(1))));
        let demux = Demux::new([
            (0u8, Arc::new(a_near) as Arc<dyn Transport>),
            (1u8, Arc::new(b_near) as Arc<dyn Transport>),
        ]);
        b_far.send(Frame::Bye).expect("bye b");
        a_far.send(Frame::Bye).expect("bye a");
        let mut tags = Vec::new();
        while let Some(ev) = demux.recv() {
            assert!(matches!(ev.event, Ok(Frame::Bye)));
            tags.push(ev.from);
        }
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1], "one bye per link, then hangup");
    }

    #[test]
    fn dropped_peer_surfaces_one_error_then_hangup() {
        let (near, far) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
        let demux = Demux::new([((), Arc::new(near) as Arc<dyn Transport>)]);
        drop(far);
        let ev = demux.recv().expect("error event");
        assert!(matches!(ev.event, Err(Error::Disconnected { .. })));
        assert!(demux.recv().is_none(), "reader exits after its error");
    }
}
