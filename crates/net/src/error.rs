//! The unified error type both transport backends return.
//!
//! Link misuse used to be a mix of ad-hoc panics (double-tapping a
//! link) and conditions the in-memory substrate simply could not
//! express (a peer disappearing). A real wire can fail in all of these
//! ways at runtime, so the transport API returns one [`Error`] from
//! both backends — the in-memory one is infallible by construction for
//! everything except a dropped peer, but its signatures stay honest.

use vuvuzela_wire::{FrameError, LinkId};

/// Any failure on a transport link.
#[derive(Debug)]
pub enum Error {
    /// A socket-level failure.
    Io {
        /// The link the socket carries.
        link: LinkId,
        /// What the transport was doing (`"connect"`, `"read"`, …).
        op: &'static str,
        /// The underlying IO error.
        source: std::io::Error,
    },
    /// The peer sent bytes that do not decode as a frame.
    Frame {
        /// The link the frame arrived on.
        link: LinkId,
        /// The codec's reason.
        source: FrameError,
    },
    /// The peer went away (socket closed, or the in-memory endpoint's
    /// other half was dropped).
    Disconnected {
        /// The link that lost its peer.
        link: LinkId,
    },
    /// The connection handshake failed: the two ends disagree about
    /// which link (or which deployment) the connection carries.
    Handshake {
        /// The link this end expected.
        link: LinkId,
        /// Human-readable mismatch description.
        reason: String,
    },
    /// A frame arrived that the receiver's protocol state cannot
    /// accept (e.g. a batch after `Bye`).
    Protocol {
        /// The link it arrived on.
        link: LinkId,
        /// What was wrong.
        reason: String,
    },
    /// A tap is already attached to the link (at most one per link; a
    /// coalition multiplexes inside its own `Tap` implementation).
    TapOccupied {
        /// The contested link.
        link: LinkId,
    },
}

impl Error {
    /// The link the failure occurred on.
    #[must_use]
    pub fn link(&self) -> LinkId {
        match self {
            Error::Io { link, .. }
            | Error::Frame { link, .. }
            | Error::Disconnected { link }
            | Error::Handshake { link, .. }
            | Error::Protocol { link, .. }
            | Error::TapOccupied { link } => *link,
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Io { link, op, source } => {
                write!(f, "io failure on {link} during {op}: {source}")
            }
            Error::Frame { link, source } => write!(f, "bad frame on {link}: {source}"),
            Error::Disconnected { link } => write!(f, "peer on {link} disconnected"),
            Error::Handshake { link, reason } => write!(f, "handshake failed on {link}: {reason}"),
            Error::Protocol { link, reason } => write!(f, "protocol violation on {link}: {reason}"),
            Error::TapOccupied { link } => write!(f, "link {link} already has a tap"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_names_the_link() {
        let e = Error::Disconnected {
            link: LinkId::Hop(1),
        };
        assert_eq!(e.to_string(), "peer on server0->server1 disconnected");
        assert_eq!(e.link(), LinkId::Hop(1));
        assert!(e.source().is_none());
    }

    #[test]
    fn io_and_frame_expose_sources() {
        let io = Error::Io {
            link: LinkId::Clients,
            op: "read",
            source: std::io::Error::other("boom"),
        };
        assert!(io.source().is_some());
        assert!(io.to_string().contains("during read"));

        let frame = Error::Frame {
            link: LinkId::Cdn,
            source: FrameError::BadMagic,
        };
        assert!(frame.source().is_some());
        assert!(frame.to_string().contains("bad frame magic"));
    }
}
