//! Simulated network substrate for Vuvuzela experiments.
//!
//! The paper evaluates Vuvuzela on EC2 VMs connected by 10 Gbps links and
//! notes that "network latency has little effect on Vuvuzela's
//! performance, as each round is largely dominated by the CPU cost of
//! cryptography on the servers and by the bandwidth for transferring all
//! of the encrypted requests in a round" (§8.1). This crate therefore
//! models the network as explicit, observable *links* rather than sockets:
//!
//! * [`meter`] — per-link byte/message counters, the source of every
//!   bandwidth number in EXPERIMENTS.md.
//! * [`link`] — a [`link::Link`] carries batches of opaque ciphertexts
//!   between hops and hands each batch to an optional [`link::Tap`],
//!   which models the paper's §2.3 adversary: it can *monitor, block,
//!   delay, or inject* traffic on any link.
//! * [`parallel`] — a persistent [`parallel::WorkerPool`] (spawned once,
//!   reused across rounds) that spreads per-request Diffie-Hellman work
//!   across cores, mirroring the 36-core parallelism of the paper's
//!   prototype without paying thread spawn/join on every round.

// `parallel` contains the workspace's only unsafe code (the pool's
// scoped-execution core); everything else in this crate must stay safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod demux;
pub mod error;
pub mod link;
pub mod meter;
pub mod parallel;
pub mod tcp;
pub mod transport;

pub use demux::{Demux, DemuxEvent};
pub use error::Error;
pub use link::{Direction, Link, RecordingTap, Tap, TapContext};
pub use meter::Meter;
pub use parallel::WorkerPool;
pub use tcp::{RetryPolicy, TcpTransport};
pub use transport::{memory_pair, MemoryEndpoint, Transport};
pub use vuvuzela_wire::LinkId;
