//! Observable, tamperable links between protocol hops.
//!
//! Every hop-to-hop transfer in the simulated deployment goes through a
//! [`Link`]. A link meters traffic and exposes it to an optional [`Tap`]
//! — the in-code embodiment of the paper's network adversary, who "can
//! monitor, block, delay, or inject traffic on any network link" (§2.3).
//! Taps receive the batch *by mutable reference* and may do anything to
//! it; whatever remains is what the next hop sees.

use crate::error::Error;
use crate::meter::Meter;
use parking_lot::Mutex;
use std::sync::Arc;
use vuvuzela_wire::LinkId;

/// Direction of a transfer over a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Towards the last server (requests).
    Forward,
    /// Towards the clients (responses).
    Backward,
}

/// Metadata handed to a tap alongside each batch.
#[derive(Clone, Debug)]
pub struct TapContext {
    /// Which deployment link the batch crosses. `Display` renders the
    /// legacy diagnostic names (`"entry->server0"`, …), so log and
    /// panic messages are unchanged by the move to typed ids.
    pub link: LinkId,
    /// Protocol round the batch belongs to.
    pub round: u64,
    /// Transfer direction.
    pub direction: Direction,
}

/// An adversary's vantage point on one link.
///
/// Implementations may record (passive global observer), delete or reorder
/// entries (blocking), stash entries for later rounds (delaying), or push
/// new entries (injection). Honest operation is simply having no tap.
pub trait Tap: Send {
    /// Inspect and/or mutate a batch in flight.
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>);
}

/// A tap that copies everything it sees and tampers with nothing — the
/// global *passive* adversary.
#[derive(Default)]
pub struct RecordingTap {
    /// Every observed batch: (context, sizes and contents of each entry).
    pub observations: Vec<(TapContext, Vec<Vec<u8>>)>,
}

impl RecordingTap {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> RecordingTap {
        RecordingTap::default()
    }

    /// Total number of messages observed across all batches.
    #[must_use]
    pub fn total_messages(&self) -> usize {
        self.observations.iter().map(|(_, b)| b.len()).sum()
    }
}

impl Tap for RecordingTap {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        self.observations.push((ctx.clone(), batch.clone()));
    }
}

/// A byte-metered, tappable link between two hops.
///
/// Besides the aggregate per-direction [`Meter`]s, a link keeps
/// **per-round** byte/message counts. With the streaming scheduler
/// several rounds are on the wire at once, so aggregate counters alone
/// can no longer attribute traffic to a round — but the adversary of
/// §2.3 observes per-round batches either way, and the per-round log is
/// what lets tests assert that pipelined execution changes *when* bytes
/// move, never *which round* they belong to.
pub struct Link {
    id: LinkId,
    /// Rendered `id`, cached so [`Link::name`] can keep returning a
    /// borrowed `&str`.
    name: String,
    forward_meter: Arc<Meter>,
    backward_meter: Arc<Meter>,
    /// `(messages, bytes)` per (round, direction), for round-attributed
    /// accounting under overlapped rounds. Bounded: entries for the
    /// oldest rounds are evicted past [`PER_ROUND_LOG_CAP`], so
    /// long-running simulations don't grow without limit (the aggregate
    /// meters remain exact forever).
    per_round: Mutex<std::collections::BTreeMap<(u64, bool), (u64, u64)>>,
    tap: Option<Arc<Mutex<dyn Tap>>>,
}

/// Maximum `(round, direction)` entries retained per link — far beyond
/// any in-flight window (streaming schedulers keep `chain_len` rounds in
/// flight) while keeping per-link memory constant over a process
/// lifetime.
const PER_ROUND_LOG_CAP: usize = 4096;

impl Link {
    /// Creates the link with the given typed identity.
    #[must_use]
    pub fn new(id: LinkId) -> Link {
        Link {
            id,
            name: id.to_string(),
            forward_meter: Arc::new(Meter::new()),
            backward_meter: Arc::new(Meter::new()),
            per_round: Mutex::new(std::collections::BTreeMap::new()),
            tap: None,
        }
    }

    /// Attaches an adversary tap, replacing any current one. At most one
    /// tap per link; a coalition multiplexes inside its own `Tap`
    /// implementation. Use [`Link::try_attach_tap`] when silently
    /// replacing an existing tap would be a harness bug.
    pub fn attach_tap(&mut self, tap: Arc<Mutex<dyn Tap>>) {
        self.tap = Some(tap);
    }

    /// Attaches an adversary tap, failing with [`Error::TapOccupied`]
    /// if one is already present — the API-honest form of what used to
    /// be an ad-hoc panic in harnesses stacking taps by mistake.
    ///
    /// # Errors
    ///
    /// [`Error::TapOccupied`] when the link already has a tap.
    pub fn try_attach_tap(&mut self, tap: Arc<Mutex<dyn Tap>>) -> Result<(), Error> {
        if self.tap.is_some() {
            return Err(Error::TapOccupied { link: self.id });
        }
        self.tap = Some(tap);
        Ok(())
    }

    /// Removes the tap, restoring an unobserved link.
    pub fn detach_tap(&mut self) {
        self.tap = None;
    }

    /// Transfers a batch across the link: meters it, lets the tap
    /// interfere, and returns what arrives at the far end.
    #[must_use]
    pub fn transmit(
        &self,
        round: u64,
        direction: Direction,
        mut batch: Vec<Vec<u8>>,
    ) -> Vec<Vec<u8>> {
        let bytes: u64 = batch.iter().map(|m| m.len() as u64).sum();
        self.record(round, direction, batch.len() as u64, bytes);
        self.tap_intercept(round, direction, &mut batch);
        batch
    }

    /// Meters a transfer without materialising per-message vectors — the
    /// zero-copy round pipeline's entry point (its batches live in one
    /// flat arena owned by the caller). The transfer is attributed to
    /// `round` in the per-round log as well as the aggregate meters.
    pub fn record(&self, round: u64, direction: Direction, messages: u64, bytes: u64) {
        let meter = match direction {
            Direction::Forward => &self.forward_meter,
            Direction::Backward => &self.backward_meter,
        };
        meter.record_batch(messages, bytes);
        let mut per_round = self.per_round.lock();
        let entry = per_round
            .entry((round, matches!(direction, Direction::Backward)))
            .or_insert((0, 0));
        entry.0 += messages;
        entry.1 += bytes;
        while per_round.len() > PER_ROUND_LOG_CAP {
            per_round.pop_first();
        }
    }

    /// The `(messages, bytes)` this link carried for one round in one
    /// direction — stable under overlapped rounds, unlike the order of
    /// aggregate-meter increments.
    #[must_use]
    pub fn round_traffic(&self, round: u64, direction: Direction) -> (u64, u64) {
        self.per_round
            .lock()
            .get(&(round, matches!(direction, Direction::Backward)))
            .copied()
            .unwrap_or((0, 0))
    }

    /// A snapshot of the whole per-round log, in `(round, direction)`
    /// order: one `((round, direction), (messages, bytes))` entry per
    /// attributed transfer. Mixed-schedule equivalence tests diff two
    /// links' entire logs with this — it catches spurious extra rounds
    /// that point lookups via [`Link::round_traffic`] would miss.
    #[must_use]
    pub fn round_traffic_log(&self) -> Vec<((u64, Direction), (u64, u64))> {
        self.per_round
            .lock()
            .iter()
            .map(|(&(round, backward), &counts)| {
                let direction = if backward {
                    Direction::Backward
                } else {
                    Direction::Forward
                };
                ((round, direction), counts)
            })
            .collect()
    }

    /// Whether an adversary tap is attached (callers carrying flat
    /// buffers only pay the per-message conversion when one is).
    #[must_use]
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }

    /// Runs the attached tap (if any) over a batch. Metering is the
    /// caller's responsibility via [`Link::record`].
    pub fn tap_intercept(&self, round: u64, direction: Direction, batch: &mut Vec<Vec<u8>>) {
        if let Some(tap) = &self.tap {
            let ctx = TapContext {
                link: self.id,
                round,
                direction,
            };
            tap.lock().intercept(&ctx, batch);
        }
    }

    /// The link's typed identity.
    #[must_use]
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The link's diagnostic name (the rendered [`LinkId`]).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Meter for the request direction.
    #[must_use]
    pub fn forward_meter(&self) -> &Arc<Meter> {
        &self.forward_meter
    }

    /// Meter for the response direction.
    #[must_use]
    pub fn backward_meter(&self) -> &Arc<Meter> {
        &self.backward_meter
    }

    /// Total bytes both ways.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.forward_meter.bytes() + self.backward_meter.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vuvuzela_wire::LinkId;

    #[test]
    fn untapped_link_passes_through_and_meters() {
        let link = Link::new(LinkId::Hop(0));
        let batch = vec![vec![1u8; 10], vec![2u8; 20]];
        let out = link.transmit(0, Direction::Forward, batch.clone());
        assert_eq!(out, batch);
        assert_eq!(link.forward_meter().bytes(), 30);
        assert_eq!(link.forward_meter().messages(), 2);
        assert_eq!(link.backward_meter().bytes(), 0);
    }

    #[test]
    fn per_round_accounting_attributes_overlapped_rounds() {
        // Two rounds interleaved on the wire (as the streaming scheduler
        // produces) must still be attributable round by round.
        let link = Link::new(LinkId::Hop(0));
        let _ = link.transmit(0, Direction::Forward, vec![vec![1u8; 10]]);
        let _ = link.transmit(1, Direction::Forward, vec![vec![2u8; 20], vec![3u8; 20]]);
        let _ = link.transmit(0, Direction::Backward, vec![vec![4u8; 5]]);
        assert_eq!(link.round_traffic(0, Direction::Forward), (1, 10));
        assert_eq!(link.round_traffic(1, Direction::Forward), (2, 40));
        assert_eq!(link.round_traffic(0, Direction::Backward), (1, 5));
        assert_eq!(link.round_traffic(1, Direction::Backward), (0, 0));
        assert_eq!(link.forward_meter().bytes(), 50);
        assert_eq!(
            link.round_traffic_log(),
            vec![
                ((0, Direction::Forward), (1, 10)),
                ((0, Direction::Backward), (1, 5)),
                ((1, Direction::Forward), (2, 40)),
            ]
        );
    }

    #[test]
    fn recording_tap_sees_everything() {
        let mut link = Link::new(LinkId::Hop(0));
        let tap = Arc::new(Mutex::new(RecordingTap::new()));
        link.attach_tap(tap.clone());
        let _ = link.transmit(3, Direction::Forward, vec![vec![0u8; 5]]);
        let _ = link.transmit(3, Direction::Backward, vec![vec![0u8; 7], vec![0u8; 7]]);

        let guard = tap.lock();
        assert_eq!(guard.observations.len(), 2);
        assert_eq!(guard.total_messages(), 3);
        assert_eq!(guard.observations[0].0.round, 3);
        assert_eq!(guard.observations[0].0.direction, Direction::Forward);
        assert_eq!(guard.observations[1].0.direction, Direction::Backward);
    }

    /// A blocking tap: models "block traffic from all clients except Alice
    /// and Bob" (§2.1).
    struct KeepFirstN(usize);
    impl Tap for KeepFirstN {
        fn intercept(&mut self, _ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
            batch.truncate(self.0);
        }
    }

    #[test]
    fn blocking_tap_drops_traffic() {
        let mut link = Link::new(LinkId::Clients);
        link.attach_tap(Arc::new(Mutex::new(KeepFirstN(1))));
        let out = link.transmit(0, Direction::Forward, vec![vec![1], vec![2], vec![3]]);
        assert_eq!(out, vec![vec![1]]);
        // Metering happens before interference: the adversary cannot hide
        // traffic from our own accounting.
        assert_eq!(link.forward_meter().messages(), 3);
    }

    /// An injecting tap: models request injection.
    struct Inject(Vec<u8>);
    impl Tap for Inject {
        fn intercept(&mut self, _ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
            batch.push(self.0.clone());
        }
    }

    #[test]
    fn injecting_tap_adds_traffic() {
        let mut link = Link::new(LinkId::Cdn);
        link.attach_tap(Arc::new(Mutex::new(Inject(vec![9, 9]))));
        let out = link.transmit(0, Direction::Forward, vec![vec![1]]);
        assert_eq!(out, vec![vec![1], vec![9, 9]]);
    }

    #[test]
    fn detach_restores_passthrough() {
        let mut link = Link::new(LinkId::Cdn);
        link.attach_tap(Arc::new(Mutex::new(KeepFirstN(0))));
        assert!(link
            .transmit(0, Direction::Forward, vec![vec![1]])
            .is_empty());
        link.detach_tap();
        assert_eq!(
            link.transmit(1, Direction::Forward, vec![vec![1]]),
            vec![vec![1]]
        );
    }
}
