//! Byte and message accounting for simulated links.

use std::sync::atomic::{AtomicU64, Ordering};

/// A cheap, thread-safe counter of traffic through one link direction.
#[derive(Debug, Default)]
pub struct Meter {
    bytes: AtomicU64,
    messages: AtomicU64,
    batches: AtomicU64,
}

impl Meter {
    /// Creates a zeroed meter.
    #[must_use]
    pub fn new() -> Meter {
        Meter::default()
    }

    /// Records one batch of messages totalling `bytes`.
    pub fn record_batch(&self, messages: u64, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes transferred.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages transferred.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total batches (round-trips) transferred.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero (e.g. between sweep points).
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
    }
}

/// Formats a byte count with binary-ish units the way the paper quotes
/// them (KB/MB/GB as powers of 10, matching "166 MB/sec" etc.).
#[must_use]
pub fn human_bytes(bytes: f64) -> String {
    if bytes >= 1e9 {
        format!("{:.2} GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.2} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.2} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = Meter::new();
        m.record_batch(10, 2560);
        m.record_batch(5, 1280);
        assert_eq!(m.messages(), 15);
        assert_eq!(m.bytes(), 3840);
        assert_eq!(m.batches(), 2);
    }

    #[test]
    fn reset_zeroes() {
        let m = Meter::new();
        m.record_batch(1, 100);
        m.reset();
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.messages(), 0);
        assert_eq!(m.batches(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let m = std::sync::Arc::new(Meter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record_batch(1, 7);
                    }
                });
            }
        });
        assert_eq!(m.messages(), 4000);
        assert_eq!(m.bytes(), 28_000);
    }

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(12.0), "12 B");
        assert_eq!(human_bytes(12_000.0), "12.00 KB");
        assert_eq!(human_bytes(166_000_000.0), "166.00 MB");
        assert_eq!(human_bytes(12_000_000_000.0), "12.00 GB");
    }
}
