//! A persistent worker pool for server-side cryptography.
//!
//! The paper's servers are 36-core machines that parallelise the
//! per-request Diffie-Hellman work ("Each 36-core machine can perform
//! about 340,000 Curve25519 Diffie-Hellman operations per second", §8.2).
//! The original implementation here spawned fresh OS threads inside
//! every `parallel_map` call via `std::thread::scope`; at one call per
//! server per round direction that put thread spawn/join latency on the
//! round's critical path. [`WorkerPool`] replaces it:
//!
//! * **spawn once** — a fixed set of worker threads is created the first
//!   time the pool is touched and reused for every subsequent round;
//! * **chunked stride scheduling** — each call publishes a single atomic
//!   cursor over `0..n`; workers (and the calling thread, which always
//!   participates) repeatedly claim `chunk`-sized index ranges until the
//!   cursor runs past `n`, so load balances even when some onions fail
//!   fast (malformed input) and others run full crypto;
//! * **zero-copy slicing** — [`WorkerPool::map_strides_mut`] hands each
//!   worker disjoint `&mut` windows of one flat buffer, which is what the
//!   round pipeline's `RoundBuffer` arena needs; no per-item `Vec`s cross
//!   threads.
//!
//! [`parallel_map`] keeps its original order-preserving signature but now
//! runs on the shared pool.
//!
//! This module contains the workspace's only `unsafe` code, confined to
//! the classic scoped-execution argument: a call's closure and buffers
//! are borrowed only between enqueue and the completion wait in the same
//! stack frame, and the completion wait does not return until every index
//! has been processed and no worker will touch the call's data again
//! (workers only reach the data through index ranges claimed *before*
//! the cursor ran out). Disjointness of `&mut` windows is guaranteed by
//! handing each index to exactly one worker.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Type-erased parallel call state shared between the caller and the
/// workers. `ctx` points at a closure living in the caller's stack frame;
/// see the module docs for the lifetime argument.
struct Call {
    /// Invokes the caller's closure for one index.
    invoke: unsafe fn(*const (), usize),
    ctx: *const (),
    /// Next unclaimed index.
    cursor: AtomicUsize,
    total: usize,
    /// Indices claimed per `fetch_add`.
    chunk: usize,
    /// Items not yet finished; completion signal when it reaches zero.
    pending: AtomicUsize,
    /// Threads currently working this call (the submitting caller counts
    /// as one). Workers join a call only while this is below
    /// `max_strands`, so concurrent submissions — one per pipeline stage
    /// — share the pool instead of the first call monopolising it.
    strands: AtomicUsize,
    /// The submitting stage's parallelism budget.
    max_strands: usize,
    /// The first panic message from any worker, re-raised by the caller.
    panic_msg: Mutex<Option<String>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced through `invoke`, which was
// instantiated for a `Sync` closure type, and only while the owning call
// frame is blocked in `run` (see module docs).
unsafe impl Send for Call {}
unsafe impl Sync for Call {}

impl Call {
    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Acquire) >= self.total
    }

    /// Tries to reserve a strand slot on this call; a worker that gets
    /// `true` must [`Call::leave`] when it stops working the call.
    fn try_join(&self) -> bool {
        let mut current = self.strands.load(Ordering::Acquire);
        loop {
            if current >= self.max_strands {
                return false;
            }
            match self.strands.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn leave(&self) {
        self.strands.fetch_sub(1, Ordering::AcqRel);
    }

    /// Claims and processes chunks until the cursor runs out.
    fn work(&self) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::AcqRel);
            if start >= self.total {
                return;
            }
            let end = (start + self.chunk).min(self.total);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in start..end {
                    // SAFETY: each index is claimed by exactly one thread,
                    // and the caller keeps the closure alive until
                    // `pending` reaches zero.
                    unsafe { (self.invoke)(self.ctx, i) };
                }
            }));
            if let Err(payload) = outcome {
                // Keep the original message so the caller's re-panic is as
                // informative as the scoped-thread join it replaced.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let mut slot = self.panic_msg.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(msg);
            }
            if self.pending.fetch_sub(end - start, Ordering::AcqRel) == end - start {
                // Last items completed: wake the caller. Taking the lock
                // orders the wake after the caller's `pending` check.
                let _guard = self.done.lock().unwrap_or_else(|e| e.into_inner());
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Call>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of worker threads; see the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` worker threads (the calling thread of
    /// every operation also works, so total parallelism is `threads + 1`).
    #[must_use]
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vuvuzela-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            handles,
        }
    }

    /// The process-wide shared pool, spawned on first use and sized to
    /// the machine (`available_parallelism − 1` workers + the caller).
    ///
    /// All mix servers in a simulated deployment share this pool: the
    /// chain processes rounds strictly sequentially (§8.2), so per-server
    /// pools would only oversubscribe the machine.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| WorkerPool::new(default_workers().saturating_sub(1)))
    }

    /// Worker-thread count (excluding the participating caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core primitive: invokes `f(i)` for every `i` in `0..total` across
    /// the pool, claiming `chunk` indices at a time. Blocks until all
    /// indices are processed. `parallelism` caps how many chunks exist
    /// (use `usize::MAX` for "whole pool").
    fn run<F: Fn(usize) + Sync>(&self, total: usize, parallelism: usize, f: &F) {
        if total == 0 {
            return;
        }
        let parallelism = parallelism.clamp(1, self.threads + 1);
        // Several chunks per strand, so threads that draw cheap work (e.g.
        // onions that fail authentication immediately) come back for more
        // instead of idling behind one static partition.
        const CHUNKS_PER_STRAND: usize = 4;
        let chunk = total.div_ceil(parallelism * CHUNKS_PER_STRAND).max(1);
        if parallelism == 1 || total <= chunk {
            for i in 0..total {
                f(i);
            }
            return;
        }

        unsafe fn invoke<F: Fn(usize)>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` was created from `&F` below and is still live
            // (the caller is blocked in this frame).
            let f = unsafe { &*ctx.cast::<F>() };
            f(i);
        }

        let call = Arc::new(Call {
            invoke: invoke::<F>,
            ctx: (f as *const F).cast(),
            cursor: AtomicUsize::new(0),
            total,
            chunk,
            pending: AtomicUsize::new(total),
            // The caller below occupies the first strand.
            strands: AtomicUsize::new(1),
            max_strands: parallelism,
            panic_msg: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(Arc::clone(&call));
            self.shared.work_cv.notify_all();
        }

        // The caller is a worker too.
        call.work();

        // Wait for stragglers.
        {
            let mut guard = call.done.lock().unwrap_or_else(|e| e.into_inner());
            while call.pending.load(Ordering::Acquire) != 0 {
                guard = call.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }

        // Tidy the queue (workers also skip exhausted calls lazily).
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.retain(|c| !Arc::ptr_eq(c, &call));
        }

        let panic_msg = call
            .panic_msg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(msg) = panic_msg {
            panic!("worker pool closure panicked: {msg}");
        }
    }

    /// Applies `f` to every `stride`-sized window of `data` in parallel
    /// and returns `f`'s results in window order. Window `i` is
    /// `data[i * stride .. (i + 1) * stride]`; a final partial window is
    /// passed as-is. This is the zero-copy entry point the round
    /// pipeline's flat buffers use.
    ///
    /// `parallelism` caps concurrency (the configured per-server worker
    /// count); results are in window order regardless.
    pub fn map_strides_mut<R, F>(
        &self,
        data: &mut [u8],
        stride: usize,
        parallelism: usize,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut [u8]) -> R + Sync,
    {
        assert!(stride > 0, "stride must be positive");
        let total = data.len().div_ceil(stride);
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(total, || None);

        {
            let base = SendPtr(data.as_mut_ptr());
            let len = data.len();
            let results_ptr = SendPtr(results.as_mut_ptr());
            let worker = |i: usize| {
                let start = i * stride;
                let end = (start + stride).min(len);
                // SAFETY: windows are disjoint (one per index, each index
                // claimed once) and `data` outlives the blocking `run`.
                let window =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                let r = f(i, window);
                // SAFETY: slot `i` is written by exactly one thread.
                unsafe { *results_ptr.get().add(i) = Some(r) };
            };
            self.run(total, parallelism, &worker);
        }

        results
            .into_iter()
            .map(|r| r.expect("every window processed"))
            .collect()
    }

    /// Like [`WorkerPool::map_strides_mut`], but hands each worker a
    /// window of up to `chunk_slots` **contiguous** stride-windows at a
    /// time and expects one result per slot back. This is the entry point
    /// for per-slot crypto that amortises work across neighbouring slots
    /// — the onion peeler batches its field inversions at exactly this
    /// granularity (Montgomery's trick over a worker chunk).
    ///
    /// `f(first_slot, window)` receives the index of the window's first
    /// slot and the window itself (`chunk_slots` full strides, except a
    /// shorter final window) and must return one `R` per slot it covers.
    /// Results are returned in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns the wrong number of results for a window.
    pub fn map_stride_chunks_mut<R, F>(
        &self,
        data: &mut [u8],
        stride: usize,
        chunk_slots: usize,
        parallelism: usize,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut [u8]) -> Vec<R> + Sync,
    {
        assert!(stride > 0, "stride must be positive");
        assert!(chunk_slots > 0, "chunk_slots must be positive");
        let total_slots = data.len().div_ceil(stride);
        let total_chunks = total_slots.div_ceil(chunk_slots);
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(total_slots, || None);

        {
            let base = SendPtr(data.as_mut_ptr());
            let len = data.len();
            let results_ptr = SendPtr(results.as_mut_ptr());
            let worker = |c: usize| {
                let first_slot = c * chunk_slots;
                let slots = chunk_slots.min(total_slots - first_slot);
                let start = first_slot * stride;
                let end = (start + slots * stride).min(len);
                // SAFETY: chunks are disjoint (one per index, each index
                // claimed once) and `data` outlives the blocking `run`.
                let window =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
                let rs = f(first_slot, window);
                assert_eq!(rs.len(), slots, "one result per slot in the chunk");
                for (j, r) in rs.into_iter().enumerate() {
                    // SAFETY: slot `first_slot + j` belongs to this chunk
                    // and is written by exactly one thread.
                    unsafe { *results_ptr.get().add(first_slot + j) = Some(r) };
                }
            };
            self.run(total_chunks, parallelism, &worker);
        }

        results
            .into_iter()
            .map(|r| r.expect("every slot processed"))
            .collect()
    }

    /// Order-preserving parallel map over an owned `Vec`.
    pub fn map_vec<T, U, F>(&self, mut items: Vec<T>, parallelism: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let total = items.len();
        let mut slots: Vec<Option<T>> = items.drain(..).map(Some).collect();
        let mut results: Vec<Option<U>> = Vec::new();
        results.resize_with(total, || None);

        {
            let items_ptr = SendPtr(slots.as_mut_ptr());
            let results_ptr = SendPtr(results.as_mut_ptr());
            let worker = |i: usize| {
                // SAFETY: slot `i` is taken and written by exactly one
                // thread; both vectors outlive the blocking `run`.
                let item = unsafe { (*items_ptr.get().add(i)).take() }.expect("item present");
                let r = f(item);
                unsafe { *results_ptr.get().add(i) = Some(r) };
            };
            self.run(total, parallelism, &worker);
        }

        results
            .into_iter()
            .map(|r| r.expect("every item processed"))
            .collect()
    }
}

/// A raw pointer that asserts cross-thread usability; the pool's
/// disjoint-index discipline makes each use race-free.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let call = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue.retain(|c| !c.exhausted());
                // First call with strand capacity left: concurrent
                // submissions (one per active pipeline stage) each get at
                // most their own parallelism budget, so stages share the
                // pool without one oversubscribing it.
                if let Some(call) = queue.iter().find(|c| c.try_join()) {
                    break Arc::clone(call);
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        call.work();
        call.leave();
        // A freed strand slot may unblock peers waiting to join another
        // call; wake them to re-scan.
        let _guard = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        shared.work_cv.notify_all();
    }
}

/// Applies `f` to every item, spreading the work across the shared
/// [`WorkerPool`] with at most `workers` concurrent strands, and returns
/// results in input order.
///
/// Falls back to a plain sequential map when `workers <= 1` or the input
/// is small enough that cross-thread handoff would dominate.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    const MIN_ITEMS_PER_WORKER: usize = 32;
    let n = items.len();
    let workers = workers.clamp(1, n.max(1)).min(n / MIN_ITEMS_PER_WORKER + 1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    WorkerPool::shared().map_vec(items, workers, f)
}

/// The number of workers to use by default: the machine's available
/// parallelism, as the paper's servers use all cores.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = parallel_map(input.clone(), 4, |x| x * 2);
        let want: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches() {
        let input: Vec<u32> = (0..100).collect();
        assert_eq!(
            parallel_map(input.clone(), 1, |x| x + 1),
            parallel_map(input, 8, |x| x + 1)
        );
    }

    #[test]
    fn small_inputs_do_not_over_spawn() {
        assert_eq!(parallel_map(vec![1, 2, 3], 8, |x| x), vec![1, 2, 3]);
    }

    #[test]
    fn large_parallel_equals_sequential() {
        let input: Vec<u64> = (0..10_000).collect();
        let seq: u64 = input.iter().map(|x| x % 7).sum();
        let par: u64 = parallel_map(input, default_workers(), |x| x % 7)
            .into_iter()
            .sum();
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Two consecutive calls must not deadlock or leak work between
        // rounds — the shared pool's whole point.
        let a = parallel_map((0..500u64).collect::<Vec<_>>(), 4, |x| x + 1);
        let b = parallel_map((0..500u64).collect::<Vec<_>>(), 4, |x| x + 2);
        assert_eq!(a[499], 500);
        assert_eq!(b[499], 501);
    }

    #[test]
    fn map_strides_mut_mutates_disjoint_windows() {
        let pool = WorkerPool::shared();
        let mut data = vec![0u8; 64 * 10 + 7]; // final partial window
        let results = pool.map_strides_mut(&mut data, 64, usize::MAX, |i, window| {
            for b in window.iter_mut() {
                *b = i as u8 + 1;
            }
            window.len()
        });
        assert_eq!(results.len(), 11);
        assert_eq!(results[10], 7, "partial tail window length");
        for (i, chunk) in data.chunks(64).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1), "window {i}");
        }
    }

    #[test]
    fn map_stride_chunks_mut_covers_every_slot() {
        let pool = WorkerPool::shared();
        let mut data = vec![0u8; 16 * 103]; // 103 slots, chunk 8 → partial tail
        let results = pool.map_stride_chunks_mut(&mut data, 16, 8, usize::MAX, |first, window| {
            let slots = window.len() / 16;
            for (j, slot) in window.chunks_mut(16).enumerate() {
                slot.fill((first + j) as u8);
            }
            (first..first + slots).collect()
        });
        assert_eq!(results, (0..103).collect::<Vec<_>>());
        for (i, slot) in data.chunks(16).enumerate() {
            assert!(slot.iter().all(|&b| b == i as u8), "slot {i}");
        }
    }

    #[test]
    fn concurrent_submissions_from_stage_threads_all_complete() {
        // Several "stages" submit to the shared pool at once, as the
        // streaming round scheduler's concurrent hops do; every call must
        // finish and respect its own parallelism budget.
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|stage| {
                    s.spawn(move || {
                        parallel_map((0..2_000u64).collect::<Vec<_>>(), 2, move |x| {
                            x.wrapping_mul(stage + 1) % 97
                        })
                        .into_iter()
                        .sum::<u64>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        for (stage, got) in results.iter().enumerate() {
            let want: u64 = (0..2_000u64)
                .map(|x| x.wrapping_mul(stage as u64 + 1) % 97)
                .sum();
            assert_eq!(*got, want, "stage {stage}");
        }
    }

    #[test]
    fn dedicated_pool_shuts_down_cleanly() {
        let pool = WorkerPool::new(2);
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = pool.map_vec(items, usize::MAX, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 256);
        assert_eq!(counter.load(Ordering::Relaxed), 256);
        drop(pool); // joins workers; must not hang
    }

    #[test]
    fn worker_panic_propagates_with_message() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..200u64).collect::<Vec<_>>(), 4, |x| {
                assert!(x != 100, "boom at index 100");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        // Sequential fallback propagates the raw payload (&str); the
        // pooled path re-raises with a formatted String. Both must carry
        // the original text.
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_default();
        assert!(
            msg.contains("boom at index 100"),
            "original panic message preserved, got: {msg}"
        );
    }
}
