//! Scoped-thread data parallelism for server-side cryptography.
//!
//! The paper's servers are 36-core machines that parallelise the
//! per-request Diffie-Hellman work ("Each 36-core machine can perform
//! about 340,000 Curve25519 Diffie-Hellman operations per second", §8.2).
//! [`parallel_map`] gives our simulated servers the same shape: it splits
//! a batch across a fixed worker count with order-preserving results and
//! no dependencies beyond `std::thread::scope`.

/// Applies `f` to every item, splitting the work across `workers` OS
/// threads, and returns results in input order.
///
/// Falls back to a plain sequential map when `workers <= 1` or the input
/// is small enough that spawning would dominate.
pub fn parallel_map<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    const MIN_ITEMS_PER_WORKER: usize = 32;
    let n = items.len();
    let workers = workers.clamp(1, n.max(1)).min(n / MIN_ITEMS_PER_WORKER + 1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunk the input, keeping per-chunk order; reassemble in order.
    let chunk_size = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }

    let f = &f;
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// The number of workers to use by default: the machine's available
/// parallelism, as the paper's servers use all cores.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = parallel_map(input.clone(), 4, |x| x * 2);
        let want: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches() {
        let input: Vec<u32> = (0..100).collect();
        assert_eq!(
            parallel_map(input.clone(), 1, |x| x + 1),
            parallel_map(input, 8, |x| x + 1)
        );
    }

    #[test]
    fn small_inputs_do_not_over_spawn() {
        // Just a smoke test: 3 items with 8 workers must still work.
        assert_eq!(parallel_map(vec![1, 2, 3], 8, |x| x), vec![1, 2, 3]);
    }

    #[test]
    fn large_parallel_equals_sequential() {
        let input: Vec<u64> = (0..10_000).collect();
        let seq: u64 = input.iter().map(|x| x % 7).sum();
        let par: u64 = parallel_map(input, default_workers(), |x| x % 7)
            .into_iter()
            .sum();
        assert_eq!(seq, par);
    }
}
