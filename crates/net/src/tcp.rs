//! The framed TCP backend: blocking socket-per-link.
//!
//! Each deployment link maps to one TCP connection carrying
//! length-prefixed [`Frame`]s: a 4-byte little-endian body length
//! (rejected above [`MAX_FRAME_LEN`] *before* the body is read, so a
//! corrupt peer cannot force a giant allocation) followed by the frame
//! body. No tokio in the vendored-shim environment — connections block,
//! and a node that terminates two links funnels them into one event
//! stream with a reader thread per connection (see the core node
//! runtime), the "small std-thread reactor" the design allows.
//!
//! Connections open with a [`Hello`] exchange: the initiator announces
//! the [`LinkId`] it believes the connection carries plus a digest of
//! its deployment config, and the acceptor verifies both before
//! answering with its own. Mis-wired processes (wrong port, wrong
//! config file, wrong chain position) therefore fail at connect time
//! with a named mismatch instead of corrupting a round.

use crate::error::Error;
use crate::transport::Transport;
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use vuvuzela_wire::{Frame, FrameError, Hello, LinkId, MAX_FRAME_LEN};

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// IO failures, attributed to `link`.
pub fn write_frame<W: Write>(w: &mut W, link: LinkId, frame: &Frame) -> Result<(), Error> {
    let body = frame.encode();
    debug_assert!(body.len() <= MAX_FRAME_LEN, "sender-side oversized frame");
    let io = |source| Error::Io {
        link,
        op: "write",
        source,
    };
    w.write_all(&(body.len() as u32).to_le_bytes())
        .map_err(io)?;
    w.write_all(&body).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one length-prefixed frame, enforcing [`MAX_FRAME_LEN`] on the
/// prefix before touching the body.
///
/// # Errors
///
/// [`Error::Disconnected`] on clean EOF at a frame boundary,
/// [`Error::Frame`] for oversized or undecodable frames, [`Error::Io`]
/// for everything else.
pub fn read_frame<R: Read>(r: &mut R, link: LinkId) -> Result<Frame, Error> {
    let mut prefix = [0u8; 4];
    if let Err(source) = r.read_exact(&mut prefix) {
        return Err(if source.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Disconnected { link }
        } else {
            Error::Io {
                link,
                op: "read",
                source,
            }
        });
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::Frame {
            link,
            source: FrameError::Oversized { len: len as u64 },
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|source| Error::Io {
        link,
        op: "read",
        source,
    })?;
    Frame::decode(&body)
        .map(Ok)
        .unwrap_or_else(|source| Err(Error::Frame { link, source }))
}

/// Retry schedule for [`TcpTransport::connect`]: jittered exponential
/// backoff under a total deadline.
///
/// Processes of one deployment start in arbitrary order, so refused
/// connections are expected during bring-up and retried. A fixed short
/// sleep (the old behaviour) makes every waiting process hammer the
/// listener in lock-step; the backoff doubles the delay per failed
/// attempt up to `cap` and scales each delay by a deterministic jitter
/// in `[0.5, 1.0)` derived from `seed` and the link id, so co-started
/// peers spread out without any shared state. Deployments surface the
/// deadline through their config (see the deploy layer's
/// `connect_timeout_ms`).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total time to keep retrying refused connections.
    pub deadline: Duration,
    /// Delay after the first failed attempt (before jitter).
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Jitter seed; mixed with the link id so each link of one process
    /// de-correlates too.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 30 s deadline, 25 ms base, 1 s cap — the old fixed loop's
    /// envelope with backoff inside it.
    fn default() -> RetryPolicy {
        RetryPolicy {
            deadline: Duration::from_secs(30),
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a different total deadline.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> RetryPolicy {
        RetryPolicy {
            deadline,
            ..RetryPolicy::default()
        }
    }

    /// The jittered delay before retry number `attempt` (0-based).
    fn delay(&self, link: LinkId, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // splitmix64: good avalanche from a trivially correlated input,
        // no dependency on a rand crate (net stays rand-free).
        let mut z = self
            .seed
            .wrapping_add(link.code())
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Scale into [0.5, 1.0): half the delay is guaranteed, the
        // other half is where peers spread out.
        let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(jitter)
    }
}

/// One end of one deployment link over TCP.
pub struct TcpTransport {
    link: LinkId,
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
}

impl TcpTransport {
    /// Connects to the peer listening at `addr`, retrying refused
    /// connections per `policy` (processes of one deployment start in
    /// arbitrary order), then performs the [`Hello`] exchange as
    /// initiator.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when no connection is established within the
    /// policy's deadline; [`Error::Handshake`] when the peer disagrees
    /// about the link or the config digest.
    pub fn connect<A: ToSocketAddrs + Clone>(
        addr: A,
        link: LinkId,
        config_digest: [u8; 32],
        policy: &RetryPolicy,
    ) -> Result<TcpTransport, Error> {
        let deadline = Instant::now() + policy.deadline;
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => break stream,
                Err(source) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Error::Io {
                            link,
                            op: "connect",
                            source,
                        });
                    }
                    let delay = policy.delay(link, attempt).min(deadline - now);
                    attempt = attempt.saturating_add(1);
                    std::thread::sleep(delay);
                }
            }
        };
        let transport = TcpTransport::from_stream(stream, link)?;
        transport.send(Frame::Hello(Hello {
            link,
            config_digest,
        }))?;
        transport.expect_hello(config_digest)?;
        Ok(transport)
    }

    /// Accepts one connection on `listener` and performs the [`Hello`]
    /// exchange as acceptor: the initiator speaks first, this end
    /// verifies and answers.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on accept failure; [`Error::Handshake`] when the
    /// initiator disagrees about the link or the config digest.
    pub fn accept(
        listener: &TcpListener,
        link: LinkId,
        config_digest: [u8; 32],
    ) -> Result<TcpTransport, Error> {
        let (stream, _peer) = listener.accept().map_err(|source| Error::Io {
            link,
            op: "accept",
            source,
        })?;
        let transport = TcpTransport::from_stream(stream, link)?;
        transport.expect_hello(config_digest)?;
        transport.send(Frame::Hello(Hello {
            link,
            config_digest,
        }))?;
        Ok(transport)
    }

    /// Wraps an established stream (no handshake).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the stream cannot be cloned into separate
    /// read/write halves.
    pub fn from_stream(stream: TcpStream, link: LinkId) -> Result<TcpTransport, Error> {
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone().map_err(|source| Error::Io {
            link,
            op: "clone",
            source,
        })?;
        Ok(TcpTransport {
            link,
            reader: Mutex::new(BufReader::new(stream)),
            writer: Mutex::new(BufWriter::new(write_half)),
        })
    }

    /// Reads one frame and verifies it is the peer's matching [`Hello`].
    fn expect_hello(&self, config_digest: [u8; 32]) -> Result<(), Error> {
        match self.recv()? {
            Frame::Hello(hello) if hello.link != self.link => Err(Error::Handshake {
                link: self.link,
                reason: format!("peer believes this connection is {}", hello.link),
            }),
            Frame::Hello(hello) if hello.config_digest != config_digest => Err(Error::Handshake {
                link: self.link,
                reason: "config digest mismatch (peers run different deployment configs)"
                    .to_string(),
            }),
            Frame::Hello(_) => Ok(()),
            other => Err(Error::Handshake {
                link: self.link,
                reason: format!("expected hello, got {other:?}"),
            }),
        }
    }
}

impl Transport for TcpTransport {
    fn link_id(&self) -> LinkId {
        self.link
    }

    fn send(&self, frame: Frame) -> Result<(), Error> {
        write_frame(&mut *self.writer.lock(), self.link, &frame)
    }

    fn recv(&self) -> Result<Frame, Error> {
        read_frame(&mut *self.reader.lock(), self.link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use vuvuzela_wire::{BatchFrame, RoundId, RoundType};

    fn digest(fill: u8) -> [u8; 32] {
        [fill; 32]
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy::default();
        let base = Duration::from_millis(25);
        for attempt in 0..20 {
            let d = policy.delay(LinkId::Hop(0), attempt);
            let exp = base.saturating_mul(1u32 << attempt.min(16)).min(policy.cap);
            assert!(d >= exp / 2 && d < exp, "jitter stays in [0.5, 1.0)·exp");
            assert!(d <= policy.cap, "cap bounds every delay");
            assert_eq!(
                d,
                policy.delay(LinkId::Hop(0), attempt),
                "same seed, same schedule"
            );
        }
        // Different links de-correlate even under one seed.
        assert_ne!(
            policy.delay(LinkId::Hop(0), 3),
            policy.delay(LinkId::Hop(1), 3)
        );
    }

    #[test]
    fn connect_deadline_expires_quickly_on_refused_port() {
        // Bind-then-drop to get a port with (very likely) no listener.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let start = Instant::now();
        let result = TcpTransport::connect(
            ("127.0.0.1", port),
            LinkId::Hop(0),
            digest(0),
            &RetryPolicy::with_deadline(Duration::from_millis(100)),
        );
        assert!(matches!(result, Err(Error::Io { op: "connect", .. })));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline is honoured"
        );
    }

    #[test]
    fn framed_io_roundtrips() {
        let frame = Frame::Batch(BatchFrame {
            link: LinkId::Hop(2),
            round: RoundId(9),
            round_type: RoundType::Conversation,
            num_drops: 0,
            backward: true,
            stride: 8,
            width: 8,
            count: 1,
            payload: vec![3; 8],
            trailer: vec![1, 2, 3],
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, LinkId::Hop(2), &frame).expect("write");
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, LinkId::Hop(2)).expect("read"),
            frame
        );
        // Clean EOF at the frame boundary is a disconnect, not an error.
        assert!(matches!(
            read_frame(&mut cursor, LinkId::Hop(2)),
            Err(Error::Disconnected { .. })
        ));
    }

    #[test]
    fn oversized_prefix_rejected_before_body() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        // No body follows — the reader must reject on the prefix alone.
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor, LinkId::Clients),
            Err(Error::Frame {
                source: FrameError::Oversized { .. },
                ..
            })
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let body = Frame::Bye.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32 + 4).to_le_bytes());
        bytes.extend_from_slice(&body);
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor, LinkId::Clients),
            Err(Error::Io { .. })
        ));
    }

    #[test]
    fn loopback_handshake_and_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let t = TcpTransport::accept(&listener, LinkId::Hop(0), digest(7)).expect("accept");
            let got = t.recv().expect("recv");
            t.send(got).expect("echo");
            t.send(Frame::Bye).expect("bye");
        });
        let client = TcpTransport::connect(
            addr,
            LinkId::Hop(0),
            digest(7),
            &RetryPolicy::with_deadline(Duration::from_secs(10)),
        )
        .expect("connect");
        let frame = Frame::Batch(BatchFrame {
            link: LinkId::Hop(0),
            round: RoundId(1),
            round_type: RoundType::Dialing,
            num_drops: 4,
            backward: false,
            stride: 2,
            width: 2,
            count: 3,
            payload: vec![5; 6],
            trailer: Vec::new(),
        });
        client.send(frame.clone()).expect("send");
        assert_eq!(client.recv().expect("echo"), frame);
        assert!(matches!(client.recv(), Ok(Frame::Bye)));
        assert!(matches!(client.recv(), Err(Error::Disconnected { .. })));
        server.join().expect("server thread");
    }

    #[test]
    fn digest_mismatch_fails_handshake() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server =
            std::thread::spawn(move || TcpTransport::accept(&listener, LinkId::Hop(0), digest(1)));
        let client = TcpTransport::connect(
            addr,
            LinkId::Hop(0),
            digest(2),
            &RetryPolicy::with_deadline(Duration::from_secs(10)),
        );
        let server_result = server.join().expect("thread");
        assert!(matches!(server_result, Err(Error::Handshake { .. })));
        // The acceptor drops the connection without answering, so the
        // initiator sees either the explicit mismatch or a dead peer.
        assert!(client.is_err());
    }

    #[test]
    fn link_mismatch_fails_handshake() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server =
            std::thread::spawn(move || TcpTransport::accept(&listener, LinkId::Hop(1), digest(1)));
        let client = TcpTransport::connect(
            addr,
            LinkId::Hop(2),
            digest(1),
            &RetryPolicy::with_deadline(Duration::from_secs(10)),
        );
        let server_result = server.join().expect("thread");
        match server_result {
            Err(Error::Handshake { reason, .. }) => {
                assert!(
                    reason.contains("server1->server2"),
                    "names the peer's claim"
                );
            }
            Err(other) => panic!("expected handshake failure, got {other}"),
            Ok(_) => panic!("handshake unexpectedly succeeded"),
        }
        assert!(client.is_err());
    }
}
