//! The transport seam: one trait, two backends.
//!
//! A [`Transport`] is one end of one deployment link, moving
//! [`Frame`]s between two protocol processes. Everything above this
//! seam — the mix servers, the entry, the launch harness — is written
//! against the trait, so the same node code runs
//!
//! * **in process** over [`MemoryEndpoint`] pairs, which carry frames
//!   over std mpsc channels and route every batch through the same
//!   byte-metered, tappable [`Link`] the simulator uses (meter first,
//!   then tap — the adversary cannot hide traffic from our own
//!   accounting), and
//! * **across processes** over [`crate::tcp::TcpTransport`], the framed
//!   length-prefixed TCP backend.
//!
//! Both return the unified [`Error`]; the in-memory backend is
//! infallible by construction for everything except a dropped peer,
//! but its signatures stay honest about what a real wire can do.

use crate::error::Error;
use crate::link::{Direction, Link};
use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::Arc;
use vuvuzela_wire::{BatchFrame, Frame, LinkId};

/// One end of one deployment link.
///
/// `send`/`recv` take `&self` (backends use internal locking) so a node
/// can hold its upstream and downstream ends without juggling mutable
/// borrows, and reader threads can share an endpoint behind an `Arc`.
pub trait Transport: Send + Sync {
    /// Which deployment link this endpoint terminates.
    fn link_id(&self) -> LinkId;

    /// Sends one frame to the peer.
    ///
    /// # Errors
    ///
    /// [`Error::Disconnected`] when the peer is gone; TCP backends also
    /// surface IO failures.
    fn send(&self, frame: Frame) -> Result<(), Error>;

    /// Receives the next frame from the peer, blocking until one
    /// arrives.
    ///
    /// # Errors
    ///
    /// [`Error::Disconnected`] at orderly end-of-stream; TCP backends
    /// also surface IO and frame-decode failures.
    fn recv(&self) -> Result<Frame, Error>;
}

/// Runs a batch frame through a [`Link`]: meters it (attributed to its
/// round and direction), and — only when an adversary tap is attached —
/// pays the per-message conversion, lets the tap interfere, and
/// rebuilds the flat payload with resized entries zero-filled, exactly
/// like the in-process chain's `transmit_buf`. Returns how many entries
/// the tap resized.
pub fn batch_through_link(link: &Link, batch: &mut BatchFrame) -> u64 {
    let direction = if batch.backward {
        Direction::Backward
    } else {
        Direction::Forward
    };
    let round = batch.round.0;
    let width = batch.width as usize;
    let stride = batch.stride as usize;
    link.record(
        round,
        direction,
        u64::from(batch.count),
        (u64::from(batch.count)) * batch.width as u64,
    );
    if !link.has_tap() || stride == 0 {
        return 0;
    }
    let mut msgs: Vec<Vec<u8>> = batch
        .payload
        .chunks(stride)
        .map(|slot| slot[..width].to_vec())
        .collect();
    link.tap_intercept(round, direction, &mut msgs);
    let mut payload = vec![0u8; msgs.len() * stride];
    let mut resized = 0;
    for (i, msg) in msgs.iter().enumerate() {
        if msg.len() == width {
            payload[i * stride..i * stride + width].copy_from_slice(msg);
        } else {
            resized += 1;
        }
    }
    batch.count = msgs.len() as u32;
    batch.payload = payload;
    resized
}

/// The in-memory backend: one end of a bidirectional in-process link.
///
/// Created in pairs by [`memory_pair`]; both ends share one [`Link`],
/// whose meters and optional tap see every batch frame either end
/// sends.
pub struct MemoryEndpoint {
    link: Arc<Link>,
    tx: Mutex<mpsc::Sender<Frame>>,
    rx: Mutex<mpsc::Receiver<Frame>>,
}

/// Creates the two ends of one in-memory link. Frames sent on either
/// end arrive at the other in order; batch frames are metered (and
/// tapped, when a tap is attached) on the shared `link` at send time.
#[must_use]
pub fn memory_pair(link: Arc<Link>) -> (MemoryEndpoint, MemoryEndpoint) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        MemoryEndpoint {
            link: link.clone(),
            tx: Mutex::new(a_tx),
            rx: Mutex::new(a_rx),
        },
        MemoryEndpoint {
            link,
            tx: Mutex::new(b_tx),
            rx: Mutex::new(b_rx),
        },
    )
}

impl MemoryEndpoint {
    /// The shared link (metering, tap attachment).
    #[must_use]
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }
}

impl Transport for MemoryEndpoint {
    fn link_id(&self) -> LinkId {
        self.link.id()
    }

    fn send(&self, mut frame: Frame) -> Result<(), Error> {
        if let Frame::Batch(batch) = &mut frame {
            let _resized = batch_through_link(&self.link, batch);
        }
        self.tx.lock().send(frame).map_err(|_| Error::Disconnected {
            link: self.link.id(),
        })
    }

    fn recv(&self) -> Result<Frame, Error> {
        self.rx.lock().recv().map_err(|_| Error::Disconnected {
            link: self.link.id(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Tap, TapContext};
    use vuvuzela_wire::{RoundId, RoundType};

    fn batch(count: u32, backward: bool) -> BatchFrame {
        BatchFrame {
            link: LinkId::Hop(0),
            round: RoundId(5),
            round_type: RoundType::Conversation,
            num_drops: 0,
            backward,
            stride: 4,
            width: 3,
            count,
            payload: (0..count as usize * 4).map(|b| b as u8).collect(),
            trailer: Vec::new(),
        }
    }

    #[test]
    fn pair_carries_frames_both_ways_and_meters() {
        let link = Arc::new(Link::new(LinkId::Hop(0)));
        let (up, down) = memory_pair(link.clone());
        assert_eq!(up.link_id(), LinkId::Hop(0));

        up.send(Frame::Batch(batch(2, false))).expect("send");
        down.send(Frame::Batch(batch(1, true))).expect("send back");
        up.send(Frame::Bye).expect("bye");

        assert!(matches!(down.recv(), Ok(Frame::Batch(b)) if b.count == 2));
        assert!(matches!(down.recv(), Ok(Frame::Bye)));
        assert!(matches!(up.recv(), Ok(Frame::Batch(b)) if b.backward));

        // Metered like transmit_buf: count × logical width, per direction.
        assert_eq!(link.forward_meter().messages(), 2);
        assert_eq!(link.forward_meter().bytes(), 6);
        assert_eq!(link.backward_meter().bytes(), 3);
        assert_eq!(link.round_traffic(5, Direction::Forward), (2, 6));
    }

    #[test]
    fn dropped_peer_reports_disconnected() {
        let link = Arc::new(Link::new(LinkId::Clients));
        let (up, down) = memory_pair(link);
        drop(down);
        assert!(matches!(
            up.send(Frame::Bye),
            Err(Error::Disconnected { .. })
        ));
        assert!(matches!(up.recv(), Err(Error::Disconnected { .. })));
    }

    /// A tap that truncates the batch and resizes one entry.
    struct Mangle;
    impl Tap for Mangle {
        fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
            assert_eq!(ctx.link, LinkId::Hop(0));
            assert_eq!(ctx.round, 5);
            batch.truncate(2);
            batch[1] = vec![7; 99];
        }
    }

    #[test]
    fn attached_tap_sees_and_mutates_batches() {
        let mut link = Link::new(LinkId::Hop(0));
        link.attach_tap(Arc::new(parking_lot::Mutex::new(Mangle)));
        let (up, down) = memory_pair(Arc::new(link));

        up.send(Frame::Batch(batch(3, false))).expect("send");
        let Ok(Frame::Batch(got)) = down.recv() else {
            panic!("expected batch");
        };
        assert_eq!(got.count, 2, "tap truncated the batch");
        assert_eq!(&got.payload[..3], &[0, 1, 2], "entry 0 intact");
        assert_eq!(&got.payload[4..7], &[0, 0, 0], "resized entry zeroed");
    }
}
