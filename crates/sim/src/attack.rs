//! The transcript-level traffic-analysis attack matrix: a trained
//! distinguisher graded against the composed (ε′, δ′) bound.
//!
//! Each [`AttackCase`] defines a pair of *adjacent worlds* — twin
//! scenarios identical in every step except one target user's
//! behaviour: in the "talking" world client 0 dials client 1 and they
//! hold an active conversation; in the "idle" world both sit as cover
//! traffic. Both worlds run over many seeds; the adversary sees only
//! the rendered transcripts, reconstructed through
//! [`vuvuzela_adversary::TranscriptView`] (which discards the
//! ground-truth lines). A [`ThresholdDetector`] trains on the first
//! half of the seeds and is scored on the held-out second half, and
//! the verdict compares its advantage against
//! `max_advantage(ε′, δ′)` with the budget read from the transcript's
//! own ledger lines plus a Hoeffding slack for the finite sample.
//!
//! The matrix is falsifiable in both directions:
//!
//! * the **honest** case (correctly sized sampled noise) must come in
//!   *under* the bound — `advantage + slack ≤ max_advantage(ε′, δ′)`;
//! * the **noise-off** and **undersized-µ** negative controls claim
//!   the same budget while drawing no (or far too little) cover
//!   traffic, and the *same* detector must *beat* the claimed bound —
//!   proving the harness has the teeth to catch a broken deployment.

use vuvuzela_adversary::detector::split_by_seed;
use vuvuzela_adversary::{pair_activity_feature, ThresholdDetector, TranscriptView};
use vuvuzela_dp::{ComposedPrivacy, NoiseDistribution, NoiseMode};

use crate::scenario::{LedgerNoise, RoundPlan, Scale, Scenario, Step};
use crate::simulator::{run_scenario, SimError, SimReport};

/// Grading confidence for the Hoeffding slack: each gate's verdict
/// holds except with probability ≤ α over the sampling noise.
pub const ATTACK_ALPHA: f64 = 0.01;

/// What a case models about the deployment's noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackControl {
    /// Correctly sized sampled noise: the DP theorem applies and the
    /// detector must stay under the bound.
    Honest,
    /// [`NoiseMode::Off`]: the ledger still charges the configured
    /// (µ, b) budget but servers send zero cover traffic — the
    /// detector must beat the claimed bound.
    NoiseOff,
    /// Sampled noise with µ far below what the *claimed* ledger
    /// parameters require (the [`Scenario::ledger_noise`] override) —
    /// the detector must beat the claimed bound.
    UndersizedMu,
}

impl AttackControl {
    /// Stable artefact name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AttackControl::Honest => "honest",
            AttackControl::NoiseOff => "noise_off",
            AttackControl::UndersizedMu => "undersized_mu",
        }
    }
}

/// One twin-world attack experiment.
#[derive(Clone, Debug)]
pub struct AttackCase {
    /// Case name (artefact prefix).
    pub name: &'static str,
    /// Which deployment defect (if any) the case models.
    pub control: AttackControl,
    /// `true`: passes iff the detector stays within the bound.
    /// `false`: passes iff the detector exceeds it.
    pub expect_within_bound: bool,
    /// First seed; seed pair i runs both worlds at `base_seed + i`.
    pub base_seed: u64,
    /// Seeded twin runs per world. The first half trains, the second
    /// half is held out for the graded evaluation.
    pub seed_pairs: usize,
    /// Clients per world (target pair + background pair + cover).
    pub population: usize,
    /// Conversation rounds per run (feature samples per transcript).
    pub conversation_rounds: usize,
    /// Deployed conversation noise.
    pub conversation_noise: NoiseDistribution,
    /// Deployed dialing noise.
    pub dialing_noise: NoiseDistribution,
    /// How servers realise the deployed noise.
    pub noise_mode: NoiseMode,
    /// The claimed ledger override, for [`AttackControl::UndersizedMu`].
    pub ledger_noise: Option<LedgerNoise>,
}

/// The JSON-serialisable verdict of one attack case.
#[derive(Clone, Debug)]
pub struct AttackVerdict {
    /// Case name.
    pub name: String,
    /// Control kind (`honest`, `noise_off`, `undersized_mu`).
    pub control: String,
    /// The gate direction this case is asserted against.
    pub expect_within_bound: bool,
    /// Held-out trials (rounds × seeds × 2 worlds).
    pub trials: usize,
    /// Held-out accuracy of the trained detector.
    pub accuracy: f64,
    /// Held-out advantage `max(accuracy − ½, 0)`.
    pub advantage: f64,
    /// The trained threshold over [`pair_activity_feature`].
    pub threshold: i64,
    /// The trained orientation.
    pub talking_above: bool,
    /// Composed ε′ read from the transcripts' ledger lines.
    pub epsilon: f64,
    /// Composed δ′ read from the transcripts' ledger lines.
    pub delta: f64,
    /// `max_advantage(ε′, δ′)`.
    pub bound: f64,
    /// Hoeffding slack at [`ATTACK_ALPHA`] over the held-out trials.
    pub slack: f64,
    /// `advantage + slack ≤ bound`.
    pub within_bound: bool,
    /// `advantage > bound`.
    pub exceeds_bound: bool,
    /// The gate in this case's expected direction.
    pub passed: bool,
}

impl AttackVerdict {
    /// The verdict as a JSON object (the `sim_attack` artefact schema).
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name.clone(),
            "control": self.control.clone(),
            "expect_within_bound": self.expect_within_bound,
            "trials": self.trials as u64,
            "accuracy": self.accuracy,
            "advantage": self.advantage,
            "threshold": self.threshold,
            "talking_above": self.talking_above,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "bound": self.bound,
            "slack": self.slack,
            "within_bound": self.within_bound,
            "exceeds_bound": self.exceeds_bound,
            "passed": self.passed,
        })
    }
}

/// One executed attack case: the verdict plus a sample twin-transcript
/// pair (the first held-out seed) for artefact inspection.
#[derive(Debug)]
pub struct AttackOutcome {
    /// The graded verdict.
    pub verdict: AttackVerdict,
    /// The talking-world report of the first held-out seed.
    pub sample_talking: SimReport,
    /// The idle-world report of the same seed.
    pub sample_idle: SimReport,
}

impl AttackOutcome {
    /// Whether the case's gate held in its expected direction.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.verdict.passed
    }
}

/// The honest deployment's noise sizing. ε = 4/b per conversation
/// round wants a large b for a meaningful composed budget, while µ
/// only has to clear `b·ln(1/(2δ))`-ish for the per-round δ — so b is
/// set explicitly instead of the bundled matrix's µ/20 ratio. At
/// (µ=200, b=40) conversation and (µ=160, b=32) dialing, 4
/// conversation + 1 dialing rounds compose to ε′ ≈ 1.31,
/// δ′ ≈ 3.2e-2, `max_advantage` ≈ 0.32.
fn honest_conversation_noise() -> NoiseDistribution {
    NoiseDistribution::new(200.0, 40.0)
}

fn honest_dialing_noise() -> NoiseDistribution {
    NoiseDistribution::new(160.0, 32.0)
}

/// The bundled attack matrix: one honest case and the two negative
/// controls the acceptance gate demands.
#[must_use]
pub fn attack_matrix(scale: Scale) -> Vec<AttackCase> {
    let honest_pairs = match scale {
        Scale::Smoke => 24,
        Scale::Full => 80,
    };
    let control_pairs = match scale {
        Scale::Smoke => 30,
        Scale::Full => 60,
    };
    vec![
        AttackCase {
            name: "honest_sampled",
            control: AttackControl::Honest,
            expect_within_bound: true,
            base_seed: 0xA77AC4,
            seed_pairs: honest_pairs,
            population: 8,
            conversation_rounds: 4,
            conversation_noise: honest_conversation_noise(),
            dialing_noise: honest_dialing_noise(),
            noise_mode: NoiseMode::Sampled,
            ledger_noise: None,
        },
        AttackCase {
            name: "noise_off_control",
            control: AttackControl::NoiseOff,
            expect_within_bound: false,
            base_seed: 0x0FF,
            seed_pairs: control_pairs,
            population: 8,
            conversation_rounds: 4,
            // Same configured budget as the honest case — the ledger
            // charges it even though Off mode sends nothing.
            conversation_noise: honest_conversation_noise(),
            dialing_noise: honest_dialing_noise(),
            noise_mode: NoiseMode::Off,
            ledger_noise: None,
        },
        AttackCase {
            name: "undersized_mu_control",
            control: AttackControl::UndersizedMu,
            expect_within_bound: false,
            base_seed: 0x5A11,
            seed_pairs: control_pairs,
            population: 8,
            conversation_rounds: 4,
            // Servers actually draw µ = 1.5, b = 0.1 — real sampled
            // noise from the real mechanism, but ~100× too little for
            // the claimed budget: the claimed bound allows advantage
            // ≈ 0.32 and this noise leaves the detector ≈ 0.48.
            conversation_noise: NoiseDistribution::new(1.5, 0.1),
            dialing_noise: NoiseDistribution::new(1.5, 0.1),
            noise_mode: NoiseMode::Sampled,
            ledger_noise: Some(LedgerNoise {
                conversation: honest_conversation_noise(),
                dialing: honest_dialing_noise(),
            }),
        },
    ]
}

/// Builds one world of a case's twin pair. Both worlds share the seed
/// and every step except the target pair's behaviour: a background
/// pair (clients 2, 3) dials and idles in both, and in the talking
/// world clients 0 and 1 additionally dial, accept and hold an active
/// conversation through every conversation round.
#[must_use]
pub fn twin_scenario(case: &AttackCase, seed: u64, talking: bool) -> Scenario {
    let world = if talking { "talking" } else { "idle" };
    let mut s = Scenario::new(&format!("{}__{world}", case.name), seed);
    s.conversation_mu = case.conversation_noise.mu;
    s.conversation_b = Some(case.conversation_noise.b);
    s.dialing_mu = case.dialing_noise.mu;
    s.dialing_b = Some(case.dialing_noise.b);
    s.noise_mode = case.noise_mode;
    s.ledger_noise = case.ledger_noise;
    s.steps.push(Step::Join(case.population));
    // The background pair keeps the dialing round non-degenerate in
    // both worlds.
    s.steps.push(Step::Dial {
        caller: 2,
        callee: 3,
    });
    if talking {
        s.steps.push(Step::Dial {
            caller: 0,
            callee: 1,
        });
    }
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    if talking {
        s.steps.push(Step::Queue {
            from: 0,
            to: 1,
            body: b"target pair payload".to_vec(),
        });
    }
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation;
        case.conversation_rounds
    ]));
    s
}

/// Everything one world's seeded runs produce: per-seed feature
/// vectors (one [`pair_activity_feature`] per conversation round),
/// each transcript's composed budget, and the raw reports.
struct WorldRuns {
    per_seed: Vec<Vec<i64>>,
    budgets: Vec<ComposedPrivacy>,
    reports: Vec<SimReport>,
}

/// Runs every seeded twin of one world.
fn run_world(case: &AttackCase, talking: bool) -> Result<WorldRuns, SimError> {
    let mut per_seed = Vec::with_capacity(case.seed_pairs);
    let mut budgets = Vec::with_capacity(case.seed_pairs);
    let mut reports = Vec::with_capacity(case.seed_pairs);
    for i in 0..case.seed_pairs {
        let seed = case.base_seed.wrapping_add(i as u64);
        let report = run_scenario(&twin_scenario(case, seed, talking))?;
        let view = TranscriptView::parse(&report.transcript.render())
            .map_err(|e| SimError::Attack(format!("transcript parse: {e}")))?;
        let features: Vec<i64> = view
            .conversation_rounds()
            .filter_map(|r| r.counts)
            .map(|c| pair_activity_feature(c.m1, c.m2))
            .collect();
        if features.len() != case.conversation_rounds {
            return Err(SimError::Attack(format!(
                "seed {seed}: expected {} observable conversation rounds, got {}",
                case.conversation_rounds,
                features.len()
            )));
        }
        budgets.push(view.composed_budget());
        per_seed.push(features);
        reports.push(report);
    }
    Ok(WorldRuns {
        per_seed,
        budgets,
        reports,
    })
}

/// Runs one attack case end to end: both worlds over every seed, the
/// train/held-out split, detector fitting, and the bound comparison.
///
/// # Errors
///
/// Propagates the first simulation or transcript-parse failure.
///
/// # Panics
///
/// Panics if the twin transcripts disagree on the composed budget —
/// adjacent worlds run the same round schedule, so their ledgers must
/// match to the bit.
pub fn run_attack_case(case: &AttackCase) -> Result<AttackOutcome, SimError> {
    assert!(
        case.seed_pairs >= 2,
        "need at least one train and one held-out seed"
    );
    let mut talking = run_world(case, true)?;
    let mut idle = run_world(case, false)?;

    let budget = talking.budgets[0];
    for other in talking.budgets.iter().chain(&idle.budgets) {
        assert!(
            (other.epsilon - budget.epsilon).abs() < 1e-12
                && (other.delta - budget.delta).abs() < 1e-12,
            "twin transcripts disagree on the composed budget: {budget:?} vs {other:?}"
        );
    }

    let (train_talking, test_talking) = split_by_seed(&talking.per_seed);
    let (train_idle, test_idle) = split_by_seed(&idle.per_seed);
    let detector = ThresholdDetector::train(&train_talking, &train_idle);
    let outcome = detector.evaluate(&test_talking, &test_idle);
    let grade = outcome.grade(budget.epsilon, budget.delta, ATTACK_ALPHA);

    let passed = if case.expect_within_bound {
        grade.within_bound
    } else {
        grade.exceeds_bound
    };
    let verdict = AttackVerdict {
        name: case.name.to_string(),
        control: case.control.name().to_string(),
        expect_within_bound: case.expect_within_bound,
        trials: outcome.trials,
        accuracy: outcome.accuracy,
        advantage: outcome.advantage,
        threshold: detector.threshold,
        talking_above: detector.talking_above,
        epsilon: budget.epsilon,
        delta: budget.delta,
        bound: grade.bound,
        slack: grade.slack,
        within_bound: grade.within_bound,
        exceeds_bound: grade.exceeds_bound,
        passed,
    };
    // Keep the first held-out seed's twin pair as the inspectable
    // artefact.
    let held_out = case.seed_pairs / 2;
    Ok(AttackOutcome {
        verdict,
        sample_talking: talking.reports.swap_remove(held_out),
        sample_idle: idle.reports.swap_remove(held_out),
    })
}
