//! Runs the transcript-level attack matrix — a trained twin-world
//! distinguisher graded against the composed (ε′, δ′) bound — and
//! writes the JSON verdicts plus one sample twin-transcript pair per
//! case to an output directory.
//!
//! ```text
//! sim_attack [--full] [OUT_DIR]
//! ```
//!
//! * `OUT_DIR` defaults to `sim_results/attack`.
//! * `--full` runs more seed pairs per case (tighter Hoeffding slack,
//!   minutes of CPU). Default is the smoke scale CI runs.
//!
//! Artefacts:
//!
//! * `verdicts.json` — an array of per-case verdict objects:
//!   `{name, control, expect_within_bound, trials, accuracy,
//!   advantage, threshold, talking_above, epsilon, delta, bound,
//!   slack, within_bound, exceeds_bound, passed}`.
//! * `transcript_<case>_talking.txt` / `transcript_<case>_idle.txt` —
//!   the first held-out seed's twin pair, for inspection.
//!
//! Exit status is non-zero if any case fails its gate: the honest
//! deployment's held-out advantage (plus slack) escaping the bound, or
//! a negative control (noise off, undersized µ) *failing to beat* the
//! bound it falsely claims.

use vuvuzela_sim::{attack_matrix, run_attack_case, Scale};

fn main() {
    let mut scale = Scale::Smoke;
    let mut out_dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            scale = Scale::Full;
        } else if arg.starts_with("--") {
            eprintln!("sim_attack: unknown flag {arg}\nusage: sim_attack [--full] [OUT_DIR]");
            std::process::exit(2);
        } else if out_dir.is_some() {
            eprintln!("sim_attack: more than one OUT_DIR\nusage: sim_attack [--full] [OUT_DIR]");
            std::process::exit(2);
        } else {
            out_dir = Some(arg);
        }
    }
    let out_dir = out_dir.unwrap_or_else(|| String::from("sim_results/attack"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut verdicts = Vec::new();
    let mut failed = false;
    for case in attack_matrix(scale) {
        let outcome = match run_attack_case(&case) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("[sim-attack] {}: RUN FAILED: {e}", case.name);
                failed = true;
                continue;
            }
        };
        let v = &outcome.verdict;
        println!(
            "[sim-attack] {}: {} trials, accuracy {:.4}, advantage {:.4} \
             (slack {:.4}) vs bound {:.4} (eps {:.4}, delta {:.3e}) -> {}",
            v.name,
            v.trials,
            v.accuracy,
            v.advantage,
            v.slack,
            v.bound,
            v.epsilon,
            v.delta,
            if v.passed { "pass" } else { "FAIL" }
        );
        if !v.passed {
            if v.expect_within_bound {
                eprintln!(
                    "[sim-attack] {}: DETECTOR BEAT THE HONEST BOUND \
                     (advantage {:.4} + slack {:.4} > {:.4})",
                    v.name, v.advantage, v.slack, v.bound
                );
            } else {
                eprintln!(
                    "[sim-attack] {}: NEGATIVE CONTROL FAILED TO TRIP \
                     (advantage {:.4} <= bound {:.4} — the harness lost its teeth)",
                    v.name, v.advantage, v.bound
                );
            }
            failed = true;
        }
        let name = &v.name;
        std::fs::write(
            format!("{out_dir}/transcript_{name}_talking.txt"),
            outcome.sample_talking.transcript.render(),
        )
        .expect("write talking transcript");
        std::fs::write(
            format!("{out_dir}/transcript_{name}_idle.txt"),
            outcome.sample_idle.transcript.render(),
        )
        .expect("write idle transcript");
        verdicts.push(v.to_json());
    }
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Array(verdicts)).expect("render verdicts");
    std::fs::write(format!("{out_dir}/verdicts.json"), json).expect("write verdicts");
    if failed {
        std::process::exit(1);
    }
}
