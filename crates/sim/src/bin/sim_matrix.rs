//! Runs the bundled deployment-scenario matrix and writes each
//! scenario's canonical transcript (plus a hash manifest) to an output
//! directory.
//!
//! ```text
//! sim_matrix [--full] [OUT_DIR]
//! ```
//!
//! * `OUT_DIR` defaults to `sim_results/matrix`.
//! * `--full` runs [`vuvuzela_sim::Scale::Full`] — hundreds-to-thousands
//!   of clients and the paper's µ = 13,000-per-drop dial storm (minutes
//!   of CPU). Default is [`vuvuzela_sim::Scale::Smoke`], the reduced
//!   matrix CI runs.
//!
//! Every scenario is executed **twice in-process** and the two
//! transcripts are asserted byte-identical before anything is written —
//! the same-seed determinism contract. CI additionally runs the whole
//! binary twice and diffs the output directories, pinning stability
//! across processes.
//!
//! Exit status is non-zero if any invariant fails or any transcript is
//! unstable.

use vuvuzela_sim::{bundled_matrix, run_scenario, Scale};

fn main() {
    let mut scale = Scale::Smoke;
    let mut out_dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            scale = Scale::Full;
        } else if arg.starts_with("--") {
            eprintln!("sim_matrix: unknown flag {arg}\nusage: sim_matrix [--full] [OUT_DIR]");
            std::process::exit(2);
        } else if out_dir.is_some() {
            eprintln!("sim_matrix: more than one OUT_DIR\nusage: sim_matrix [--full] [OUT_DIR]");
            std::process::exit(2);
        } else {
            out_dir = Some(arg);
        }
    }
    let out_dir = out_dir.unwrap_or_else(|| String::from("sim_results/matrix"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut manifest = String::new();
    let mut failed = false;
    for scenario in bundled_matrix(scale) {
        let name = scenario.name.clone();
        let first = match run_scenario(&scenario) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("[sim-matrix] {name}: INVARIANT FAILURE: {err}");
                failed = true;
                continue;
            }
        };
        let second = run_scenario(&scenario).expect("second run of a passing scenario");
        if first.transcript.render() != second.transcript.render() {
            eprintln!("[sim-matrix] {name}: NON-DETERMINISTIC TRANSCRIPT");
            failed = true;
            continue;
        }
        println!(
            "[sim-matrix] {name}: {} rounds, {} aborted schedule(s), {} delivered, hash {}",
            first.rounds_completed, first.schedules_aborted, first.delivered, first.hash
        );
        let path = format!("{out_dir}/transcript_{name}.txt");
        std::fs::write(&path, first.transcript.render()).expect("write transcript");
        manifest.push_str(&format!("{}  {name}\n", first.hash));
    }
    std::fs::write(format!("{out_dir}/TRANSCRIPTS.sha256"), manifest).expect("write manifest");
    if failed {
        std::process::exit(1);
    }
}
