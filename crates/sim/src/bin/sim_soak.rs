//! Runs the adversarial soak matrix — every bundled scenario crossed
//! with every tampering strategy, under sampled noise — and writes
//! each case's transcript (plus a hash manifest) to an output
//! directory.
//!
//! ```text
//! sim_soak [--full] [OUT_DIR]
//! ```
//!
//! * `OUT_DIR` defaults to `sim_results/soak`.
//! * `--full` runs [`vuvuzela_sim::Scale::Full`] base scenarios
//!   (minutes of CPU). Default is [`vuvuzela_sim::Scale::Smoke`], the
//!   crossed matrix CI runs.
//!
//! Every case runs in tolerant mode: tampered rounds degrade instead
//! of wedging, and the tripped invariants are graded against the
//! case's survive/trip annotation ([`vuvuzela_sim::soak::
//! expected_trips`]). Each case is executed **twice in-process** and
//! the two transcripts asserted byte-identical — tampering must not
//! break the determinism contract.
//!
//! Exit status is non-zero if any case trips an undeclared invariant,
//! survives a declared one, or renders an unstable transcript.

use vuvuzela_sim::{run_soak_case, soak_matrix, Scale};

fn main() {
    let mut scale = Scale::Smoke;
    let mut out_dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            scale = Scale::Full;
        } else if arg.starts_with("--") {
            eprintln!("sim_soak: unknown flag {arg}\nusage: sim_soak [--full] [OUT_DIR]");
            std::process::exit(2);
        } else if out_dir.is_some() {
            eprintln!("sim_soak: more than one OUT_DIR\nusage: sim_soak [--full] [OUT_DIR]");
            std::process::exit(2);
        } else {
            out_dir = Some(arg);
        }
    }
    let out_dir = out_dir.unwrap_or_else(|| String::from("sim_results/soak"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut manifest = String::new();
    let mut failed = false;
    for case in soak_matrix(scale) {
        let outcome = run_soak_case(&case);
        let name = &outcome.name;
        let twin = run_soak_case(&case);
        if outcome.report.transcript.render() != twin.report.transcript.render() {
            eprintln!("[sim-soak] {name}: NON-DETERMINISTIC TRANSCRIPT");
            failed = true;
            continue;
        }
        let tripped: Vec<&str> = outcome.tripped.iter().copied().collect();
        println!(
            "[sim-soak] {name}: {} rounds, {} aborted schedule(s), {} violation(s), \
             tripped [{}], hash {}",
            outcome.report.rounds_completed,
            outcome.report.schedules_aborted,
            outcome.violations.len(),
            tripped.join(","),
            outcome.report.hash
        );
        if !outcome.passed() {
            if !outcome.unexpected.is_empty() {
                eprintln!(
                    "[sim-soak] {name}: UNDECLARED TRIP(S): {}",
                    outcome.unexpected.join(",")
                );
            }
            if !outcome.missing.is_empty() {
                eprintln!(
                    "[sim-soak] {name}: DECLARED BUT SURVIVED: {}",
                    outcome.missing.join(",")
                );
            }
            failed = true;
        }
        let path = format!("{out_dir}/transcript_{name}.txt");
        std::fs::write(&path, outcome.report.transcript.render()).expect("write transcript");
        manifest.push_str(&format!("{}  {name}\n", outcome.report.hash));
    }
    std::fs::write(format!("{out_dir}/TRANSCRIPTS.sha256"), manifest).expect("write manifest");
    if failed {
        std::process::exit(1);
    }
}
